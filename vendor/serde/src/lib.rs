//! Offline drop-in subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types to
//! document wire-compatibility intent, but never calls a serializer — all
//! actual encoding goes through the hand-rolled `rfork::wire` format. The
//! build environment has no network access, so this vendored stand-in
//! supplies just the marker traits and the derive macros that emit empty
//! impls. If a future PR adds real serialization, replace this stub with
//! the genuine crate (or extend it with the data-model methods).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
