//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access, so the real crates-io
//! `parking_lot` cannot be fetched. This vendored stand-in implements the
//! subset the workspace uses — `Mutex::lock`, `RwLock::read`/`write`
//! returning guards directly (no `Result`) — with poison errors converted
//! into panics, matching parking_lot's no-poisoning semantics closely
//! enough for the simulator.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
