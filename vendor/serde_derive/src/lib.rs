//! Derive macros backing the vendored `serde` stub.
//!
//! The workspace never serializes through serde (encoding is hand-rolled
//! in `rfork::wire`), so these derives only need to emit the empty marker
//! impls. Parsing is deliberately minimal — the deriving types in this
//! workspace are concrete (no generics), which a scan for the ident after
//! `struct`/`enum` handles without pulling in `syn`.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stub derive: could not find type name in input");
}

/// Emits an empty `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}

/// Emits an empty `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}
