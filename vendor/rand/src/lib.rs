//! Offline drop-in subset of `rand` 0.8.
//!
//! The build environment has no network access, so this vendored stand-in
//! provides the slice of the `rand` API the workspace uses: a seeded,
//! deterministic [`rngs::StdRng`], [`Rng::gen`] for common primitive
//! types, and [`Rng::gen_range`] over half-open/inclusive ranges. The
//! generator is xoshiro256**, which comfortably passes the statistical
//! smoke tests in `simclock` (exponential means, Zipf skew buckets).
//!
//! Determinism contract: for a given seed the output stream is fixed
//! forever — experiment reproducibility in this workspace depends on it.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can seed themselves from a `u64` (subset of rand's trait).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness plus the convenience sampling API.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    fn gen_f64_unit(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 mantissa bits of the next u64 → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform sampling of a primitive from raw bits (rand's `Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.gen_f64_unit()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.gen_f64_unit() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream to fill the state, per the xoshiro paper.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(1u8..=255);
            assert!(i >= 1);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
