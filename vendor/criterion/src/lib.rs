//! Offline drop-in subset of `criterion`.
//!
//! The build environment has no network access, so this vendored
//! stand-in implements the surface the workspace's micro-benchmarks use
//! (`Criterion::default().sample_size(n)`, `bench_function`, `Bencher::iter`,
//! `black_box`, `criterion_group!`/`criterion_main!`). It measures simple
//! wall-clock means instead of criterion's full statistical pipeline —
//! good enough to exercise the hot paths and print comparable numbers.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` (which drives a [`Bencher`]) and prints the mean sample.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mean = if bencher.samples.is_empty() {
            0.0
        } else {
            bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64
        };
        println!("bench {name:<48} mean {:>12.1} ns/iter", mean);
        self
    }
}

/// Hands the benchmark body to the timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `body`, recording `sample_size` samples of one iteration each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up iteration, then timed samples.
        black_box(body());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Declares a group of benchmark functions with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
