//! Offline drop-in subset of `proptest`.
//!
//! The build environment has no network access, so the real crates-io
//! `proptest` cannot be fetched. This vendored stand-in implements the
//! slice of the API the workspace's property tests use — the `proptest!`
//! macro, `prop_assert*`, `any::<T>()`, range/tuple/`&str` strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::Index`,
//! and `Strategy::prop_map` — with deterministic generation seeded from
//! the test name, and **no shrinking** (a failing case reports the
//! assertion message and case number instead of a minimized input).

#![forbid(unsafe_code)]

/// Test-case execution: config, RNG, runner, and failure type.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion (carried by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xoshiro256** generator used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator (splitmix64-expanded, per the xoshiro paper).
        pub fn from_seed(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below() needs a positive bound");
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives the cases of one property.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `f` for each case with a per-case deterministic RNG,
        /// panicking (failing the test) on the first `Err`.
        pub fn run_named<F>(&mut self, name: &str, f: F)
        where
            F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
        {
            // FNV-1a over the property name gives stable per-test streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            for case in 0..self.config.cases {
                let mut rng =
                    TestRng::from_seed(h.wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9)));
                if let Err(e) = f(&mut rng) {
                    panic!(
                        "property `{name}` failed at case {case}/{}: {e}",
                        self.config.cases
                    );
                }
            }
        }
    }
}

/// The `Strategy` trait and the built-in strategy types.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// fresh value and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    /// `&'static str` patterns act as string strategies over a single
    /// character class with an optional `{m,n}` repetition — the only
    /// regex shapes the workspace's tests use (e.g. `"[a-z/._-]{1,40}"`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let bytes: Vec<char> = pattern.chars().collect();
        assert!(
            bytes.first() == Some(&'['),
            "unsupported string strategy pattern {pattern:?} (want \"[class]\" or \"[class]{{m,n}}\")"
        );
        let close = bytes
            .iter()
            .position(|&c| c == ']')
            .unwrap_or_else(|| panic!("unclosed char class in {pattern:?}"));
        let mut alphabet = Vec::new();
        let class = &bytes[1..close];
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                for c in class[i]..=class[i + 2] {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");
        let rest: String = bytes[close + 1..].iter().collect();
        if rest.is_empty() {
            return (alphabet, 1, 1);
        }
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition {rest:?} in {pattern:?}"));
        let (lo, hi) = match inner.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
            None => {
                let n = inner.trim().parse().unwrap();
                (n, n)
            }
        };
        assert!(lo <= hi, "bad repetition bounds in {pattern:?}");
        (alphabet, lo, hi)
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` and the `Arbitrary` trait behind it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` over its whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted vec-length specifications.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known later.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror so tests can say `prop::collection::vec(..)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Each inner `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]`-attributed function running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_named(
                stringify!($name),
                |__proptest_rng: &mut $crate::test_runner::TestRng|
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// mid-generation) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} != {:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} != {:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 1u8..=9, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=9).contains(&b));
            prop_assert!((0.5..2.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec(0usize..5, 2..8),
            s in "[a-c]{1,4}",
            doubled in (0u32..10).prop_map(|x| x * 2),
            opt in prop::option::of(0u64..3),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert_eq!(doubled % 2, 0);
            if let Some(x) = opt {
                prop_assert!(x < 3);
            }
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        let s = crate::collection::vec(0u64..100, 1..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
