//! Property-based tests for the trace generator: determinism, ordering,
//! rate conservation and burst structure over arbitrary configurations.

use proptest::prelude::*;
use trace_gen::{generate, TraceConfig};

fn arb_config() -> impl Strategy<Value = TraceConfig> {
    (
        any::<u64>(),  // seed
        5.0f64..60.0,  // duration
        5.0f64..200.0, // rps
        1usize..8,     // function count
        0.0f64..2.0,   // skew
        1.5f64..10.0,  // burst factor
        5.0f64..30.0,  // burst every
        0.5f64..4.0,   // burst len
    )
        .prop_map(|(seed, dur, rps, nfn, skew, bf, be, bl)| TraceConfig {
            seed,
            duration_secs: dur,
            total_rps: rps,
            functions: (0..nfn).map(|i| format!("f{i}")).collect(),
            popularity_skew: skew,
            burst_factor: bf,
            burst_every_secs: be,
            burst_len_secs: bl,
            template_overlap: 0.0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traces_are_deterministic_and_sorted(config in arb_config()) {
        let a = generate(&config);
        let b = generate(&config);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        // Every arrival is inside the window and names a known function.
        for inv in &a {
            prop_assert!(inv.time.as_secs_f64() < config.duration_secs);
            prop_assert!(config.functions.contains(&inv.function));
        }
    }

    #[test]
    fn aggregate_rate_tracks_the_target(config in arb_config()) {
        let trace = generate(&config);
        let rps = trace.len() as f64 / config.duration_secs;
        // Poisson noise: allow a generous band that tightens with volume.
        let expected = config.total_rps;
        let sigma = (expected * config.duration_secs).sqrt() / config.duration_secs;
        prop_assert!(
            (rps - expected).abs() < 6.0 * sigma + 0.35 * expected,
            "rate {rps} vs target {expected}"
        );
    }

    #[test]
    fn per_function_rates_sum_and_order(config in arb_config()) {
        let rates = config.function_rates();
        let total: f64 = rates.iter().map(|(_, r)| r).sum();
        prop_assert!((total - config.total_rps).abs() < 1e-6);
        prop_assert!(rates.windows(2).all(|w| w[0].1 >= w[1].1 - 1e-12));
        for (_, r) in rates {
            prop_assert!(r > 0.0);
        }
    }

    #[test]
    fn different_seeds_give_different_traces(config in arb_config()) {
        let mut other = config.clone();
        other.seed = config.seed.wrapping_add(1);
        let a = generate(&config);
        let b = generate(&other);
        // With any nontrivial volume the traces differ.
        if a.len() > 3 && b.len() > 3 {
            prop_assert_ne!(a, b);
        }
    }
}
