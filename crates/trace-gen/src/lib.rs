//! An Azure-like serverless invocation trace generator.
//!
//! The paper drives its CXLporter experiments with the production traces
//! of Shahrad et al. ("Serverless in the Wild", ATC '20), invoking the
//! Table 1 functions "following Azure serverless traces … of bursty
//! functions under a total load of 150 Requests Per Second on average"
//! (§6.2, §7.2). Those traces are a proprietary download, so this crate
//! generates a statistical stand-in that reproduces the two first-order
//! properties the experiments depend on:
//!
//! * **popularity skew** — a few functions receive most invocations
//!   (Zipf-distributed per-function rates, with the small functions most
//!   popular, as in Azure);
//! * **burstiness** — each function alternates Poisson *base* arrivals
//!   with randomly placed high-rate burst windows. Bursts are what make
//!   cold-start latency feed on itself (§7.2: slow rforks push more
//!   requests into the cold path).
//!
//! Generation is fully deterministic given the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use serde::{Deserialize, Serialize};
use simclock::rng::{derived, exp_sample};
use simclock::SimTime;

/// One invocation request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invocation {
    /// Arrival time.
    pub time: SimTime,
    /// Target function name.
    pub function: String,
}

/// Trace-generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Aggregate average arrival rate (requests per second). The paper
    /// uses 150 RPS.
    pub total_rps: f64,
    /// Function names, most popular first (rates follow a Zipf law over
    /// this order).
    pub functions: Vec<String>,
    /// Zipf skew of per-function popularity (≈1 matches FaaS studies).
    pub popularity_skew: f64,
    /// Rate multiplier inside a burst window.
    pub burst_factor: f64,
    /// Mean seconds between burst windows, per function.
    pub burst_every_secs: f64,
    /// Mean burst window length in seconds.
    pub burst_len_secs: f64,
    /// Fraction of each function's runtime (library) pages drawn from
    /// shared runtime images, forwarded to [`faas::FunctionSpec`] when the
    /// porter resolves a trace entry. 0 (the default) keeps the historical
    /// fully-private layout and existing benchmark reports byte-identical.
    #[serde(default)]
    pub template_overlap: f64,
}

impl TraceConfig {
    /// The paper-style default: 150 RPS aggregate, bursty.
    pub fn paper_default(functions: Vec<String>, seed: u64) -> Self {
        TraceConfig {
            seed,
            duration_secs: 60.0,
            total_rps: 150.0,
            functions,
            popularity_skew: 1.0,
            burst_factor: 6.0,
            burst_every_secs: 15.0,
            burst_len_secs: 2.0,
            template_overlap: 0.0,
        }
    }

    /// Per-function average rates (RPS), Zipf-weighted over the function
    /// order.
    pub fn function_rates(&self) -> Vec<(String, f64)> {
        let n = self.functions.len();
        assert!(n > 0, "trace needs at least one function");
        let weights: Vec<f64> = (1..=n)
            .map(|k| 1.0 / (k as f64).powf(self.popularity_skew))
            .collect();
        let total: f64 = weights.iter().sum();
        self.functions
            .iter()
            .zip(weights)
            .map(|(f, w)| (f.clone(), self.total_rps * w / total))
            .collect()
    }
}

/// Generates a trace: one merged, time-sorted sequence of invocations.
///
/// # Panics
///
/// Panics if the config has no functions or non-positive duration/rate.
pub fn generate(config: &TraceConfig) -> Vec<Invocation> {
    assert!(config.duration_secs > 0.0, "duration must be positive");
    assert!(config.total_rps > 0.0, "rate must be positive");
    let mut out = Vec::new();
    for (fname, avg_rate) in config.function_rates() {
        let mut rng = derived(config.seed, &fname);

        // Carve burst windows for this function.
        let mut windows: Vec<(f64, f64)> = Vec::new();
        let mut t = exp_sample(&mut rng, config.burst_every_secs);
        while t < config.duration_secs {
            let len = exp_sample(&mut rng, config.burst_len_secs).min(config.duration_secs - t);
            windows.push((t, t + len));
            t += len + exp_sample(&mut rng, config.burst_every_secs);
        }

        // Split the average rate between base load and bursts so the
        // long-run mean stays `avg_rate`.
        let burst_time: f64 = windows.iter().map(|(a, b)| b - a).sum();
        let burst_share = burst_time / config.duration_secs;
        // base + burst_share * base * factor = avg  ⇒  base = avg / (1 + share*(factor-1))
        let base_rate = avg_rate / (1.0 + burst_share * (config.burst_factor - 1.0));

        let in_burst = |t: f64| windows.iter().any(|(a, b)| t >= *a && t < *b);
        let mut now = 0.0f64;
        loop {
            let rate = if in_burst(now) {
                base_rate * config.burst_factor
            } else {
                base_rate
            };
            now += exp_sample(&mut rng, 1.0 / rate);
            if now >= config.duration_secs {
                break;
            }
            out.push(Invocation {
                time: SimTime::from_nanos((now * 1e9) as u64),
                function: fname.clone(),
            });
        }
        let _ = rng.gen::<u64>();
    }
    out.sort_by_key(|i| i.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TraceConfig {
        TraceConfig::paper_default(vec!["A".into(), "B".into(), "C".into(), "D".into()], 42)
    }

    #[test]
    fn trace_is_sorted_and_deterministic() {
        let t1 = generate(&config());
        let t2 = generate(&config());
        assert_eq!(t1, t2);
        assert!(t1.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(!t1.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let mut c2 = config();
        c2.seed = 43;
        assert_ne!(generate(&config()), generate(&c2));
    }

    #[test]
    fn aggregate_rate_is_roughly_150_rps() {
        let trace = generate(&config());
        let rps = trace.len() as f64 / config().duration_secs;
        assert!(
            (120.0..=180.0).contains(&rps),
            "aggregate rate {rps} RPS (target 150)"
        );
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let trace = generate(&config());
        let count = |f: &str| trace.iter().filter(|i| i.function == f).count();
        let a = count("A");
        let d = count("D");
        assert!(a > 2 * d, "most-popular A ({a}) should dwarf D ({d})");
    }

    #[test]
    fn bursts_create_load_spikes() {
        let trace = generate(&config());
        // Bucket arrivals into 1-second bins; bursty traces should have a
        // max bin well above the mean bin.
        let dur = config().duration_secs as usize;
        let mut bins = vec![0usize; dur];
        for inv in &trace {
            let b = (inv.time.as_secs_f64() as usize).min(dur - 1);
            bins[b] += 1;
        }
        let mean = trace.len() as f64 / dur as f64;
        let max = *bins.iter().max().unwrap() as f64;
        assert!(
            max > mean * 1.8,
            "max bin {max} vs mean {mean}: trace not bursty"
        );
    }

    #[test]
    fn rates_follow_declared_order() {
        let rates = config().function_rates();
        assert!(rates.windows(2).all(|w| w[0].1 >= w[1].1));
        let total: f64 = rates.iter().map(|(_, r)| r).sum();
        assert!((total - 150.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn empty_function_list_rejected() {
        let mut c = config();
        c.functions.clear();
        let _ = generate(&c);
    }
}
