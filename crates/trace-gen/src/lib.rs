//! An Azure-like serverless invocation trace generator.
//!
//! The paper drives its CXLporter experiments with the production traces
//! of Shahrad et al. ("Serverless in the Wild", ATC '20), invoking the
//! Table 1 functions "following Azure serverless traces … of bursty
//! functions under a total load of 150 Requests Per Second on average"
//! (§6.2, §7.2). Those traces are a proprietary download, so this crate
//! generates a statistical stand-in that reproduces the two first-order
//! properties the experiments depend on:
//!
//! * **popularity skew** — a few functions receive most invocations
//!   (Zipf-distributed per-function rates, with the small functions most
//!   popular, as in Azure);
//! * **burstiness** — each function alternates Poisson *base* arrivals
//!   with randomly placed high-rate burst windows. Bursts are what make
//!   cold-start latency feed on itself (§7.2: slow rforks push more
//!   requests into the cold path).
//!
//! Generation is fully deterministic given the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};
use simclock::rng::{derived, exp_sample, ZipfSampler};
use simclock::SimTime;

/// One invocation request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invocation {
    /// Arrival time.
    pub time: SimTime,
    /// Target function name.
    pub function: String,
    /// Owning tenant. The single-tenant generator and historical traces
    /// use owner 0; the diurnal generator assigns one owner per tenant
    /// so the porter's fairness quotas have something to meter.
    #[serde(default)]
    pub owner: u32,
}

/// Why a trace failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An invocation arrived before its predecessor. Replaying such a
    /// trace through the porter would silently dispatch out of order.
    OutOfOrder {
        /// Index of the offending invocation.
        index: usize,
        /// Its arrival time.
        time: SimTime,
        /// The predecessor's (later) arrival time.
        prev: SimTime,
    },
    /// An invocation names a function the catalog does not know; the
    /// porter would silently drop it.
    UnknownFunction {
        /// Index of the offending invocation.
        index: usize,
        /// The unresolvable function name.
        function: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OutOfOrder { index, time, prev } => write!(
                f,
                "invocation {index} at t={}ns precedes its predecessor at t={}ns",
                time.as_nanos(),
                prev.as_nanos()
            ),
            TraceError::UnknownFunction { index, function } => {
                write!(f, "invocation {index} names unknown function {function:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Checks that `trace` is replayable: arrival times non-decreasing and
/// every function name resolvable against `known` (case-insensitive,
/// matching `faas::by_name` semantics).
///
/// # Errors
///
/// Returns the first [`TraceError`] encountered, scanning in order.
pub fn validate(trace: &[Invocation], known: &[String]) -> Result<(), TraceError> {
    let known_lower: std::collections::BTreeSet<String> =
        known.iter().map(|n| n.to_ascii_lowercase()).collect();
    let mut prev = SimTime::ZERO;
    for (index, inv) in trace.iter().enumerate() {
        if inv.time < prev {
            return Err(TraceError::OutOfOrder {
                index,
                time: inv.time,
                prev,
            });
        }
        prev = inv.time;
        if !known_lower.contains(&inv.function.to_ascii_lowercase()) {
            return Err(TraceError::UnknownFunction {
                index,
                function: inv.function.clone(),
            });
        }
    }
    Ok(())
}

/// Canonical name for function `idx` of tenant `tenant`, shared between
/// the diurnal generator and catalog builders so both sides agree on
/// the namespace.
pub fn function_name(tenant: u32, idx: u32) -> String {
    format!("t{tenant:03}-f{idx}")
}

/// Trace-generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Aggregate average arrival rate (requests per second). The paper
    /// uses 150 RPS.
    pub total_rps: f64,
    /// Function names, most popular first (rates follow a Zipf law over
    /// this order).
    pub functions: Vec<String>,
    /// Zipf skew of per-function popularity (≈1 matches FaaS studies).
    pub popularity_skew: f64,
    /// Rate multiplier inside a burst window.
    pub burst_factor: f64,
    /// Mean seconds between burst windows, per function.
    pub burst_every_secs: f64,
    /// Mean burst window length in seconds.
    pub burst_len_secs: f64,
    /// Fraction of each function's runtime (library) pages drawn from
    /// shared runtime images, forwarded to [`faas::FunctionSpec`] when the
    /// porter resolves a trace entry. 0 (the default) keeps the historical
    /// fully-private layout and existing benchmark reports byte-identical.
    #[serde(default)]
    pub template_overlap: f64,
}

impl TraceConfig {
    /// The paper-style default: 150 RPS aggregate, bursty.
    pub fn paper_default(functions: Vec<String>, seed: u64) -> Self {
        TraceConfig {
            seed,
            duration_secs: 60.0,
            total_rps: 150.0,
            functions,
            popularity_skew: 1.0,
            burst_factor: 6.0,
            burst_every_secs: 15.0,
            burst_len_secs: 2.0,
            template_overlap: 0.0,
        }
    }

    /// Per-function average rates (RPS), Zipf-weighted over the function
    /// order.
    pub fn function_rates(&self) -> Vec<(String, f64)> {
        let n = self.functions.len();
        assert!(n > 0, "trace needs at least one function");
        let weights: Vec<f64> = (1..=n)
            .map(|k| 1.0 / (k as f64).powf(self.popularity_skew))
            .collect();
        let total: f64 = weights.iter().sum();
        self.functions
            .iter()
            .zip(weights)
            .map(|(f, w)| (f.clone(), self.total_rps * w / total))
            .collect()
    }
}

/// Generates a trace: one merged, time-sorted sequence of invocations.
///
/// # Panics
///
/// Panics if the config has no functions or non-positive duration/rate.
pub fn generate(config: &TraceConfig) -> Vec<Invocation> {
    assert!(config.duration_secs > 0.0, "duration must be positive");
    assert!(config.total_rps > 0.0, "rate must be positive");
    let mut out = Vec::new();
    for (fname, avg_rate) in config.function_rates() {
        let mut rng = derived(config.seed, &fname);

        // Carve burst windows for this function.
        let mut windows: Vec<(f64, f64)> = Vec::new();
        let mut t = exp_sample(&mut rng, config.burst_every_secs);
        while t < config.duration_secs {
            let len = exp_sample(&mut rng, config.burst_len_secs).min(config.duration_secs - t);
            windows.push((t, t + len));
            t += len + exp_sample(&mut rng, config.burst_every_secs);
        }

        // Split the average rate between base load and bursts so the
        // long-run mean stays `avg_rate`.
        let burst_time: f64 = windows.iter().map(|(a, b)| b - a).sum();
        let burst_share = burst_time / config.duration_secs;
        // base + burst_share * base * factor = avg  ⇒  base = avg / (1 + share*(factor-1))
        let base_rate = avg_rate / (1.0 + burst_share * (config.burst_factor - 1.0));

        let in_burst = |t: f64| windows.iter().any(|(a, b)| t >= *a && t < *b);
        let mut now = 0.0f64;
        loop {
            let rate = if in_burst(now) {
                base_rate * config.burst_factor
            } else {
                base_rate
            };
            now += exp_sample(&mut rng, 1.0 / rate);
            if now >= config.duration_secs {
                break;
            }
            out.push(Invocation {
                time: SimTime::from_nanos((now * 1e9) as u64),
                function: fname.clone(),
                owner: 0,
            });
        }
        let _ = rng.gen::<u64>();
    }
    out.sort_by_key(|i| i.time);
    out
}

/// Parameters for the cluster-scale diurnal multi-tenant generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Aggregate average arrival rate across all tenants (RPS).
    pub total_rps: f64,
    /// Number of tenants. Tenant `t` owns every invocation it emits
    /// (`Invocation::owner == t`). Tenant average rates follow a Zipf
    /// law over tenant index.
    pub tenants: u32,
    /// Functions per tenant, named via [`function_name`]. Per-tenant
    /// function popularity is Zipf-distributed too.
    pub functions_per_tenant: u32,
    /// Zipf skew for tenant rates and per-tenant function popularity.
    pub popularity_skew: f64,
    /// Relative amplitude of the diurnal sinusoid in `[0, 1)`:
    /// `rate(t) = base · (1 + amplitude · sin(2π(t/period + phase)))`,
    /// with a seed-derived phase per tenant (tenants peak at different
    /// virtual hours, as in the Azure traces).
    pub diurnal_amplitude: f64,
    /// Diurnal period in seconds (a "virtual day").
    pub diurnal_period_secs: f64,
    /// Rate multiplier inside a burst window (on top of the sinusoid).
    pub burst_factor: f64,
    /// Mean seconds between burst windows, per tenant.
    pub burst_every_secs: f64,
    /// Mean burst window length in seconds.
    pub burst_len_secs: f64,
}

impl DiurnalConfig {
    /// A cluster-scale default: many tenants, pronounced diurnal swing,
    /// Azure-like burstiness. With the default 300 RPS over 400 virtual
    /// seconds this yields ≈120k invocations.
    pub fn cluster_default(seed: u64) -> Self {
        DiurnalConfig {
            seed,
            duration_secs: 400.0,
            total_rps: 300.0,
            tenants: 64,
            functions_per_tenant: 4,
            popularity_skew: 1.0,
            diurnal_amplitude: 0.6,
            diurnal_period_secs: 100.0,
            burst_factor: 4.0,
            burst_every_secs: 40.0,
            burst_len_secs: 3.0,
        }
    }

    /// Every function name this config can emit, tenant-major. Catalog
    /// builders register exactly this set.
    pub fn function_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for t in 0..self.tenants {
            for f in 0..self.functions_per_tenant {
                names.push(function_name(t, f));
            }
        }
        names
    }

    fn assert_valid(&self) {
        assert!(self.duration_secs > 0.0, "duration must be positive");
        assert!(self.total_rps > 0.0, "rate must be positive");
        assert!(self.tenants > 0, "diurnal trace needs at least one tenant");
        assert!(
            self.functions_per_tenant > 0,
            "each tenant needs at least one function"
        );
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "amplitude must lie in [0, 1)"
        );
        assert!(self.diurnal_period_secs > 0.0, "period must be positive");
        assert!(self.burst_factor >= 1.0, "burst factor must be >= 1");
    }
}

/// Generates a diurnal multi-tenant trace: non-homogeneous Poisson
/// arrivals per tenant (sinusoidal rate with a seed-derived phase,
/// burst windows layered on top) realised by thinning, merged and
/// time-sorted. Fully deterministic given the seed, and guaranteed to
/// pass [`validate`] against [`DiurnalConfig::function_names`].
///
/// # Panics
///
/// Panics if the config is out of range (see field docs).
pub fn generate_diurnal(config: &DiurnalConfig) -> Vec<Invocation> {
    config.assert_valid();
    let n = config.tenants as usize;
    let tenant_weights: Vec<f64> = (1..=n)
        .map(|k| 1.0 / (k as f64).powf(config.popularity_skew))
        .collect();
    let weight_total: f64 = tenant_weights.iter().sum();
    let fn_picker = ZipfSampler::new(config.functions_per_tenant as usize, config.popularity_skew);

    let mut out = Vec::new();
    for tenant in 0..config.tenants {
        let avg_rate = config.total_rps * tenant_weights[tenant as usize] / weight_total;
        let mut rng = derived(config.seed, &format!("tenant-{tenant}"));
        let phase: f64 = rng.gen_range(0.0..1.0);

        // Burst windows, carved exactly like the single-tenant generator.
        let mut windows: Vec<(f64, f64)> = Vec::new();
        let mut t = exp_sample(&mut rng, config.burst_every_secs);
        while t < config.duration_secs {
            let len = exp_sample(&mut rng, config.burst_len_secs).min(config.duration_secs - t);
            windows.push((t, t + len));
            t += len + exp_sample(&mut rng, config.burst_every_secs);
        }
        let burst_time: f64 = windows.iter().map(|(a, b)| b - a).sum();
        let burst_share = burst_time / config.duration_secs;
        // The sinusoid averages to 1 over whole periods, so only the
        // burst share needs compensating to keep the long-run mean.
        let base_rate = avg_rate / (1.0 + burst_share * (config.burst_factor - 1.0));
        let in_burst = |t: f64| windows.iter().any(|(a, b)| t >= *a && t < *b);

        // Thinning: draw a homogeneous Poisson stream at the peak rate,
        // accept each arrival with probability rate(now) / peak.
        let peak = base_rate * (1.0 + config.diurnal_amplitude) * config.burst_factor;
        let rate_at = |now: f64| {
            let angle = std::f64::consts::TAU * (now / config.diurnal_period_secs + phase);
            let diurnal = 1.0 + config.diurnal_amplitude * angle.sin();
            let burst = if in_burst(now) {
                config.burst_factor
            } else {
                1.0
            };
            base_rate * diurnal * burst
        };
        let mut now = 0.0f64;
        loop {
            now += exp_sample(&mut rng, 1.0 / peak);
            if now >= config.duration_secs {
                break;
            }
            let accept: f64 = rng.gen_range(0.0..1.0);
            if accept >= rate_at(now) / peak {
                continue;
            }
            let idx = fn_picker.sample(&mut rng) as u32;
            out.push(Invocation {
                time: SimTime::from_nanos((now * 1e9) as u64),
                function: function_name(tenant, idx),
                owner: tenant,
            });
        }
        let _ = rng.gen::<u64>();
    }
    out.sort_by_key(|i| i.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TraceConfig {
        TraceConfig::paper_default(vec!["A".into(), "B".into(), "C".into(), "D".into()], 42)
    }

    #[test]
    fn trace_is_sorted_and_deterministic() {
        let t1 = generate(&config());
        let t2 = generate(&config());
        assert_eq!(t1, t2);
        assert!(t1.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(!t1.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let mut c2 = config();
        c2.seed = 43;
        assert_ne!(generate(&config()), generate(&c2));
    }

    #[test]
    fn aggregate_rate_is_roughly_150_rps() {
        let trace = generate(&config());
        let rps = trace.len() as f64 / config().duration_secs;
        assert!(
            (120.0..=180.0).contains(&rps),
            "aggregate rate {rps} RPS (target 150)"
        );
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let trace = generate(&config());
        let count = |f: &str| trace.iter().filter(|i| i.function == f).count();
        let a = count("A");
        let d = count("D");
        assert!(a > 2 * d, "most-popular A ({a}) should dwarf D ({d})");
    }

    #[test]
    fn bursts_create_load_spikes() {
        let trace = generate(&config());
        // Bucket arrivals into 1-second bins; bursty traces should have a
        // max bin well above the mean bin.
        let dur = config().duration_secs as usize;
        let mut bins = vec![0usize; dur];
        for inv in &trace {
            let b = (inv.time.as_secs_f64() as usize).min(dur - 1);
            bins[b] += 1;
        }
        let mean = trace.len() as f64 / dur as f64;
        let max = *bins.iter().max().unwrap() as f64;
        assert!(
            max > mean * 1.8,
            "max bin {max} vs mean {mean}: trace not bursty"
        );
    }

    #[test]
    fn rates_follow_declared_order() {
        let rates = config().function_rates();
        assert!(rates.windows(2).all(|w| w[0].1 >= w[1].1));
        let total: f64 = rates.iter().map(|(_, r)| r).sum();
        assert!((total - 150.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn empty_function_list_rejected() {
        let mut c = config();
        c.functions.clear();
        let _ = generate(&c);
    }

    fn diurnal_config() -> DiurnalConfig {
        DiurnalConfig {
            duration_secs: 120.0,
            total_rps: 80.0,
            tenants: 8,
            ..DiurnalConfig::cluster_default(11)
        }
    }

    #[test]
    fn diurnal_trace_is_sorted_deterministic_and_valid() {
        let c = diurnal_config();
        let t1 = generate_diurnal(&c);
        let t2 = generate_diurnal(&c);
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
        assert!(t1.windows(2).all(|w| w[0].time <= w[1].time));
        validate(&t1, &c.function_names()).expect("generated trace must validate");
        assert!(t1.iter().all(|i| i.owner < c.tenants));
        assert!(t1.iter().all(|i| i.time.as_secs_f64() < c.duration_secs));
    }

    #[test]
    fn diurnal_seeds_differ() {
        let c1 = diurnal_config();
        let mut c2 = c1.clone();
        c2.seed = 12;
        assert_ne!(generate_diurnal(&c1), generate_diurnal(&c2));
    }

    #[test]
    fn diurnal_rate_is_roughly_configured() {
        let c = diurnal_config();
        let trace = generate_diurnal(&c);
        let rps = trace.len() as f64 / c.duration_secs;
        assert!(
            (c.total_rps * 0.75..=c.total_rps * 1.25).contains(&rps),
            "aggregate rate {rps} RPS (target {})",
            c.total_rps
        );
    }

    #[test]
    fn diurnal_rate_actually_swings() {
        // One tenant, fixed high amplitude, no bursts: per-period-bin
        // arrival counts must show the sinusoid.
        let c = DiurnalConfig {
            tenants: 1,
            functions_per_tenant: 2,
            total_rps: 200.0,
            duration_secs: 100.0,
            diurnal_period_secs: 100.0,
            diurnal_amplitude: 0.8,
            burst_factor: 1.0,
            ..DiurnalConfig::cluster_default(5)
        };
        let trace = generate_diurnal(&c);
        let mut bins = [0usize; 10];
        for inv in &trace {
            bins[((inv.time.as_secs_f64() / 10.0) as usize).min(9)] += 1;
        }
        let max = *bins.iter().max().unwrap() as f64;
        let min = *bins.iter().min().unwrap() as f64;
        assert!(max > min * 2.0, "bins {bins:?}: no diurnal swing visible");
    }

    #[test]
    fn diurnal_tenants_each_appear() {
        let c = diurnal_config();
        let trace = generate_diurnal(&c);
        for tenant in 0..c.tenants {
            assert!(
                trace.iter().any(|i| i.owner == tenant),
                "tenant {tenant} emitted nothing"
            );
        }
        // Tenant 0 (highest Zipf weight) dominates the last tenant.
        let count = |o: u32| trace.iter().filter(|i| i.owner == o).count();
        assert!(count(0) > 2 * count(c.tenants - 1));
    }

    #[test]
    fn validate_rejects_out_of_order() {
        let known = vec!["a".to_string()];
        let trace = vec![
            Invocation {
                time: SimTime::from_nanos(100),
                function: "a".into(),
                owner: 0,
            },
            Invocation {
                time: SimTime::from_nanos(50),
                function: "a".into(),
                owner: 0,
            },
        ];
        let err = validate(&trace, &known).unwrap_err();
        assert_eq!(
            err,
            TraceError::OutOfOrder {
                index: 1,
                time: SimTime::from_nanos(50),
                prev: SimTime::from_nanos(100),
            }
        );
        assert!(err.to_string().contains("precedes"));
    }

    #[test]
    fn validate_rejects_unknown_function() {
        let known = vec!["Float".to_string()];
        let trace = vec![
            Invocation {
                time: SimTime::from_nanos(1),
                function: "float".into(), // case-insensitive: OK
                owner: 0,
            },
            Invocation {
                time: SimTime::from_nanos(2),
                function: "ghost".into(),
                owner: 0,
            },
        ];
        let err = validate(&trace, &known).unwrap_err();
        assert_eq!(
            err,
            TraceError::UnknownFunction {
                index: 1,
                function: "ghost".into(),
            }
        );
    }

    #[test]
    fn single_tenant_generator_stays_owner_zero() {
        let trace = generate(&config());
        assert!(trace.iter().all(|i| i.owner == 0));
    }
}
