//! Content-addressed checkpoint image store over the simulated CXL
//! device.
//!
//! The paper keeps checkpoint images resident in a *finite* CXL device
//! and shares them across restores. Before this crate the workspace
//! deduplicated only clones of the *same* checkpoint: two function
//! templates whose address spaces contain identical runtime, library, or
//! zero pages paid for every byte twice, and nothing ever evicted — the
//! device simply filled until allocation exhaustion.
//!
//! [`Store`] fixes both halves:
//!
//! * **Cross-image dedup.** A refcounted content index maps the 64-bit
//!   page fingerprint ([`PageData::fingerprint`]) to one device page.
//!   `CxlFork::checkpoint` routes its batched data-page writes through
//!   [`Store::intern_pages`]; a page whose content is already resident
//!   (in *any* image) resolves to the existing device page and moves no
//!   bytes. Zero pages are elided entirely from the transfer: freshly
//!   allocated device pages are already zeroed, so the canonical zero
//!   page costs one allocation and no write, ever.
//! * **Capacity-pressure GC.** An image catalog tracks per-image
//!   metadata — owner, epoch, pinned/lease state (leases from
//!   [`cxl_fault::LeaseTable`]), last-restore virtual time — and drives
//!   epoch-based GC plus watermark eviction: when device utilization
//!   crosses the high watermark, unpinned images whose lease holder is
//!   not live are evicted in LRU-by-last-restore order until utilization
//!   falls below the low watermark. A restore of an evicted image gets a
//!   typed miss from the mechanism (never stale bytes), and the porter
//!   re-checkpoints on the next eligible invocation.
//!
//! Interning is all-or-nothing per attempt: a failed allocation or write
//! rolls the attempt's device pages back and leaves the index untouched,
//! so `cxl_fault::with_backoff`-style retries never double-count
//! references.
//!
//! # Crash durability
//!
//! All of the state above lives in coordinator DRAM; by itself it dies
//! with the coordinator even though every data page survives on the
//! device. A store created with [`StoreConfig::durable`] additionally
//! write-ahead-journals every mutation to a device-resident metadata
//! region (see [`journal`]) so that [`Store::recover`] can rebuild the
//! index, catalog, and pin/lease state from the surviving device alone.
//! Mutations follow a strict ordering discipline — constructive device
//! work (page interning) lands *before* its journal record, destructive
//! work (free/destroy) lands *after* — so that a crash at any
//! instruction boundary leaves a state recovery can roll forward or
//! back. The [`cxl_fault::CrashpointHook`] sites threaded through every
//! mutator let the crashpoint sweep in `tests/` prove exactly that.
//!
//! Journal writes ride the same batched `write_pages` path as data and
//! are charged to the virtual clock via [`InternOutcome::journal_pages`]
//! and [`Store::commit_image`]'s return value. Control-plane records
//! (begin, pin, lease) are sub-page and *uncharged* — a documented
//! modeling approximation, since their callers do not own a clock.
//! [`Store::touch_restore`] is deliberately **not** journaled: logging
//! every restore would put a device write on the restore fast path, so
//! after recovery LRU eviction falls back to creation order until new
//! restores refresh it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub use cxl_fabric::PlacementPolicy;
use cxl_fault::{with_backoff, BackoffPolicy, CrashpointHook, LeaseTable};
use cxl_mem::lockdep::TrackedMutex;
use cxl_mem::{CxlDevice, CxlError, CxlPageId, NodeId, PageData, RegionId, RegionKind, PAGE_SIZE};
use simclock::{SimDuration, SimTime};

pub mod journal;

use journal::{Journal, Record};

/// Telemetry layer name for store counters.
const TELEMETRY_LAYER: &str = "cxlstore";

/// Name of the store-owned committed region holding deduped data pages.
/// Fixed so [`Store::recover`] can find it with no catalog to consult.
const DATA_REGION_NAME: &str = "cxl-store:data";

/// Typed failure for store mutators that take an [`ImageId`]. Earlier
/// versions silently no-opped on unknown or wrong-state ids, which made
/// caller bugs (double release, commit of an aborted image) invisible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The image id is not known to the store — never created here, or
    /// already aborted/released/evicted.
    UnknownImage {
        /// The offending id.
        image: ImageId,
        /// The mutator that rejected it.
        op: &'static str,
    },
    /// The mutation requires a *pending* image, but the id is already
    /// committed to the catalog.
    AlreadyCommitted {
        /// The offending id.
        image: ImageId,
        /// The mutator that rejected it.
        op: &'static str,
    },
    /// The mutation requires a *committed* image, but the id is still
    /// pending (mid-checkpoint).
    NotCommitted {
        /// The offending id.
        image: ImageId,
        /// The mutator that rejected it.
        op: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownImage { image, op } => {
                write!(f, "{op}: {image} is not known to the store")
            }
            StoreError::AlreadyCommitted { image, op } => {
                write!(f, "{op}: {image} is already committed")
            }
            StoreError::NotCommitted { image, op } => {
                write!(f, "{op}: {image} is pending, not committed")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Virtual time as wire-format nanoseconds since the epoch.
fn time_nanos(t: SimTime) -> u64 {
    t.duration_since(SimTime::ZERO).as_nanos()
}

/// Wire-format nanoseconds back to virtual time.
fn nanos_time(ns: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_nanos(ns)
}

/// Rehydrates a journaled image record into catalog form.
fn meta_from_record(r: &journal::ImageRecord) -> ImageMeta {
    ImageMeta {
        label: r.label.clone(),
        owner: NodeId(r.owner),
        epoch: r.epoch,
        pinned: r.pinned,
        lease: r.lease.map(NodeId),
        created_at: nanos_time(r.created_at),
        last_restore: nanos_time(r.last_restore),
        meta_region: RegionId(r.meta_region),
        fingerprints: r.fingerprints.clone(),
    }
}

/// Replay-time twin of `Store::drop_refs`: decrements refcounts and
/// forgets zero-ref entries, but never touches the device — page
/// reconciliation happens once, against the final rebuilt index.
fn drop_replay_refs(index: &mut BTreeMap<u64, IndexEntry>, fps: &[u64]) {
    for fp in fps {
        if let Some(e) = index.get_mut(fp) {
            e.refs = e.refs.saturating_sub(1);
            if e.refs == 0 {
                index.remove(fp);
            }
        }
    }
}

/// Identifies one checkpoint image in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImageId(pub u64);

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image#{}", self.0)
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Device utilization (`used_pages / capacity`) above which eviction
    /// starts.
    pub high_watermark: f64,
    /// Utilization eviction drives down to once it starts (hysteresis so
    /// the store does not thrash at the boundary).
    pub low_watermark: f64,
    /// Write-ahead-journal every mutation to a device-resident metadata
    /// region so [`Store::recover`] can rebuild the store after
    /// coordinator death. Off by default: journaling costs device writes
    /// on every mutation.
    pub durable: bool,
    /// Journal size (bytes of record stream) above which
    /// [`Store::commit_image`] compacts it into a fresh generation
    /// holding one state snapshot. Only meaningful when `durable`.
    pub journal_compact_bytes: u64,
    /// How fresh content allocations spread across the device's banks
    /// (and thus its fabric ports): [`PlacementPolicy::Locality`] (the
    /// default) packs them first-fit, bit-identical to the
    /// pre-placement store; [`PlacementPolicy::Stripe`] spreads each
    /// intern batch round-robin across every bank, trading allocator
    /// locality for balanced per-port fabric load under contention.
    pub placement: PlacementPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            high_watermark: 0.85,
            low_watermark: 0.70,
            durable: false,
            journal_compact_bytes: 256 * 1024,
            placement: PlacementPolicy::Locality,
        }
    }
}

/// What one [`Store::intern_pages`] call did, page-accounted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternOutcome {
    /// The device page backing each input page, **in input order**.
    /// Shared content repeats the same page id.
    pub pages: Vec<CxlPageId>,
    /// Device pages newly allocated by this call (content not previously
    /// resident), including a canonical zero page if one was minted.
    pub fresh: u64,
    /// Pages whose bytes actually crossed the fabric (`fresh` minus the
    /// zero pages elided because fresh allocations are already zeroed).
    pub written: u64,
    /// Input pages resolved to an already-resident device page.
    pub shared: u64,
    /// Input pages that were all-zero (always transfer-free).
    pub zero: u64,
    /// Journal pages written for this batch's `Intern` record (0 unless
    /// the store is durable). Callers fold this into the checkpoint's
    /// copied-page charge.
    pub journal_pages: u64,
    /// The device pages whose bytes actually crossed the fabric
    /// (`written` of them) — the concrete page set a pipelined
    /// checkpoint partitions by shard to cost the transfer.
    pub written_pages: Vec<CxlPageId>,
}

/// Monotonic counters describing store activity since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total pages interned (inputs to [`Store::intern_pages`]).
    pub interned_pages: u64,
    /// Inputs resolved to an existing device page (cross- or
    /// intra-image).
    pub deduped_pages: u64,
    /// Device pages newly allocated for content.
    pub fresh_pages: u64,
    /// Zero-page inputs whose transfer was elided.
    pub zero_elided: u64,
    /// Images evicted under capacity pressure or epoch GC.
    pub evicted_images: u64,
    /// Device pages freed by eviction/GC/release (data + metadata).
    pub evicted_pages: u64,
    /// Images released explicitly by their owner.
    pub released_images: u64,
    /// Device pages written to the metadata journal (0 unless durable).
    pub journal_pages_written: u64,
}

impl StoreStats {
    /// Fabric bytes the store avoided moving (dedup hits plus elided
    /// zero writes).
    pub fn bytes_saved(&self) -> u64 {
        (self.deduped_pages + self.zero_elided) * PAGE_SIZE
    }

    /// Interned-to-written ratio (1.0 = no sharing; higher = better).
    pub fn dedup_ratio(&self) -> f64 {
        let written = self
            .fresh_pages
            .saturating_sub(self.zero_elided.min(self.fresh_pages));
        if written == 0 {
            return self.interned_pages as f64;
        }
        self.interned_pages as f64 / written as f64
    }
}

/// Per-image catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageMeta {
    /// Human-readable label (mirrors the checkpoint region name).
    pub label: String,
    /// Node that took the checkpoint.
    pub owner: NodeId,
    /// Checkpoint epoch (the mechanism's sequence number).
    pub epoch: u64,
    /// Pinned images are never evicted.
    pub pinned: bool,
    /// A node currently depending on this image (running instances
    /// restored from it). While the holder's lease is live in the
    /// [`LeaseTable`], the image is exempt from eviction.
    pub lease: Option<NodeId>,
    /// Virtual time the image was created.
    pub created_at: SimTime,
    /// Virtual time of the most recent restore (eviction is
    /// LRU-by-last-restore).
    pub last_restore: SimTime,
    /// The checkpoint's metadata region (leaves, VMA blocks, task,
    /// globals) — destroyed along with the image on eviction.
    pub meta_region: RegionId,
    /// Content fingerprints referenced by this image, with multiplicity.
    fingerprints: Vec<u64>,
}

impl ImageMeta {
    /// Distinct data-page references held by this image (with
    /// multiplicity; equals the checkpoint's data page count).
    pub fn data_refs(&self) -> u64 {
        self.fingerprints.len() as u64
    }
}

/// A content-index entry as seen by auditors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntrySnapshot {
    /// Content fingerprint.
    pub fingerprint: u64,
    /// Device page holding that content.
    pub page: CxlPageId,
    /// Number of image references (with multiplicity).
    pub refs: u64,
}

/// What one eviction/GC sweep freed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionReport {
    /// Images removed from the catalog.
    pub images: u64,
    /// Device pages freed (shared data pages whose refcount reached
    /// zero, plus each image's metadata region).
    pub pages: u64,
}

#[derive(Debug)]
struct IndexEntry {
    page: CxlPageId,
    refs: u64,
}

#[derive(Debug)]
struct Inner {
    /// The store-owned committed region holding all deduped data pages.
    region: RegionId,
    /// fingerprint → (device page, refcount).
    index: BTreeMap<u64, IndexEntry>,
    /// Committed images, by id.
    catalog: BTreeMap<u64, ImageMeta>,
    /// Images begun but not yet committed (mid-checkpoint).
    pending: BTreeMap<u64, ImageMeta>,
    next_image: u64,
    stats: StoreStats,
    /// The live write-ahead journal (durable stores only).
    journal: Option<Journal>,
}

/// Everything [`Store::recover`] did, for failover accounting and the
/// crashpoint sweep's determinism checks. Bit-identical for identical
/// device states.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal generation replayed.
    pub journal_generation: u64,
    /// Sealed records replayed.
    pub entries_replayed: u64,
    /// Bytes of torn journal tail truncated (a record whose commit
    /// marker never landed).
    pub torn_tail_bytes: u64,
    /// Committed images in the recovered catalog.
    pub committed_images: u64,
    /// Pending (mid-checkpoint) images rolled back — their coordinator
    /// died, so they can never complete.
    pub rolled_back_pending: u64,
    /// Live data-region pages no journal record referenced (interned but
    /// never journaled, or half-freed) — freed by reconciliation.
    pub freed_leaked_pages: u64,
    /// Checkpoint metadata regions destroyed: half-finished
    /// release/evictions plus committed regions orphaned by a crash
    /// between the device commit and the journal commit record.
    pub destroyed_meta_regions: u64,
    /// Stale or invalid journal generations destroyed (half-finished
    /// compactions).
    pub stale_generations_destroyed: u64,
    /// Index entries whose device page's content fingerprint no longer
    /// matches the journal's record — always 0 unless the device is
    /// corrupt.
    pub fingerprint_mismatches: u64,
    /// Journal pages read during scan + replay; charge
    /// `cxl_batch_read(pages_scanned)` to the virtual clock.
    pub pages_scanned: u64,
    /// Pages written compacting the recovered journal; charge
    /// `cxl_batch_write(compaction_pages_written)`.
    pub compaction_pages_written: u64,
}

/// The content-addressed checkpoint image store. Cheap to share
/// (`Arc<Store>`); all methods take `&self`.
#[derive(Debug)]
pub struct Store {
    device: Arc<CxlDevice>,
    config: StoreConfig,
    inner: TrackedMutex<Inner>,
    /// Crashpoint observer for the sweep harness (see
    /// [`Store::set_crash_hook`]). Behind its own lock so arming does
    /// not contend with mutations; `crash_armed` is the fast-path gate.
    crash_hook: TrackedMutex<Option<Arc<dyn CrashpointHook>>>,
    crash_armed: AtomicBool,
}

impl Store {
    /// Creates a store over `device` with default watermarks.
    pub fn new(device: Arc<CxlDevice>) -> Self {
        Store::with_config(device, StoreConfig::default())
    }

    /// Creates a store with explicit configuration. A durable config
    /// creates journal generation 0 on the device before any mutation
    /// can run.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low_watermark <= high_watermark <= 1`, or if a
    /// durable journal cannot be created past retries.
    pub fn with_config(device: Arc<CxlDevice>, config: StoreConfig) -> Self {
        assert!(
            config.low_watermark > 0.0
                && config.low_watermark <= config.high_watermark
                && config.high_watermark <= 1.0,
            "store watermarks must satisfy 0 < low <= high <= 1, got {config:?}"
        );
        let region = device.create_region(DATA_REGION_NAME);
        let journal = config.durable.then(|| {
            let (res, _) = with_backoff(&BackoffPolicy::default(), || Journal::create(&device, 0));
            // cxl-lint: allow(device-unwrap): journal creation retries transients with backoff; a persistent device failure at store construction is unrecoverable by design
            res.expect("creating the store journal failed past retries")
        });
        Store {
            device,
            config,
            inner: TrackedMutex::new(
                "cxl_store.inner",
                Inner {
                    region,
                    index: BTreeMap::new(),
                    catalog: BTreeMap::new(),
                    pending: BTreeMap::new(),
                    next_image: 1,
                    stats: StoreStats::default(),
                    journal,
                },
            ),
            crash_hook: TrackedMutex::new("cxl_store.crash_hook", None),
            crash_armed: AtomicBool::new(false),
        }
    }

    /// Rebuilds a store from the device alone — the coordinator that
    /// owned the previous [`Store`] is dead and its DRAM gone. Replays
    /// the highest valid journal generation (truncating any torn tail at
    /// the last commit marker), rolls back images that were still
    /// pending (their checkpoints can never complete), reconciles the
    /// device — frees leaked data pages, destroys half-released and
    /// orphaned checkpoint metadata regions — cross-checks rebuilt
    /// refcounts against on-device content fingerprints, and compacts
    /// the journal into a fresh generation. Deterministic: the same
    /// device state always yields a bit-identical [`RecoveryReport`].
    ///
    /// The caller charges the virtual clock with
    /// `cxl_batch_read(report.pages_scanned)` plus
    /// `cxl_batch_write(report.compaction_pages_written)` — the
    /// replay-time cost the porter surfaces as `journal_replay_ns`.
    ///
    /// # Panics
    ///
    /// Panics unless `config.durable` (and the watermarks are valid), if
    /// the device holds no valid journal generation (the store was never
    /// durable, or the journal root itself was lost), or on persistent
    /// device failure past retries.
    pub fn recover(
        device: Arc<CxlDevice>,
        config: StoreConfig,
        node: NodeId,
    ) -> (Store, RecoveryReport) {
        assert!(config.durable, "Store::recover requires a durable config");
        assert!(
            config.low_watermark > 0.0
                && config.low_watermark <= config.high_watermark
                && config.high_watermark <= 1.0,
            "store watermarks must satisfy 0 < low <= high <= 1, got {config:?}"
        );
        let mut report = RecoveryReport::default();

        // Locate the authoritative journal: the highest generation with
        // a valid superblock. Generations without one are half-finished
        // compactions (staged but never published) — stale.
        let found = journal::find_generations(&device);
        assert!(
            !found.is_empty(),
            "Store::recover: no journal on the device — was the store created durable?"
        );
        let mut chosen: Option<(journal::FoundGeneration, journal::LoadedGeneration)> = None;
        let mut stale: Vec<RegionId> = Vec::new();
        for f in found.iter().rev() {
            if chosen.is_none() {
                let (res, _) = with_backoff(&BackoffPolicy::default(), || {
                    journal::load_generation(&device, f, node)
                });
                // cxl-lint: allow(device-unwrap): journal reads retry transients with backoff; recovery cannot proceed without the log
                if let Some(loaded) = res.expect("journal scan failed past retries") {
                    chosen = Some((f.clone(), loaded));
                    continue;
                }
            }
            stale.push(f.region);
        }
        // cxl-lint: allow(device-unwrap): compaction publishes the new superblock before destroying the old generation, so a journaled device always has at least one valid root
        let (gen, loaded) = chosen.expect("no valid journal superblock — journal root lost");
        report.journal_generation = gen.generation;
        report.pages_scanned = loaded.pages_scanned;
        report.entries_replayed = loaded.log.entries.len() as u64;
        report.torn_tail_bytes = loaded.log.torn_bytes;

        // Replay the record stream into fresh DRAM state.
        let mut index: BTreeMap<u64, IndexEntry> = BTreeMap::new();
        let mut catalog: BTreeMap<u64, ImageMeta> = BTreeMap::new();
        let mut pending: BTreeMap<u64, ImageMeta> = BTreeMap::new();
        let mut next_image = 1u64;
        let mut doomed_meta: Vec<RegionId> = Vec::new();
        for entry in &loaded.log.entries {
            match &entry.record {
                Record::Snapshot(s) => {
                    next_image = s.next_image;
                    index = s
                        .index
                        .iter()
                        .map(|&(fp, page)| {
                            (
                                fp,
                                IndexEntry {
                                    page: CxlPageId(page),
                                    refs: 0,
                                },
                            )
                        })
                        .collect();
                    catalog = s
                        .catalog
                        .iter()
                        .map(|r| (r.id, meta_from_record(r)))
                        .collect();
                    pending = s
                        .pending
                        .iter()
                        .map(|r| (r.id, meta_from_record(r)))
                        .collect();
                    for meta in catalog.values().chain(pending.values()) {
                        for fp in &meta.fingerprints {
                            if let Some(e) = index.get_mut(fp) {
                                e.refs += 1;
                            }
                        }
                    }
                }
                Record::Begin {
                    image,
                    created_at,
                    label,
                } => {
                    next_image = next_image.max(image + 1);
                    pending.insert(
                        *image,
                        ImageMeta {
                            label: label.clone(),
                            owner: NodeId(entry.owner),
                            epoch: entry.epoch,
                            pinned: false,
                            lease: None,
                            created_at: nanos_time(*created_at),
                            last_restore: nanos_time(*created_at),
                            meta_region: RegionId(u64::MAX),
                            fingerprints: Vec::new(),
                        },
                    );
                }
                Record::Intern { image, entries } => {
                    for &(fp, page) in entries {
                        index
                            .entry(fp)
                            .or_insert(IndexEntry {
                                page: CxlPageId(page),
                                refs: 0,
                            })
                            .refs += 1;
                    }
                    if let Some(meta) = pending.get_mut(image) {
                        meta.fingerprints.extend(entries.iter().map(|&(fp, _)| fp));
                    }
                }
                Record::Commit { image, meta_region } => {
                    if let Some(mut meta) = pending.remove(image) {
                        meta.meta_region = RegionId(*meta_region);
                        catalog.insert(*image, meta);
                    }
                }
                Record::Abort { image } => {
                    if let Some(meta) = pending.remove(image) {
                        drop_replay_refs(&mut index, &meta.fingerprints);
                    }
                }
                Record::Release { image, meta_region } | Record::Evict { image, meta_region } => {
                    if let Some(meta) = catalog.remove(image) {
                        drop_replay_refs(&mut index, &meta.fingerprints);
                    }
                    doomed_meta.push(RegionId(*meta_region));
                }
                Record::SetPinned { image, pinned } => {
                    if let Some(meta) = catalog.get_mut(image) {
                        meta.pinned = *pinned;
                    }
                }
                Record::SetLease { image, holder } => {
                    if let Some(meta) = catalog.get_mut(image) {
                        meta.lease = holder.map(NodeId);
                    }
                }
            }
        }

        // The coordinator died: every image still pending was
        // mid-checkpoint and can never complete. Roll all of them back
        // (the journal-replay twin of `reclaim_orphan_pending`).
        report.rolled_back_pending = pending.len() as u64;
        for meta in std::mem::take(&mut pending).into_values() {
            drop_replay_refs(&mut index, &meta.fingerprints);
        }
        index.retain(|_, e| e.refs > 0);
        report.committed_images = catalog.len() as u64;

        // The store's data region is found by its fixed name — there is
        // no catalog to consult before recovery.
        let data_region = device
            .regions()
            .into_iter()
            .find(|(_, u)| u.kind == RegionKind::Data && u.name == DATA_REGION_NAME)
            .map(|(r, _)| r)
            // cxl-lint: allow(device-unwrap): with_config creates the data region before journal generation 0, so any journaled device has one
            .expect("durable store data region missing from the device");

        // Reconcile the device against the rebuilt index: any live
        // data-region page the index does not reference was leaked by a
        // crash between the device write and the journal record (or
        // between the journal record and the free) — free it.
        let referenced: BTreeSet<CxlPageId> = index.values().map(|e| e.page).collect();
        let leaked: Vec<CxlPageId> = device
            .live_pages()
            .into_iter()
            .filter(|(p, r)| *r == data_region && !referenced.contains(p))
            .map(|(p, _)| p)
            .collect();
        if !leaked.is_empty() {
            let (res, _) = with_backoff(&BackoffPolicy::default(), || device.free_batch(&leaked));
            report.freed_leaked_pages = res.unwrap_or(0);
        }

        // Cross-check rebuilt refcounts against on-device content: every
        // indexed fingerprint must match its page's actual bytes.
        if !index.is_empty() {
            let pages: Vec<CxlPageId> = index.values().map(|e| e.page).collect();
            let (res, _) = with_backoff(&BackoffPolicy::default(), || {
                device.fingerprint_pages(&pages)
            });
            // cxl-lint: allow(device-unwrap): fingerprinting is read-only and retried; recovery must not silently skip the integrity check
            let actual = res.expect("fingerprint cross-check failed past retries");
            report.fingerprint_mismatches = index
                .keys()
                .zip(&actual)
                .filter(|(expected, got)| *expected != *got)
                .count() as u64;
        }

        // Finish half-done destructive mutations: metadata regions whose
        // release/evict was journaled but whose destruction may not have
        // happened. Destroy is idempotent here (BadRegion ignored).
        for region in doomed_meta {
            if device.destroy_region(region).is_ok() {
                report.destroyed_meta_regions += 1;
            }
        }

        // Sweep orphaned checkpoint metadata: a committed region nobody
        // in the recovered catalog references means the crash landed
        // between the device-side region commit and the journal's Commit
        // record. Staging regions are left to lease reclamation (the
        // store cannot judge other nodes' liveness).
        let staging: BTreeSet<u64> = device
            .staging_regions()
            .iter()
            .map(|s| s.region.0)
            .collect();
        let kept: BTreeSet<u64> = catalog.values().map(|m| m.meta_region.0).collect();
        for (region, usage) in device.regions() {
            if usage.kind == RegionKind::Data
                && region != data_region
                && !staging.contains(&region.0)
                && !kept.contains(&region.0)
                && device.destroy_region(region).is_ok()
            {
                report.destroyed_meta_regions += 1;
            }
        }

        // Drop stale/invalid journal generations, resume the live one,
        // and immediately compact so the next crash replays one snapshot
        // instead of the whole history.
        for region in stale {
            if device.destroy_region(region).is_ok() {
                report.stale_generations_destroyed += 1;
            }
        }
        let resumed = journal::resume(&gen, loaded);
        let store = Store {
            device,
            config,
            inner: TrackedMutex::new(
                "cxl_store.inner",
                Inner {
                    region: data_region,
                    index,
                    catalog,
                    pending: BTreeMap::new(),
                    next_image,
                    stats: StoreStats::default(),
                    journal: Some(resumed),
                },
            ),
            crash_hook: TrackedMutex::new("cxl_store.crash_hook", None),
            crash_armed: AtomicBool::new(false),
        };
        {
            let mut inner = store.inner.lock();
            report.compaction_pages_written = store.compact_journal_locked(&mut inner);
        }

        cxl_telemetry::counter_add(
            TELEMETRY_LAYER,
            "recovered_images",
            Some(node.0),
            report.committed_images,
        );
        cxl_telemetry::counter_add(
            TELEMETRY_LAYER,
            "recovery_replayed_entries",
            Some(node.0),
            report.entries_replayed,
        );
        cxl_telemetry::counter_add(
            TELEMETRY_LAYER,
            "recovery_freed_leaked_pages",
            Some(node.0),
            report.freed_leaked_pages,
        );
        if report.torn_tail_bytes > 0 {
            cxl_telemetry::counter_add(TELEMETRY_LAYER, "recovery_torn_tails", Some(node.0), 1);
        }
        (store, report)
    }

    /// Installs (or clears) the crashpoint observer. Every mutator
    /// reports named sites through it — a `cxl_fault::Recorder`
    /// enumerates the injection points, a `cxl_fault::Killer` simulates
    /// coordinator death at one of them.
    pub fn set_crash_hook(&self, hook: Option<Arc<dyn CrashpointHook>>) {
        self.crash_armed.store(hook.is_some(), Ordering::Relaxed);
        *self.crash_hook.lock() = hook;
    }

    /// Reports reaching `site` to the installed hook, if any. A killing
    /// hook panics here with a `CrashpointKill` payload; the unwind
    /// abandons the mutation exactly where it stood, modeling the
    /// coordinator's DRAM vanishing mid-operation.
    fn crashpoint(&self, site: &'static str) {
        if !self.crash_armed.load(Ordering::Relaxed) {
            return;
        }
        let hook = self.crash_hook.lock().clone();
        if let Some(hook) = hook {
            hook.reached(site);
        }
    }

    /// Appends one sealed record to the journal (no-op for non-durable
    /// stores). `mid_site` fires between the payload write and the
    /// commit-marker write — the torn-tail crash window. Returns journal
    /// pages written.
    fn journal_append(
        &self,
        inner: &mut Inner,
        owner: NodeId,
        epoch: u64,
        record: Record,
        mid_site: Option<&'static str>,
    ) -> u64 {
        let mut pages = 0;
        {
            let Some(j) = inner.journal.as_mut() else {
                return 0;
            };
            let entry = journal::JournalEntry {
                seq: j.next_seq(),
                owner: owner.0,
                epoch,
                record,
            };
            let payload = journal::encode_payload(&entry);
            let (res, _) = with_backoff(&BackoffPolicy::default(), || {
                j.append_payload(&self.device, &payload)
            });
            // cxl-lint: allow(device-unwrap): journal appends retry transients (rate ~2e-4) with backoff; P(persistent failure) ~ 1.6e-15, and a store that cannot journal must not claim durability
            pages += res.expect("journal append failed past retries");
            if let Some(site) = mid_site {
                self.crashpoint(site);
            }
            let (res, _) = with_backoff(&BackoffPolicy::default(), || j.seal(&self.device));
            // cxl-lint: allow(device-unwrap): same retry/abundance argument as the payload write above
            pages += res.expect("journal seal failed past retries");
        }
        inner.stats.journal_pages_written += pages;
        pages
    }

    /// Compacts the journal into a fresh generation when it has outgrown
    /// [`StoreConfig::journal_compact_bytes`]. Returns pages written.
    fn maybe_compact(&self, inner: &mut Inner) -> u64 {
        let wants = inner
            .journal
            .as_ref()
            .is_some_and(|j| j.wants_compaction(self.config.journal_compact_bytes));
        if !wants {
            return 0;
        }
        self.compact_journal_locked(inner)
    }

    /// Rewrites the surviving state as one `Snapshot` record in a new
    /// journal generation, then destroys the old one. Ordering makes any
    /// crash safe: the new generation has no superblock (is invisible to
    /// recovery) until `publish`, and the old generation is destroyed
    /// only after the new one is authoritative.
    fn compact_journal_locked(&self, inner: &mut Inner) -> u64 {
        let Some(old) = inner.journal.take() else {
            return 0;
        };
        let entry = journal::JournalEntry {
            seq: 0,
            owner: u32::MAX,
            epoch: 0,
            record: Record::Snapshot(Self::snapshot_state(inner)),
        };
        let payload = journal::encode_payload(&entry);
        let generation = old.generation() + 1;
        let (res, _) = with_backoff(&BackoffPolicy::default(), || {
            Journal::stage_compacted(&self.device, generation, &payload)
        });
        // cxl-lint: allow(device-unwrap): compaction retries transients with backoff; stage_compacted destroys its half-built region before erroring, so retries are clean
        let (mut fresh, mut pages) = res.expect("journal compaction failed past retries");
        self.crashpoint("compact.after_snapshot_write");
        let (res, _) = with_backoff(&BackoffPolicy::default(), || fresh.publish(&self.device));
        // cxl-lint: allow(device-unwrap): the superblock write is idempotent and retried; see append rationale
        pages += res.expect("journal publish failed past retries");
        self.crashpoint("compact.after_publish");
        let _ = old.destroy(&self.device);
        self.crashpoint("compact.after_destroy_old");
        inner.journal = Some(fresh);
        inner.stats.journal_pages_written += pages;
        pages
    }

    /// Compacts the journal now regardless of size (maintenance hook).
    /// Returns journal pages written; 0 for non-durable stores.
    pub fn compact_journal(&self) -> u64 {
        let mut inner = self.inner.lock();
        self.compact_journal_locked(&mut inner)
    }

    /// The full store state as a wire-format snapshot.
    fn snapshot_state(inner: &Inner) -> journal::SnapshotState {
        let to_record = |(&id, m): (&u64, &ImageMeta)| journal::ImageRecord {
            id,
            label: m.label.clone(),
            owner: m.owner.0,
            epoch: m.epoch,
            pinned: m.pinned,
            lease: m.lease.map(|n| n.0),
            created_at: time_nanos(m.created_at),
            last_restore: time_nanos(m.last_restore),
            meta_region: m.meta_region.0,
            fingerprints: m.fingerprints.clone(),
        };
        journal::SnapshotState {
            next_image: inner.next_image,
            index: inner.index.iter().map(|(&fp, e)| (fp, e.page.0)).collect(),
            catalog: inner.catalog.iter().map(to_record).collect(),
            pending: inner.pending.iter().map(to_record).collect(),
        }
    }

    /// The device this store allocates from.
    pub fn device(&self) -> &Arc<CxlDevice> {
        &self.device
    }

    /// The store's watermark configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The committed region owning every deduped data page.
    pub fn data_region(&self) -> RegionId {
        self.inner.lock().region
    }

    /// Activity counters since creation.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Registers a new (pending) image. The image holds no pages until
    /// [`Store::intern_pages`] runs, and is invisible to eviction until
    /// [`Store::commit_image`].
    pub fn begin_image(&self, label: &str, owner: NodeId, epoch: u64, now: SimTime) -> ImageId {
        let mut inner = self.inner.lock();
        let id = inner.next_image;
        inner.next_image += 1;
        self.crashpoint("begin.before_journal");
        self.journal_append(
            &mut inner,
            owner,
            epoch,
            Record::Begin {
                image: id,
                created_at: time_nanos(now),
                label: label.to_owned(),
            },
            None,
        );
        self.crashpoint("begin.after_journal");
        inner.pending.insert(
            id,
            ImageMeta {
                label: label.to_owned(),
                owner,
                epoch,
                pinned: false,
                lease: None,
                created_at: now,
                last_restore: now,
                meta_region: RegionId(u64::MAX),
                fingerprints: Vec::new(),
            },
        );
        ImageId(id)
    }

    /// Interns a batch of page contents for `image`, returning the
    /// backing device page for each input **in input order**. Content
    /// already resident (in any image, or earlier in this batch) resolves
    /// to the existing page and moves no bytes; zero pages cost one
    /// allocation ever and no write. Callers charge
    /// `LatencyModel::cxl_batch_write(outcome.written)` for the transfer.
    ///
    /// All-or-nothing per attempt: on error every device page this call
    /// allocated is freed again and the index is untouched, so wrapping
    /// the call in `cxl_fault::with_backoff` retries cannot double-count
    /// references.
    ///
    /// # Errors
    ///
    /// Propagates device allocation/write failures (including injected
    /// faults).
    ///
    /// # Panics
    ///
    /// Panics if `image` is not a pending image of this store.
    pub fn intern_pages(
        &self,
        image: ImageId,
        data: &[PageData],
        node: NodeId,
    ) -> Result<InternOutcome, CxlError> {
        let mut inner = self.inner.lock();
        assert!(
            inner.pending.contains_key(&image.0),
            "intern_pages on unknown or committed {image}"
        );

        // Resolve each input against the index and this batch's own
        // misses; plan allocations for content seen for the first time.
        let fps: Vec<u64> = data.iter().map(PageData::fingerprint).collect();
        let mut planned: BTreeMap<u64, usize> = BTreeMap::new(); // fp → miss slot
        let mut miss_payload: Vec<&PageData> = Vec::new();
        let mut shared = 0u64;
        let mut zero = 0u64;
        for (fp, d) in fps.iter().zip(data) {
            if matches!(d, PageData::Zero) {
                zero += 1;
            }
            if inner.index.contains_key(fp) || planned.contains_key(fp) {
                shared += 1;
            } else {
                planned.insert(*fp, miss_payload.len());
                miss_payload.push(d);
            }
        }

        let allocated = match self.config.placement {
            PlacementPolicy::Locality => self
                .device
                .alloc_batch(inner.region, miss_payload.len() as u64)?,
            PlacementPolicy::Stripe => {
                let streams = u32::try_from(self.device.shard_count()).unwrap_or(u32::MAX);
                self.device
                    .alloc_batch_striped(inner.region, miss_payload.len() as u64, streams)?
            }
        };
        // Crash here: pages allocated but unjournaled — recovery frees
        // them as leaked.
        self.crashpoint("intern.after_alloc");
        // Fresh allocations are already zeroed, so only non-zero misses
        // cross the fabric.
        let writes: Vec<(CxlPageId, PageData)> = miss_payload
            .iter()
            .zip(&allocated)
            .filter(|(d, _)| !matches!(d, PageData::Zero))
            .map(|(d, &p)| (p, (*d).clone()))
            .collect();
        if let Err(e) = self.device.write_pages(&writes, node) {
            // Roll the attempt back so a retry starts from scratch; the
            // rollback free itself retries transients rather than leak.
            let (_, _) = cxl_fault::with_backoff(&cxl_fault::BackoffPolicy::default(), || {
                self.device.free_batch(&allocated)
            });
            return Err(e);
        }
        // Crash here: content written but unjournaled — still leaked
        // pages from recovery's point of view. Constructive ordering:
        // device first, journal second.
        self.crashpoint("intern.after_data_write");

        // Device state is in place — publish to the index and the image.
        for (fp, slot) in &planned {
            inner.index.insert(
                *fp,
                IndexEntry {
                    page: allocated[*slot],
                    refs: 0,
                },
            );
        }
        let mut pages = Vec::with_capacity(fps.len());
        for fp in &fps {
            // cxl-lint: allow(device-unwrap): intern invariant — every fp was inserted into the index in the resolve pass just above
            let entry = inner.index.get_mut(fp).expect("resolved above");
            entry.refs += 1;
            pages.push(entry.page);
        }
        inner
            .pending
            .get_mut(&image.0)
            // cxl-lint: allow(device-unwrap): intern invariant — the pending entry was validated at function entry and the lock is still held
            .expect("checked above")
            .fingerprints
            .extend_from_slice(&fps);

        // Journal the published bindings (fingerprint → device page,
        // with multiplicity) so replay rebuilds exact refcounts.
        let epoch = inner.pending[&image.0].epoch;
        let journal_pages = self.journal_append(
            &mut inner,
            node,
            epoch,
            Record::Intern {
                image: image.0,
                entries: fps.iter().copied().zip(pages.iter().map(|p| p.0)).collect(),
            },
            Some("intern.after_journal_payload"),
        );
        self.crashpoint("intern.after_marker");

        let fresh = allocated.len() as u64;
        let written = writes.len() as u64;
        let outcome = InternOutcome {
            pages,
            fresh,
            written,
            shared,
            zero,
            journal_pages,
            written_pages: writes.iter().map(|(p, _)| *p).collect(),
        };
        let stats = &mut inner.stats;
        stats.interned_pages += fps.len() as u64;
        stats.deduped_pages += shared;
        stats.fresh_pages += fresh;
        stats.zero_elided += fresh - written;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "interned", Some(node.0), fps.len() as u64);
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "dedup_hits", Some(node.0), shared);
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "fresh_pages", Some(node.0), fresh);
        cxl_telemetry::counter_add(
            TELEMETRY_LAYER,
            "bytes_saved",
            Some(node.0),
            (fps.len() as u64 - written) * PAGE_SIZE,
        );
        self.crashpoint("intern.after_publish");
        Ok(outcome)
    }

    /// Publishes a pending image into the catalog. `meta_region` is the
    /// checkpoint's committed metadata region; eviction destroys it along
    /// with the image's data references. Returns journal pages written
    /// (commit record plus any compaction this commit triggered) for the
    /// caller to charge to the virtual clock; 0 for non-durable stores.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyCommitted`] if `image` is already in the
    /// catalog, [`StoreError::UnknownImage`] if it is not pending.
    pub fn commit_image(&self, image: ImageId, meta_region: RegionId) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock();
        if inner.catalog.contains_key(&image.0) {
            return Err(StoreError::AlreadyCommitted {
                image,
                op: "commit_image",
            });
        }
        let Some(mut meta) = inner.pending.remove(&image.0) else {
            return Err(StoreError::UnknownImage {
                image,
                op: "commit_image",
            });
        };
        meta.meta_region = meta_region;
        let (owner, epoch) = (meta.owner, meta.epoch);
        // Crash here (or mid-record): no sealed Commit — recovery rolls
        // the image back as pending and sweeps its orphaned meta region.
        self.crashpoint("commit.before_journal");
        let mut pages = self.journal_append(
            &mut inner,
            owner,
            epoch,
            Record::Commit {
                image: image.0,
                meta_region: meta_region.0,
            },
            Some("commit.mid_record"),
        );
        // Crash here: the sealed Commit is the durability point — the
        // image survives into the recovered catalog.
        self.crashpoint("commit.after_journal");
        inner.catalog.insert(image.0, meta);
        pages += self.maybe_compact(&mut inner);
        Ok(pages)
    }

    /// Abandons a pending image (failed checkpoint), dropping its index
    /// references and freeing any now-unreferenced device pages. Returns
    /// the number of data pages freed.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyCommitted`] if `image` is committed (release
    /// it instead), [`StoreError::UnknownImage`] if it is not pending.
    pub fn abort_image(&self, image: ImageId) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock();
        if inner.catalog.contains_key(&image.0) {
            return Err(StoreError::AlreadyCommitted {
                image,
                op: "abort_image",
            });
        }
        let Some(meta) = inner.pending.remove(&image.0) else {
            return Err(StoreError::UnknownImage {
                image,
                op: "abort_image",
            });
        };
        // Destructive ordering: journal first, free second — recovery
        // re-applies a journaled abort idempotently.
        self.journal_append(
            &mut inner,
            meta.owner,
            meta.epoch,
            Record::Abort { image: image.0 },
            None,
        );
        self.crashpoint("abort.after_journal");
        let freed = Self::drop_refs(&self.device, &mut inner, &meta.fingerprints);
        self.crashpoint("abort.after_free");
        Ok(freed)
    }

    /// True while `image` is restorable (committed and not evicted).
    pub fn is_live(&self, image: ImageId) -> bool {
        self.inner.lock().catalog.contains_key(&image.0)
    }

    /// A copy of the catalog entry, if live.
    pub fn image_meta(&self, image: ImageId) -> Option<ImageMeta> {
        self.inner.lock().catalog.get(&image.0).cloned()
    }

    /// Number of committed images.
    pub fn image_count(&self) -> usize {
        self.inner.lock().catalog.len()
    }

    /// Ids of every committed image, ascending.
    pub fn images(&self) -> Vec<ImageId> {
        self.inner
            .lock()
            .catalog
            .keys()
            .map(|&id| ImageId(id))
            .collect()
    }

    /// Records a successful restore at `now` (LRU bookkeeping). No-op
    /// for unknown ids. Deliberately **not** journaled — a device write
    /// per restore would tax the fast path; after recovery, LRU falls
    /// back to creation order until restores refresh it.
    pub fn touch_restore(&self, image: ImageId, now: SimTime) {
        self.crashpoint("restore.touch");
        if let Some(meta) = self.inner.lock().catalog.get_mut(&image.0) {
            meta.last_restore = meta.last_restore.max(now);
        }
    }

    /// Pins or unpins an image. Pinned images are never evicted.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCommitted`] for pending images,
    /// [`StoreError::UnknownImage`] otherwise-unknown ids.
    pub fn set_pinned(&self, image: ImageId, pinned: bool) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let (owner, epoch) = Self::committed_tags(&inner, image, "set_pinned")?;
        self.journal_append(
            &mut inner,
            owner,
            epoch,
            Record::SetPinned {
                image: image.0,
                pinned,
            },
            None,
        );
        self.crashpoint("pin.after_journal");
        if let Some(meta) = inner.catalog.get_mut(&image.0) {
            meta.pinned = pinned;
        }
        Ok(())
    }

    /// Marks `holder` as depending on the image (e.g. running instances
    /// restored from it). While the holder's lease is live, the image is
    /// exempt from eviction. `None` clears the lease.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCommitted`] for pending images,
    /// [`StoreError::UnknownImage`] otherwise-unknown ids.
    pub fn set_lease(&self, image: ImageId, holder: Option<NodeId>) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let (owner, epoch) = Self::committed_tags(&inner, image, "set_lease")?;
        self.journal_append(
            &mut inner,
            owner,
            epoch,
            Record::SetLease {
                image: image.0,
                holder: holder.map(|n| n.0),
            },
            None,
        );
        self.crashpoint("lease.after_journal");
        if let Some(meta) = inner.catalog.get_mut(&image.0) {
            meta.lease = holder;
        }
        Ok(())
    }

    /// Validates that `image` is committed, returning its (owner, epoch)
    /// journal tags.
    fn committed_tags(
        inner: &Inner,
        image: ImageId,
        op: &'static str,
    ) -> Result<(NodeId, u64), StoreError> {
        if let Some(meta) = inner.catalog.get(&image.0) {
            return Ok((meta.owner, meta.epoch));
        }
        if inner.pending.contains_key(&image.0) {
            return Err(StoreError::NotCommitted { image, op });
        }
        Err(StoreError::UnknownImage { image, op })
    }

    /// Releases a committed image: drops its index references, frees
    /// now-unreferenced data pages, and forgets the catalog entry. The
    /// metadata region is the caller's to destroy (the mechanism owns
    /// it) — but the journal records it, so crash recovery destroys it
    /// if the caller died first. Returns the number of data pages freed.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotCommitted`] for pending images,
    /// [`StoreError::UnknownImage`] otherwise-unknown ids.
    pub fn release_image(&self, image: ImageId) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock();
        if inner.pending.contains_key(&image.0) {
            return Err(StoreError::NotCommitted {
                image,
                op: "release_image",
            });
        }
        let Some(meta) = inner.catalog.remove(&image.0) else {
            return Err(StoreError::UnknownImage {
                image,
                op: "release_image",
            });
        };
        // Destructive ordering: journal first, free second.
        self.journal_append(
            &mut inner,
            meta.owner,
            meta.epoch,
            Record::Release {
                image: image.0,
                meta_region: meta.meta_region.0,
            },
            None,
        );
        self.crashpoint("release.after_journal");
        let freed = Self::drop_refs(&self.device, &mut inner, &meta.fingerprints);
        inner.stats.released_images += 1;
        inner.stats.evicted_pages += freed;
        self.crashpoint("release.after_free");
        Ok(freed)
    }

    /// Evicts images until device utilization is at or below the low
    /// watermark — but only once it exceeds the high watermark
    /// (hysteresis). Candidates are committed images that are not pinned
    /// and whose lease holder (if any) is not live in `leases` at `now`;
    /// they go in LRU-by-last-restore order (ties: lowest id). Each
    /// eviction frees the image's unshared data pages and destroys its
    /// metadata region.
    pub fn evict_to_low_watermark(&self, leases: &LeaseTable, now: SimTime) -> EvictionReport {
        self.evict_to_low_watermark_except(leases, now, &BTreeSet::new())
    }

    /// [`Store::evict_to_low_watermark`] with an in-memory protection
    /// set: images in `keep` are skipped even when unpinned and
    /// unleased. The porter passes the images its live instances were
    /// restored from — their lease holder may have crashed, but the
    /// restored processes on surviving nodes still map the image's
    /// device pages, so freeing them would leave dangling PTEs. The set
    /// is deliberately not journaled: it is derived state, rebuilt by
    /// any successor from its own instance table.
    pub fn evict_to_low_watermark_except(
        &self,
        leases: &LeaseTable,
        now: SimTime,
        keep: &BTreeSet<u64>,
    ) -> EvictionReport {
        if self.device.utilization() <= self.config.high_watermark {
            return EvictionReport::default();
        }
        self.evict_while(leases, now, keep, |device| {
            device.utilization() > self.config.low_watermark
        })
    }

    /// Evicts (same candidate rules as
    /// [`Store::evict_to_low_watermark`]) until at least `pages` device
    /// pages are free, regardless of watermarks — the porter's
    /// capacity-aware placement hook. Returns what was freed; check
    /// `device.free_pages()` afterwards to see whether the goal was met.
    pub fn evict_for(&self, pages: u64, leases: &LeaseTable, now: SimTime) -> EvictionReport {
        self.evict_for_except(pages, leases, now, &BTreeSet::new())
    }

    /// [`Store::evict_for`] with the same protection set as
    /// [`Store::evict_to_low_watermark_except`].
    pub fn evict_for_except(
        &self,
        pages: u64,
        leases: &LeaseTable,
        now: SimTime,
        keep: &BTreeSet<u64>,
    ) -> EvictionReport {
        self.evict_while(leases, now, keep, |device| device.free_pages() < pages)
    }

    /// Releases every unpinned, unleased image whose epoch is strictly
    /// below `min_epoch` (epoch-based GC).
    pub fn gc_epochs_below(
        &self,
        min_epoch: u64,
        leases: &LeaseTable,
        now: SimTime,
    ) -> EvictionReport {
        let mut report = EvictionReport::default();
        loop {
            let candidate = {
                let inner = self.inner.lock();
                inner
                    .catalog
                    .iter()
                    .filter(|(_, m)| m.epoch < min_epoch && Self::evictable(m, leases, now))
                    .map(|(&id, _)| ImageId(id))
                    .next()
            };
            let Some(id) = candidate else {
                return report;
            };
            let freed = self.evict_image(id);
            report.images += 1;
            report.pages += freed;
        }
    }

    /// Aborts pending images whose owner's lease has lapsed — the
    /// store-side half of crash-orphan reclamation
    /// ([`cxl_fault::reclaim_orphans`] destroys the on-device staging
    /// regions; this drops the index references a dead node's
    /// mid-checkpoint intern calls took). Returns data pages freed.
    pub fn reclaim_orphan_pending(&self, leases: &LeaseTable, now: SimTime) -> u64 {
        let mut inner = self.inner.lock();
        let orphans: Vec<u64> = inner
            .pending
            .iter()
            .filter(|(_, m)| !leases.is_live(m.owner, now))
            .map(|(&id, _)| id)
            .collect();
        let mut freed = 0;
        for id in orphans {
            let meta = inner
                .pending
                .remove(&id)
                // cxl-lint: allow(device-unwrap): the orphan id list was collected from this same map under the same lock hold
                .expect("collected above");
            self.journal_append(
                &mut inner,
                meta.owner,
                meta.epoch,
                Record::Abort { image: id },
                None,
            );
            freed += Self::drop_refs(&self.device, &mut inner, &meta.fingerprints);
        }
        freed
    }

    /// The content index, for auditors ([`IndexEntrySnapshot`] per
    /// entry, fingerprint-ordered).
    pub fn index_snapshot(&self) -> Vec<IndexEntrySnapshot> {
        self.inner
            .lock()
            .index
            .iter()
            .map(|(&fingerprint, e)| IndexEntrySnapshot {
                fingerprint,
                page: e.page,
                refs: e.refs,
            })
            .collect()
    }

    /// Reference counts the index *should* hold, recomputed from the
    /// catalog and pending images (fingerprint → multiplicity).
    pub fn live_reference_counts(&self) -> BTreeMap<u64, u64> {
        let inner = self.inner.lock();
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for meta in inner.catalog.values().chain(inner.pending.values()) {
            for &fp in &meta.fingerprints {
                *counts.entry(fp).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Test hook: overwrites an index entry's refcount, desynchronizing
    /// it from the catalog (seeds `ContentIndexSkew`).
    #[doc(hidden)]
    pub fn debug_force_refs(&self, fingerprint: u64, refs: u64) {
        if let Some(e) = self.inner.lock().index.get_mut(&fingerprint) {
            e.refs = refs;
        }
    }

    /// Test hook: plants an index entry pointing at an arbitrary (e.g.
    /// freed) device page (seeds `DanglingIndexEntry`).
    #[doc(hidden)]
    pub fn debug_plant_index_entry(&self, fingerprint: u64, page: CxlPageId, refs: u64) {
        self.inner
            .lock()
            .index
            .insert(fingerprint, IndexEntry { page, refs });
    }

    fn evictable(meta: &ImageMeta, leases: &LeaseTable, now: SimTime) -> bool {
        if meta.pinned {
            return false;
        }
        match meta.lease {
            Some(holder) => !leases.is_live(holder, now),
            None => true,
        }
    }

    /// Evicts LRU-first while `keep_going(device)` holds and candidates
    /// remain.
    fn evict_while(
        &self,
        leases: &LeaseTable,
        now: SimTime,
        keep: &BTreeSet<u64>,
        keep_going: impl Fn(&CxlDevice) -> bool,
    ) -> EvictionReport {
        let mut report = EvictionReport::default();
        while keep_going(&self.device) {
            let victim = {
                let inner = self.inner.lock();
                inner
                    .catalog
                    .iter()
                    .filter(|(&id, m)| !keep.contains(&id) && Self::evictable(m, leases, now))
                    .min_by_key(|(&id, m)| (m.last_restore, id))
                    .map(|(&id, _)| ImageId(id))
            };
            let Some(id) = victim else {
                break;
            };
            let freed = self.evict_image(id);
            report.images += 1;
            report.pages += freed;
        }
        if report.images > 0 {
            cxl_telemetry::counter_add(TELEMETRY_LAYER, "evicted_images", None, report.images);
            cxl_telemetry::counter_add(TELEMETRY_LAYER, "evicted_pages", None, report.pages);
            cxl_telemetry::record_span(
                "cxlstore.evict",
                0,
                now,
                now,
                &[("images", report.images), ("pages", report.pages)],
            );
        }
        report
    }

    /// Removes one committed image: drops data refs, frees unshared
    /// pages, destroys the metadata region. Returns total pages freed.
    fn evict_image(&self, image: ImageId) -> u64 {
        let mut inner = self.inner.lock();
        let Some(meta) = inner.catalog.remove(&image.0) else {
            return 0;
        };
        // Destructive ordering: journal first, free second.
        self.journal_append(
            &mut inner,
            meta.owner,
            meta.epoch,
            Record::Evict {
                image: image.0,
                meta_region: meta.meta_region.0,
            },
            None,
        );
        self.crashpoint("evict.after_journal");
        let mut freed = Self::drop_refs(&self.device, &mut inner, &meta.fingerprints);
        freed += self.device.destroy_region(meta.meta_region).unwrap_or(0);
        inner.stats.evicted_images += 1;
        inner.stats.evicted_pages += freed;
        self.crashpoint("evict.after_free");
        freed
    }

    /// Decrements refcounts for `fps` and frees device pages whose count
    /// reaches zero. Returns pages freed.
    fn drop_refs(device: &CxlDevice, inner: &mut Inner, fps: &[u64]) -> u64 {
        let mut to_free = Vec::new();
        for fp in fps {
            let entry = inner
                .index
                .get_mut(fp)
                // cxl-lint: allow(device-unwrap): refcount invariant — a catalogued image only holds fingerprints present in the index
                .expect("image references only indexed content");
            entry.refs -= 1;
            if entry.refs == 0 {
                // cxl-lint: allow(device-unwrap): the same entry was just fetched via get_mut under this lock hold
                to_free.push(inner.index.remove(fp).expect("present").page);
            }
        }
        if to_free.is_empty() {
            return 0;
        }
        // `free_batch` is all-or-nothing and its fault hook fires before
        // any mutation, so retrying a transient fault cannot double-free;
        // giving up instead would leak the pages for the store's
        // lifetime.
        let (freed, _) = cxl_fault::with_backoff(&cxl_fault::BackoffPolicy::default(), || {
            device.free_batch(&to_free)
        });
        freed.unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;

    fn device() -> Arc<CxlDevice> {
        Arc::new(CxlDevice::new(256))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn intern(
        store: &Store,
        label: &str,
        data: &[PageData],
        now: SimTime,
    ) -> (ImageId, InternOutcome) {
        let img = store.begin_image(label, NodeId(0), 1, now);
        let out = store.intern_pages(img, data, NodeId(0)).unwrap();
        let meta = store.device().create_region(label);
        store.commit_image(img, meta).unwrap();
        (img, out)
    }

    #[test]
    fn identical_content_across_images_shares_one_device_page() {
        let store = Store::new(device());
        let payload = vec![PageData::pattern(7), PageData::pattern(8)];
        let (_, a) = intern(&store, "a", &payload, t(1));
        let (_, b) = intern(&store, "b", &payload, t(2));
        assert_eq!(a.fresh, 2);
        assert_eq!(a.written, 2);
        assert_eq!(b.fresh, 0);
        assert_eq!(b.shared, 2);
        assert_eq!(a.pages, b.pages, "second image reuses the same pages");
        let stats = store.stats();
        assert_eq!(stats.interned_pages, 4);
        assert_eq!(stats.deduped_pages, 2);
        assert_eq!(stats.bytes_saved(), 2 * PAGE_SIZE);
    }

    #[test]
    fn stripe_placement_spreads_fresh_pages_across_banks() {
        // Locality (the default) packs a miss batch first-fit — same
        // page ids the store always produced — while stripe spreads it
        // across every bank so each fabric port carries an even share.
        let payload: Vec<PageData> = (1..=16u64).map(PageData::pattern).collect();

        let d = Arc::new(CxlDevice::with_shards(256, 8));
        let store = Store::new(Arc::clone(&d));
        let (_, out) = intern(&store, "packed", &payload, t(1));
        let counts = d.shard_partition(&out.written_pages);
        assert_eq!(counts[0], 16, "locality packs into the first bank");

        let d = Arc::new(CxlDevice::with_shards(256, 8));
        let store = Store::with_config(
            Arc::clone(&d),
            StoreConfig {
                placement: PlacementPolicy::Stripe,
                ..StoreConfig::default()
            },
        );
        let (_, out) = intern(&store, "striped", &payload, t(1));
        assert_eq!(out.fresh, 16);
        let counts = d.shard_partition(&out.written_pages);
        assert_eq!(counts, vec![2; 8], "stripe balances every bank");
    }

    #[test]
    fn zero_pages_cost_one_allocation_and_no_write() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let reads_before = d.stats().total_writes();
        let payload = vec![PageData::Zero, PageData::Zero, PageData::Zero];
        let (_, out) = intern(&store, "z", &payload, t(1));
        assert_eq!(out.fresh, 1, "one canonical zero page");
        assert_eq!(out.written, 0, "zero transfer elided");
        assert_eq!(out.zero, 3);
        assert_eq!(out.shared, 2, "second and third hit the canonical page");
        assert_eq!(out.pages[0], out.pages[1]);
        assert_eq!(d.stats().total_writes(), reads_before, "no bytes moved");
        // A later image's zeroes share the same canonical page.
        let (_, out2) = intern(&store, "z2", &[PageData::Zero], t(2));
        assert_eq!(out2.fresh, 0);
        assert_eq!(out2.pages[0], out.pages[0]);
    }

    #[test]
    fn release_frees_unshared_pages_but_keeps_shared_content() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let shared_page = PageData::pattern(1);
        let (a, _) = intern(
            &store,
            "a",
            &[shared_page.clone(), PageData::pattern(2)],
            t(1),
        );
        let (_b, outb) = intern(
            &store,
            "b",
            &[shared_page.clone(), PageData::pattern(3)],
            t(2),
        );
        let used = d.used_pages();
        let freed = store.release_image(a).unwrap();
        assert_eq!(freed, 1, "only a's private page is freed");
        assert_eq!(d.used_pages(), used - 1);
        assert!(!store.is_live(a));
        // b's view of the shared page still resolves and reads back.
        let data = d.read_page(outb.pages[0], NodeId(0)).unwrap();
        assert_eq!(data, shared_page);
    }

    #[test]
    fn aborting_a_pending_image_rolls_its_references_back() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let (_, committed) = intern(&store, "keep", &[PageData::pattern(9)], t(1));
        let before = d.used_pages();
        let img = store.begin_image("doomed", NodeId(1), 2, t(2));
        store
            .intern_pages(
                img,
                &[PageData::pattern(9), PageData::pattern(10)],
                NodeId(1),
            )
            .unwrap();
        assert_eq!(store.abort_image(img).unwrap(), 1, "private page freed");
        assert_eq!(d.used_pages(), before);
        // The surviving image's content is untouched.
        assert_eq!(
            d.read_page(committed.pages[0], NodeId(0)).unwrap(),
            PageData::pattern(9)
        );
        // Index holds exactly one entry again.
        assert_eq!(store.index_snapshot().len(), 1);
    }

    #[test]
    fn failed_intern_is_all_or_nothing() {
        use cxl_mem::DeviceOp;
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let (_, _) = intern(&store, "base", &[PageData::pattern(1)], t(1));
        let used = d.used_pages();
        let snapshot = store.index_snapshot();

        // Inject a write fault: the intern attempt must roll back.
        #[derive(Debug)]
        struct FailWrites;
        impl cxl_mem::FaultHook for FailWrites {
            fn inject(
                &self,
                op: DeviceOp,
                _page: Option<CxlPageId>,
                _node: NodeId,
            ) -> Option<CxlError> {
                (op == DeviceOp::Write).then_some(CxlError::Transient { op: "write" })
            }
        }
        d.set_fault_hook(Some(Arc::new(FailWrites)));
        let img = store.begin_image("fails", NodeId(0), 2, t(2));
        let err = store
            .intern_pages(
                img,
                &[PageData::pattern(1), PageData::pattern(2)],
                NodeId(0),
            )
            .unwrap_err();
        assert!(err.is_transient());
        d.set_fault_hook(None);

        assert_eq!(d.used_pages(), used, "allocations rolled back");
        assert_eq!(store.index_snapshot(), snapshot, "index untouched");
        // The retry succeeds and refcounts end up right (refs=2 for the
        // shared fingerprint, not 3).
        let out = store
            .intern_pages(
                img,
                &[PageData::pattern(1), PageData::pattern(2)],
                NodeId(0),
            )
            .unwrap();
        assert_eq!(out.fresh, 1);
        let refs: Vec<u64> = store.index_snapshot().iter().map(|e| e.refs).collect();
        assert_eq!(refs.iter().sum::<u64>(), 3);
    }

    #[test]
    fn eviction_is_lru_and_respects_pins_and_leases() {
        let d = Arc::new(CxlDevice::new(64));
        let store = Store::with_config(
            Arc::clone(&d),
            StoreConfig {
                high_watermark: 0.3,
                low_watermark: 0.2,
                ..StoreConfig::default()
            },
        );
        let mut leases = LeaseTable::new(SimDuration::from_secs(10));
        leases.renew(NodeId(2), t(100));

        // Four images, ten private pages each.
        let mk = |i: u64, now| {
            let data: Vec<PageData> = (0..10).map(|p| PageData::pattern(i * 100 + p)).collect();
            intern(&store, &format!("img{i}"), &data, now).0
        };
        let a = mk(1, t(1)); // LRU
        let b = mk(2, t(2));
        let c = mk(3, t(3));
        let e = mk(4, t(4));
        store.set_pinned(b, true).unwrap();
        store.set_lease(c, Some(NodeId(2))).unwrap(); // live lease at t(100)
        store.touch_restore(a, t(50)); // now e is LRU, then a

        assert!(d.utilization() > 0.3);
        let report = store.evict_to_low_watermark(&leases, t(100));
        // e (last_restore t4) goes first, then a (t50); b pinned and c
        // leased survive even though utilization stays high.
        assert_eq!(report.images, 2);
        assert!(!store.is_live(e) && !store.is_live(a));
        assert!(store.is_live(b) && store.is_live(c));

        // Once the lease lapses, c becomes evictable; b never does.
        let report = store.evict_to_low_watermark(&leases, t(200));
        assert_eq!(report.images, 1);
        assert!(!store.is_live(c));
        assert!(store.is_live(b));
        let report = store.evict_to_low_watermark(&leases, t(201));
        assert_eq!(report.images, 0, "only the pinned image remains");
        assert!(store.is_live(b));
    }

    #[test]
    fn hysteresis_below_high_watermark_evicts_nothing() {
        let d = Arc::new(CxlDevice::new(1024));
        let store = Store::new(Arc::clone(&d));
        let leases = LeaseTable::new(SimDuration::from_secs(10));
        let (img, _) = intern(&store, "small", &[PageData::pattern(1)], t(1));
        let report = store.evict_to_low_watermark(&leases, t(2));
        assert_eq!(report, EvictionReport::default());
        assert!(store.is_live(img));
    }

    #[test]
    fn epoch_gc_releases_only_older_unpinned_epochs() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let leases = LeaseTable::new(SimDuration::from_secs(10));
        let mk = |label: &str, epoch| {
            let img = store.begin_image(label, NodeId(0), epoch, t(epoch));
            store
                .intern_pages(img, &[PageData::pattern(epoch * 7)], NodeId(0))
                .unwrap();
            store
                .commit_image(img, store.device().create_region(label))
                .unwrap();
            img
        };
        let old = mk("old", 1);
        let mid = mk("mid", 2);
        let new = mk("new", 3);
        store.set_pinned(mid, true).unwrap();
        let report = store.gc_epochs_below(3, &leases, t(10));
        assert_eq!(report.images, 1);
        assert!(!store.is_live(old));
        assert!(store.is_live(mid), "pinned survives GC");
        assert!(store.is_live(new));
    }

    #[test]
    fn orphaned_pending_images_are_reclaimed_when_the_lease_lapses() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let mut leases = LeaseTable::new(SimDuration::from_secs(5));
        leases.renew(NodeId(1), t(1));
        let img = store.begin_image("torn", NodeId(1), 1, t(1));
        store
            .intern_pages(
                img,
                &[PageData::pattern(1), PageData::pattern(2)],
                NodeId(1),
            )
            .unwrap();
        // Lease still live: nothing reclaimed.
        assert_eq!(store.reclaim_orphan_pending(&leases, t(2)), 0);
        // Lease lapsed: the torn image's pages come back.
        assert_eq!(store.reclaim_orphan_pending(&leases, t(60)), 2);
        assert_eq!(d.used_pages(), 0);
        assert!(store.index_snapshot().is_empty());
    }

    #[test]
    fn reference_counts_reconcile_with_the_catalog() {
        let store = Store::new(device());
        let shared = PageData::pattern(5);
        intern(&store, "a", &[shared.clone(), PageData::pattern(6)], t(1));
        intern(&store, "b", &[shared.clone(), shared.clone()], t(2));
        let expected = store.live_reference_counts();
        for e in store.index_snapshot() {
            assert_eq!(expected.get(&e.fingerprint), Some(&e.refs));
        }
        assert_eq!(expected.values().sum::<u64>(), 4);
    }

    #[test]
    fn mutators_return_typed_errors_instead_of_silent_no_ops() {
        let store = Store::new(device());
        let ghost = ImageId(99);
        assert_eq!(
            store.commit_image(ghost, RegionId(1)),
            Err(StoreError::UnknownImage {
                image: ghost,
                op: "commit_image"
            })
        );
        assert_eq!(
            store.abort_image(ghost),
            Err(StoreError::UnknownImage {
                image: ghost,
                op: "abort_image"
            })
        );
        assert_eq!(
            store.release_image(ghost),
            Err(StoreError::UnknownImage {
                image: ghost,
                op: "release_image"
            })
        );
        assert_eq!(
            store.set_pinned(ghost, true),
            Err(StoreError::UnknownImage {
                image: ghost,
                op: "set_pinned"
            })
        );
        assert_eq!(
            store.set_lease(ghost, None),
            Err(StoreError::UnknownImage {
                image: ghost,
                op: "set_lease"
            })
        );

        // Pending images: commit works once, committed-only mutators
        // reject with NotCommitted until then.
        let img = store.begin_image("typed", NodeId(0), 1, t(1));
        assert_eq!(
            store.set_pinned(img, true),
            Err(StoreError::NotCommitted {
                image: img,
                op: "set_pinned"
            })
        );
        assert_eq!(
            store.release_image(img),
            Err(StoreError::NotCommitted {
                image: img,
                op: "release_image"
            })
        );
        let meta = store.device().create_region("typed-meta");
        store.commit_image(img, meta).unwrap();
        // Double commit and late abort both surface AlreadyCommitted.
        assert_eq!(
            store.commit_image(img, meta),
            Err(StoreError::AlreadyCommitted {
                image: img,
                op: "commit_image"
            })
        );
        assert_eq!(
            store.abort_image(img),
            Err(StoreError::AlreadyCommitted {
                image: img,
                op: "abort_image"
            })
        );
        // After release, the id is unknown — a double release says so.
        store.release_image(img).unwrap();
        assert_eq!(
            store.release_image(img),
            Err(StoreError::UnknownImage {
                image: img,
                op: "release_image"
            })
        );
    }

    fn durable_config() -> StoreConfig {
        StoreConfig {
            durable: true,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn durable_store_recovers_catalog_index_and_flags() {
        let d = device();
        let store = Store::with_config(Arc::clone(&d), durable_config());
        let shared = PageData::pattern(5);

        let a = store.begin_image("img-a", NodeId(1), 1, t(1));
        let out_a = store
            .intern_pages(a, &[shared.clone(), PageData::pattern(6)], NodeId(1))
            .unwrap();
        assert!(out_a.journal_pages > 0, "durable interns write the journal");
        let meta_a = d.create_region("img-a-meta");
        store.commit_image(a, meta_a).unwrap();
        store.set_pinned(a, true).unwrap();

        let b = store.begin_image("img-b", NodeId(2), 2, t(2));
        store
            .intern_pages(b, &[shared.clone(), PageData::Zero], NodeId(2))
            .unwrap();
        let meta_b = d.create_region("img-b-meta");
        store.commit_image(b, meta_b).unwrap();
        store.set_lease(b, Some(NodeId(2))).unwrap();

        // A released image must stay gone after recovery.
        let c = store.begin_image("img-c", NodeId(1), 3, t(3));
        store
            .intern_pages(c, &[PageData::pattern(77)], NodeId(1))
            .unwrap();
        let meta_c = d.create_region("img-c-meta");
        store.commit_image(c, meta_c).unwrap();
        store.release_image(c).unwrap();
        d.destroy_region(meta_c).unwrap();

        let index_before = store.index_snapshot();
        let expect_next = store.begin_image("probe", NodeId(1), 4, t(4));
        store.abort_image(expect_next).unwrap();
        drop(store); // coordinator dies; only the device survives

        let (recovered, report) = Store::recover(Arc::clone(&d), durable_config(), NodeId(3));
        assert_eq!(report.committed_images, 2);
        assert_eq!(report.rolled_back_pending, 0);
        assert_eq!(report.torn_tail_bytes, 0);
        assert_eq!(report.freed_leaked_pages, 0);
        assert_eq!(report.fingerprint_mismatches, 0);
        assert!(report.pages_scanned > 0);
        assert!(report.compaction_pages_written > 0);

        assert!(recovered.is_live(a) && recovered.is_live(b));
        assert!(!recovered.is_live(c));
        let meta = recovered.image_meta(a).unwrap();
        assert!(meta.pinned);
        assert_eq!(meta.owner, NodeId(1));
        assert_eq!(meta.meta_region, meta_a);
        assert_eq!(recovered.image_meta(b).unwrap().lease, Some(NodeId(2)));
        assert_eq!(recovered.index_snapshot(), index_before);

        // Recovery is deterministic: same device state, same report.
        drop(recovered);
        let (again, report2) = Store::recover(Arc::clone(&d), durable_config(), NodeId(3));
        let mut expected = report.clone();
        // The re-recovery replays the compacted journal (one snapshot)
        // and sees the fresh generation number.
        expected.journal_generation += 1;
        expected.entries_replayed = 1;
        expected.pages_scanned = report2.pages_scanned;
        assert_eq!(report2, expected);

        // Ids never repeat across the crash.
        let next = again.begin_image("post", NodeId(3), 5, t(9));
        assert!(next.0 > expect_next.0);
    }

    #[test]
    fn recovery_frees_pages_interned_but_never_journaled() {
        let d = device();
        let store = Store::with_config(Arc::clone(&d), durable_config());
        let (a, _) = intern(&store, "keep", &[PageData::pattern(1)], t(1));

        // Model a crash between the device write and the journal record:
        // pages land in the data region with no Intern record. The crash
        // sweep reaches this state via the `intern.after_data_write`
        // crashpoint; here we plant it directly.
        let region = store.data_region();
        let orphaned = d.alloc_batch(region, 3).unwrap();
        d.write_pages(&[(orphaned[0], PageData::pattern(9))], NodeId(1))
            .unwrap();
        drop(store);

        let (recovered, report) = Store::recover(Arc::clone(&d), durable_config(), NodeId(0));
        assert_eq!(report.freed_leaked_pages, 3);
        assert_eq!(report.committed_images, 1);
        assert!(recovered.is_live(a));
        // Device accounting is balanced: exactly the surviving image's
        // page, its meta region page count, and the journal remain.
        assert_eq!(recovered.index_snapshot().len(), 1);
    }
}
