//! Content-addressed checkpoint image store over the simulated CXL
//! device.
//!
//! The paper keeps checkpoint images resident in a *finite* CXL device
//! and shares them across restores. Before this crate the workspace
//! deduplicated only clones of the *same* checkpoint: two function
//! templates whose address spaces contain identical runtime, library, or
//! zero pages paid for every byte twice, and nothing ever evicted — the
//! device simply filled until allocation exhaustion.
//!
//! [`Store`] fixes both halves:
//!
//! * **Cross-image dedup.** A refcounted content index maps the 64-bit
//!   page fingerprint ([`PageData::fingerprint`]) to one device page.
//!   `CxlFork::checkpoint` routes its batched data-page writes through
//!   [`Store::intern_pages`]; a page whose content is already resident
//!   (in *any* image) resolves to the existing device page and moves no
//!   bytes. Zero pages are elided entirely from the transfer: freshly
//!   allocated device pages are already zeroed, so the canonical zero
//!   page costs one allocation and no write, ever.
//! * **Capacity-pressure GC.** An image catalog tracks per-image
//!   metadata — owner, epoch, pinned/lease state (leases from
//!   [`cxl_fault::LeaseTable`]), last-restore virtual time — and drives
//!   epoch-based GC plus watermark eviction: when device utilization
//!   crosses the high watermark, unpinned images whose lease holder is
//!   not live are evicted in LRU-by-last-restore order until utilization
//!   falls below the low watermark. A restore of an evicted image gets a
//!   typed miss from the mechanism (never stale bytes), and the porter
//!   re-checkpoints on the next eligible invocation.
//!
//! Interning is all-or-nothing per attempt: a failed allocation or write
//! rolls the attempt's device pages back and leaves the index untouched,
//! so `cxl_fault::with_backoff`-style retries never double-count
//! references.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use cxl_fault::LeaseTable;
use cxl_mem::lockdep::TrackedMutex;
use cxl_mem::{CxlDevice, CxlError, CxlPageId, NodeId, PageData, RegionId, PAGE_SIZE};
use simclock::SimTime;

/// Telemetry layer name for store counters.
const TELEMETRY_LAYER: &str = "cxlstore";

/// Identifies one checkpoint image in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImageId(pub u64);

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image#{}", self.0)
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Device utilization (`used_pages / capacity`) above which eviction
    /// starts.
    pub high_watermark: f64,
    /// Utilization eviction drives down to once it starts (hysteresis so
    /// the store does not thrash at the boundary).
    pub low_watermark: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            high_watermark: 0.85,
            low_watermark: 0.70,
        }
    }
}

/// What one [`Store::intern_pages`] call did, page-accounted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternOutcome {
    /// The device page backing each input page, **in input order**.
    /// Shared content repeats the same page id.
    pub pages: Vec<CxlPageId>,
    /// Device pages newly allocated by this call (content not previously
    /// resident), including a canonical zero page if one was minted.
    pub fresh: u64,
    /// Pages whose bytes actually crossed the fabric (`fresh` minus the
    /// zero pages elided because fresh allocations are already zeroed).
    pub written: u64,
    /// Input pages resolved to an already-resident device page.
    pub shared: u64,
    /// Input pages that were all-zero (always transfer-free).
    pub zero: u64,
}

/// Monotonic counters describing store activity since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total pages interned (inputs to [`Store::intern_pages`]).
    pub interned_pages: u64,
    /// Inputs resolved to an existing device page (cross- or
    /// intra-image).
    pub deduped_pages: u64,
    /// Device pages newly allocated for content.
    pub fresh_pages: u64,
    /// Zero-page inputs whose transfer was elided.
    pub zero_elided: u64,
    /// Images evicted under capacity pressure or epoch GC.
    pub evicted_images: u64,
    /// Device pages freed by eviction/GC/release (data + metadata).
    pub evicted_pages: u64,
    /// Images released explicitly by their owner.
    pub released_images: u64,
}

impl StoreStats {
    /// Fabric bytes the store avoided moving (dedup hits plus elided
    /// zero writes).
    pub fn bytes_saved(&self) -> u64 {
        (self.deduped_pages + self.zero_elided) * PAGE_SIZE
    }

    /// Interned-to-written ratio (1.0 = no sharing; higher = better).
    pub fn dedup_ratio(&self) -> f64 {
        let written = self
            .fresh_pages
            .saturating_sub(self.zero_elided.min(self.fresh_pages));
        if written == 0 {
            return self.interned_pages as f64;
        }
        self.interned_pages as f64 / written as f64
    }
}

/// Per-image catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageMeta {
    /// Human-readable label (mirrors the checkpoint region name).
    pub label: String,
    /// Node that took the checkpoint.
    pub owner: NodeId,
    /// Checkpoint epoch (the mechanism's sequence number).
    pub epoch: u64,
    /// Pinned images are never evicted.
    pub pinned: bool,
    /// A node currently depending on this image (running instances
    /// restored from it). While the holder's lease is live in the
    /// [`LeaseTable`], the image is exempt from eviction.
    pub lease: Option<NodeId>,
    /// Virtual time the image was created.
    pub created_at: SimTime,
    /// Virtual time of the most recent restore (eviction is
    /// LRU-by-last-restore).
    pub last_restore: SimTime,
    /// The checkpoint's metadata region (leaves, VMA blocks, task,
    /// globals) — destroyed along with the image on eviction.
    pub meta_region: RegionId,
    /// Content fingerprints referenced by this image, with multiplicity.
    fingerprints: Vec<u64>,
}

impl ImageMeta {
    /// Distinct data-page references held by this image (with
    /// multiplicity; equals the checkpoint's data page count).
    pub fn data_refs(&self) -> u64 {
        self.fingerprints.len() as u64
    }
}

/// A content-index entry as seen by auditors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntrySnapshot {
    /// Content fingerprint.
    pub fingerprint: u64,
    /// Device page holding that content.
    pub page: CxlPageId,
    /// Number of image references (with multiplicity).
    pub refs: u64,
}

/// What one eviction/GC sweep freed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionReport {
    /// Images removed from the catalog.
    pub images: u64,
    /// Device pages freed (shared data pages whose refcount reached
    /// zero, plus each image's metadata region).
    pub pages: u64,
}

#[derive(Debug)]
struct IndexEntry {
    page: CxlPageId,
    refs: u64,
}

#[derive(Debug)]
struct Inner {
    /// The store-owned committed region holding all deduped data pages.
    region: RegionId,
    /// fingerprint → (device page, refcount).
    index: BTreeMap<u64, IndexEntry>,
    /// Committed images, by id.
    catalog: BTreeMap<u64, ImageMeta>,
    /// Images begun but not yet committed (mid-checkpoint).
    pending: BTreeMap<u64, ImageMeta>,
    next_image: u64,
    stats: StoreStats,
}

/// The content-addressed checkpoint image store. Cheap to share
/// (`Arc<Store>`); all methods take `&self`.
#[derive(Debug)]
pub struct Store {
    device: Arc<CxlDevice>,
    config: StoreConfig,
    inner: TrackedMutex<Inner>,
}

impl Store {
    /// Creates a store over `device` with default watermarks.
    pub fn new(device: Arc<CxlDevice>) -> Self {
        Store::with_config(device, StoreConfig::default())
    }

    /// Creates a store with explicit watermarks.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low_watermark <= high_watermark <= 1`.
    pub fn with_config(device: Arc<CxlDevice>, config: StoreConfig) -> Self {
        assert!(
            config.low_watermark > 0.0
                && config.low_watermark <= config.high_watermark
                && config.high_watermark <= 1.0,
            "store watermarks must satisfy 0 < low <= high <= 1, got {config:?}"
        );
        let region = device.create_region("cxl-store:data");
        Store {
            device,
            config,
            inner: TrackedMutex::new(
                "cxl_store.inner",
                Inner {
                    region,
                    index: BTreeMap::new(),
                    catalog: BTreeMap::new(),
                    pending: BTreeMap::new(),
                    next_image: 1,
                    stats: StoreStats::default(),
                },
            ),
        }
    }

    /// The device this store allocates from.
    pub fn device(&self) -> &Arc<CxlDevice> {
        &self.device
    }

    /// The store's watermark configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The committed region owning every deduped data page.
    pub fn data_region(&self) -> RegionId {
        self.inner.lock().region
    }

    /// Activity counters since creation.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Registers a new (pending) image. The image holds no pages until
    /// [`Store::intern_pages`] runs, and is invisible to eviction until
    /// [`Store::commit_image`].
    pub fn begin_image(&self, label: &str, owner: NodeId, epoch: u64, now: SimTime) -> ImageId {
        let mut inner = self.inner.lock();
        let id = inner.next_image;
        inner.next_image += 1;
        inner.pending.insert(
            id,
            ImageMeta {
                label: label.to_owned(),
                owner,
                epoch,
                pinned: false,
                lease: None,
                created_at: now,
                last_restore: now,
                meta_region: RegionId(u64::MAX),
                fingerprints: Vec::new(),
            },
        );
        ImageId(id)
    }

    /// Interns a batch of page contents for `image`, returning the
    /// backing device page for each input **in input order**. Content
    /// already resident (in any image, or earlier in this batch) resolves
    /// to the existing page and moves no bytes; zero pages cost one
    /// allocation ever and no write. Callers charge
    /// `LatencyModel::cxl_batch_write(outcome.written)` for the transfer.
    ///
    /// All-or-nothing per attempt: on error every device page this call
    /// allocated is freed again and the index is untouched, so wrapping
    /// the call in `cxl_fault::with_backoff` retries cannot double-count
    /// references.
    ///
    /// # Errors
    ///
    /// Propagates device allocation/write failures (including injected
    /// faults).
    ///
    /// # Panics
    ///
    /// Panics if `image` is not a pending image of this store.
    pub fn intern_pages(
        &self,
        image: ImageId,
        data: &[PageData],
        node: NodeId,
    ) -> Result<InternOutcome, CxlError> {
        let mut inner = self.inner.lock();
        assert!(
            inner.pending.contains_key(&image.0),
            "intern_pages on unknown or committed {image}"
        );

        // Resolve each input against the index and this batch's own
        // misses; plan allocations for content seen for the first time.
        let fps: Vec<u64> = data.iter().map(PageData::fingerprint).collect();
        let mut planned: BTreeMap<u64, usize> = BTreeMap::new(); // fp → miss slot
        let mut miss_payload: Vec<&PageData> = Vec::new();
        let mut shared = 0u64;
        let mut zero = 0u64;
        for (fp, d) in fps.iter().zip(data) {
            if matches!(d, PageData::Zero) {
                zero += 1;
            }
            if inner.index.contains_key(fp) || planned.contains_key(fp) {
                shared += 1;
            } else {
                planned.insert(*fp, miss_payload.len());
                miss_payload.push(d);
            }
        }

        let allocated = self
            .device
            .alloc_batch(inner.region, miss_payload.len() as u64)?;
        // Fresh allocations are already zeroed, so only non-zero misses
        // cross the fabric.
        let writes: Vec<(CxlPageId, PageData)> = miss_payload
            .iter()
            .zip(&allocated)
            .filter(|(d, _)| !matches!(d, PageData::Zero))
            .map(|(d, &p)| (p, (*d).clone()))
            .collect();
        if let Err(e) = self.device.write_pages(&writes, node) {
            // Roll the attempt back so a retry starts from scratch; the
            // rollback free itself retries transients rather than leak.
            let (_, _) = cxl_fault::with_backoff(&cxl_fault::BackoffPolicy::default(), || {
                self.device.free_batch(&allocated)
            });
            return Err(e);
        }

        // Device state is in place — publish to the index and the image.
        for (fp, slot) in &planned {
            inner.index.insert(
                *fp,
                IndexEntry {
                    page: allocated[*slot],
                    refs: 0,
                },
            );
        }
        let mut pages = Vec::with_capacity(fps.len());
        for fp in &fps {
            // cxl-lint: allow(device-unwrap): intern invariant — every fp was inserted into the index in the resolve pass just above
            let entry = inner.index.get_mut(fp).expect("resolved above");
            entry.refs += 1;
            pages.push(entry.page);
        }
        inner
            .pending
            .get_mut(&image.0)
            // cxl-lint: allow(device-unwrap): intern invariant — the pending entry was validated at function entry and the lock is still held
            .expect("checked above")
            .fingerprints
            .extend_from_slice(&fps);

        let fresh = allocated.len() as u64;
        let written = writes.len() as u64;
        let outcome = InternOutcome {
            pages,
            fresh,
            written,
            shared,
            zero,
        };
        let stats = &mut inner.stats;
        stats.interned_pages += fps.len() as u64;
        stats.deduped_pages += shared;
        stats.fresh_pages += fresh;
        stats.zero_elided += fresh - written;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "interned", Some(node.0), fps.len() as u64);
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "dedup_hits", Some(node.0), shared);
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "fresh_pages", Some(node.0), fresh);
        cxl_telemetry::counter_add(
            TELEMETRY_LAYER,
            "bytes_saved",
            Some(node.0),
            (fps.len() as u64 - written) * PAGE_SIZE,
        );
        Ok(outcome)
    }

    /// Publishes a pending image into the catalog. `meta_region` is the
    /// checkpoint's committed metadata region; eviction destroys it along
    /// with the image's data references.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not pending.
    pub fn commit_image(&self, image: ImageId, meta_region: RegionId) {
        let mut inner = self.inner.lock();
        let mut meta = inner
            .pending
            .remove(&image.0)
            .unwrap_or_else(|| panic!("commit_image on unknown {image}"));
        meta.meta_region = meta_region;
        inner.catalog.insert(image.0, meta);
    }

    /// Abandons a pending image (failed checkpoint), dropping its index
    /// references and freeing any now-unreferenced device pages. Returns
    /// the number of data pages freed. No-op for unknown ids.
    pub fn abort_image(&self, image: ImageId) -> u64 {
        let mut inner = self.inner.lock();
        let Some(meta) = inner.pending.remove(&image.0) else {
            return 0;
        };
        let fps = meta.fingerprints;
        Self::drop_refs(&self.device, &mut inner, &fps)
    }

    /// True while `image` is restorable (committed and not evicted).
    pub fn is_live(&self, image: ImageId) -> bool {
        self.inner.lock().catalog.contains_key(&image.0)
    }

    /// A copy of the catalog entry, if live.
    pub fn image_meta(&self, image: ImageId) -> Option<ImageMeta> {
        self.inner.lock().catalog.get(&image.0).cloned()
    }

    /// Number of committed images.
    pub fn image_count(&self) -> usize {
        self.inner.lock().catalog.len()
    }

    /// Records a successful restore at `now` (LRU bookkeeping). No-op
    /// for unknown ids.
    pub fn touch_restore(&self, image: ImageId, now: SimTime) {
        if let Some(meta) = self.inner.lock().catalog.get_mut(&image.0) {
            meta.last_restore = meta.last_restore.max(now);
        }
    }

    /// Pins or unpins an image. Pinned images are never evicted.
    pub fn set_pinned(&self, image: ImageId, pinned: bool) {
        if let Some(meta) = self.inner.lock().catalog.get_mut(&image.0) {
            meta.pinned = pinned;
        }
    }

    /// Marks `holder` as depending on the image (e.g. running instances
    /// restored from it). While the holder's lease is live, the image is
    /// exempt from eviction. `None` clears the lease.
    pub fn set_lease(&self, image: ImageId, holder: Option<NodeId>) {
        if let Some(meta) = self.inner.lock().catalog.get_mut(&image.0) {
            meta.lease = holder;
        }
    }

    /// Releases a committed image: drops its index references, frees
    /// now-unreferenced data pages, and forgets the catalog entry. The
    /// metadata region is the caller's to destroy (the mechanism owns
    /// it). Returns the number of data pages freed; no-op for unknown
    /// ids.
    pub fn release_image(&self, image: ImageId) -> u64 {
        let mut inner = self.inner.lock();
        let Some(meta) = inner.catalog.remove(&image.0) else {
            return 0;
        };
        let fps = meta.fingerprints;
        let freed = Self::drop_refs(&self.device, &mut inner, &fps);
        inner.stats.released_images += 1;
        inner.stats.evicted_pages += freed;
        freed
    }

    /// Evicts images until device utilization is at or below the low
    /// watermark — but only once it exceeds the high watermark
    /// (hysteresis). Candidates are committed images that are not pinned
    /// and whose lease holder (if any) is not live in `leases` at `now`;
    /// they go in LRU-by-last-restore order (ties: lowest id). Each
    /// eviction frees the image's unshared data pages and destroys its
    /// metadata region.
    pub fn evict_to_low_watermark(&self, leases: &LeaseTable, now: SimTime) -> EvictionReport {
        if self.device.utilization() <= self.config.high_watermark {
            return EvictionReport::default();
        }
        self.evict_while(leases, now, |device| {
            device.utilization() > self.config.low_watermark
        })
    }

    /// Evicts (same candidate rules as
    /// [`Store::evict_to_low_watermark`]) until at least `pages` device
    /// pages are free, regardless of watermarks — the porter's
    /// capacity-aware placement hook. Returns what was freed; check
    /// `device.free_pages()` afterwards to see whether the goal was met.
    pub fn evict_for(&self, pages: u64, leases: &LeaseTable, now: SimTime) -> EvictionReport {
        self.evict_while(leases, now, |device| device.free_pages() < pages)
    }

    /// Releases every unpinned, unleased image whose epoch is strictly
    /// below `min_epoch` (epoch-based GC).
    pub fn gc_epochs_below(
        &self,
        min_epoch: u64,
        leases: &LeaseTable,
        now: SimTime,
    ) -> EvictionReport {
        let mut report = EvictionReport::default();
        loop {
            let candidate = {
                let inner = self.inner.lock();
                inner
                    .catalog
                    .iter()
                    .filter(|(_, m)| m.epoch < min_epoch && Self::evictable(m, leases, now))
                    .map(|(&id, _)| ImageId(id))
                    .next()
            };
            let Some(id) = candidate else {
                return report;
            };
            let freed = self.evict_image(id);
            report.images += 1;
            report.pages += freed;
        }
    }

    /// Aborts pending images whose owner's lease has lapsed — the
    /// store-side half of crash-orphan reclamation
    /// ([`cxl_fault::reclaim_orphans`] destroys the on-device staging
    /// regions; this drops the index references a dead node's
    /// mid-checkpoint intern calls took). Returns data pages freed.
    pub fn reclaim_orphan_pending(&self, leases: &LeaseTable, now: SimTime) -> u64 {
        let mut inner = self.inner.lock();
        let orphans: Vec<u64> = inner
            .pending
            .iter()
            .filter(|(_, m)| !leases.is_live(m.owner, now))
            .map(|(&id, _)| id)
            .collect();
        let mut freed = 0;
        for id in orphans {
            let fps = inner
                .pending
                .remove(&id)
                // cxl-lint: allow(device-unwrap): the orphan id list was collected from this same map under the same lock hold
                .expect("collected above")
                .fingerprints;
            freed += Self::drop_refs(&self.device, &mut inner, &fps);
        }
        freed
    }

    /// The content index, for auditors ([`IndexEntrySnapshot`] per
    /// entry, fingerprint-ordered).
    pub fn index_snapshot(&self) -> Vec<IndexEntrySnapshot> {
        self.inner
            .lock()
            .index
            .iter()
            .map(|(&fingerprint, e)| IndexEntrySnapshot {
                fingerprint,
                page: e.page,
                refs: e.refs,
            })
            .collect()
    }

    /// Reference counts the index *should* hold, recomputed from the
    /// catalog and pending images (fingerprint → multiplicity).
    pub fn live_reference_counts(&self) -> BTreeMap<u64, u64> {
        let inner = self.inner.lock();
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for meta in inner.catalog.values().chain(inner.pending.values()) {
            for &fp in &meta.fingerprints {
                *counts.entry(fp).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Test hook: overwrites an index entry's refcount, desynchronizing
    /// it from the catalog (seeds `ContentIndexSkew`).
    #[doc(hidden)]
    pub fn debug_force_refs(&self, fingerprint: u64, refs: u64) {
        if let Some(e) = self.inner.lock().index.get_mut(&fingerprint) {
            e.refs = refs;
        }
    }

    /// Test hook: plants an index entry pointing at an arbitrary (e.g.
    /// freed) device page (seeds `DanglingIndexEntry`).
    #[doc(hidden)]
    pub fn debug_plant_index_entry(&self, fingerprint: u64, page: CxlPageId, refs: u64) {
        self.inner
            .lock()
            .index
            .insert(fingerprint, IndexEntry { page, refs });
    }

    fn evictable(meta: &ImageMeta, leases: &LeaseTable, now: SimTime) -> bool {
        if meta.pinned {
            return false;
        }
        match meta.lease {
            Some(holder) => !leases.is_live(holder, now),
            None => true,
        }
    }

    /// Evicts LRU-first while `keep_going(device)` holds and candidates
    /// remain.
    fn evict_while(
        &self,
        leases: &LeaseTable,
        now: SimTime,
        keep_going: impl Fn(&CxlDevice) -> bool,
    ) -> EvictionReport {
        let mut report = EvictionReport::default();
        while keep_going(&self.device) {
            let victim = {
                let inner = self.inner.lock();
                inner
                    .catalog
                    .iter()
                    .filter(|(_, m)| Self::evictable(m, leases, now))
                    .min_by_key(|(&id, m)| (m.last_restore, id))
                    .map(|(&id, _)| ImageId(id))
            };
            let Some(id) = victim else {
                break;
            };
            let freed = self.evict_image(id);
            report.images += 1;
            report.pages += freed;
        }
        if report.images > 0 {
            cxl_telemetry::counter_add(TELEMETRY_LAYER, "evicted_images", None, report.images);
            cxl_telemetry::counter_add(TELEMETRY_LAYER, "evicted_pages", None, report.pages);
            cxl_telemetry::record_span(
                "cxlstore.evict",
                0,
                now,
                now,
                &[("images", report.images), ("pages", report.pages)],
            );
        }
        report
    }

    /// Removes one committed image: drops data refs, frees unshared
    /// pages, destroys the metadata region. Returns total pages freed.
    fn evict_image(&self, image: ImageId) -> u64 {
        let mut inner = self.inner.lock();
        let Some(meta) = inner.catalog.remove(&image.0) else {
            return 0;
        };
        let mut freed = Self::drop_refs(&self.device, &mut inner, &meta.fingerprints);
        freed += self.device.destroy_region(meta.meta_region).unwrap_or(0);
        inner.stats.evicted_images += 1;
        inner.stats.evicted_pages += freed;
        freed
    }

    /// Decrements refcounts for `fps` and frees device pages whose count
    /// reaches zero. Returns pages freed.
    fn drop_refs(device: &CxlDevice, inner: &mut Inner, fps: &[u64]) -> u64 {
        let mut to_free = Vec::new();
        for fp in fps {
            let entry = inner
                .index
                .get_mut(fp)
                // cxl-lint: allow(device-unwrap): refcount invariant — a catalogued image only holds fingerprints present in the index
                .expect("image references only indexed content");
            entry.refs -= 1;
            if entry.refs == 0 {
                // cxl-lint: allow(device-unwrap): the same entry was just fetched via get_mut under this lock hold
                to_free.push(inner.index.remove(fp).expect("present").page);
            }
        }
        if to_free.is_empty() {
            return 0;
        }
        // `free_batch` is all-or-nothing and its fault hook fires before
        // any mutation, so retrying a transient fault cannot double-free;
        // giving up instead would leak the pages for the store's
        // lifetime.
        let (freed, _) = cxl_fault::with_backoff(&cxl_fault::BackoffPolicy::default(), || {
            device.free_batch(&to_free)
        });
        freed.unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;

    fn device() -> Arc<CxlDevice> {
        Arc::new(CxlDevice::new(256))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn intern(
        store: &Store,
        label: &str,
        data: &[PageData],
        now: SimTime,
    ) -> (ImageId, InternOutcome) {
        let img = store.begin_image(label, NodeId(0), 1, now);
        let out = store.intern_pages(img, data, NodeId(0)).unwrap();
        let meta = store.device().create_region(label);
        store.commit_image(img, meta);
        (img, out)
    }

    #[test]
    fn identical_content_across_images_shares_one_device_page() {
        let store = Store::new(device());
        let payload = vec![PageData::pattern(7), PageData::pattern(8)];
        let (_, a) = intern(&store, "a", &payload, t(1));
        let (_, b) = intern(&store, "b", &payload, t(2));
        assert_eq!(a.fresh, 2);
        assert_eq!(a.written, 2);
        assert_eq!(b.fresh, 0);
        assert_eq!(b.shared, 2);
        assert_eq!(a.pages, b.pages, "second image reuses the same pages");
        let stats = store.stats();
        assert_eq!(stats.interned_pages, 4);
        assert_eq!(stats.deduped_pages, 2);
        assert_eq!(stats.bytes_saved(), 2 * PAGE_SIZE);
    }

    #[test]
    fn zero_pages_cost_one_allocation_and_no_write() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let reads_before = d.stats().total_writes();
        let payload = vec![PageData::Zero, PageData::Zero, PageData::Zero];
        let (_, out) = intern(&store, "z", &payload, t(1));
        assert_eq!(out.fresh, 1, "one canonical zero page");
        assert_eq!(out.written, 0, "zero transfer elided");
        assert_eq!(out.zero, 3);
        assert_eq!(out.shared, 2, "second and third hit the canonical page");
        assert_eq!(out.pages[0], out.pages[1]);
        assert_eq!(d.stats().total_writes(), reads_before, "no bytes moved");
        // A later image's zeroes share the same canonical page.
        let (_, out2) = intern(&store, "z2", &[PageData::Zero], t(2));
        assert_eq!(out2.fresh, 0);
        assert_eq!(out2.pages[0], out.pages[0]);
    }

    #[test]
    fn release_frees_unshared_pages_but_keeps_shared_content() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let shared_page = PageData::pattern(1);
        let (a, _) = intern(
            &store,
            "a",
            &[shared_page.clone(), PageData::pattern(2)],
            t(1),
        );
        let (_b, outb) = intern(
            &store,
            "b",
            &[shared_page.clone(), PageData::pattern(3)],
            t(2),
        );
        let used = d.used_pages();
        let freed = store.release_image(a);
        assert_eq!(freed, 1, "only a's private page is freed");
        assert_eq!(d.used_pages(), used - 1);
        assert!(!store.is_live(a));
        // b's view of the shared page still resolves and reads back.
        let data = d.read_page(outb.pages[0], NodeId(0)).unwrap();
        assert_eq!(data, shared_page);
    }

    #[test]
    fn aborting_a_pending_image_rolls_its_references_back() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let (_, committed) = intern(&store, "keep", &[PageData::pattern(9)], t(1));
        let before = d.used_pages();
        let img = store.begin_image("doomed", NodeId(1), 2, t(2));
        store
            .intern_pages(
                img,
                &[PageData::pattern(9), PageData::pattern(10)],
                NodeId(1),
            )
            .unwrap();
        assert_eq!(store.abort_image(img), 1, "private page freed");
        assert_eq!(d.used_pages(), before);
        // The surviving image's content is untouched.
        assert_eq!(
            d.read_page(committed.pages[0], NodeId(0)).unwrap(),
            PageData::pattern(9)
        );
        // Index holds exactly one entry again.
        assert_eq!(store.index_snapshot().len(), 1);
    }

    #[test]
    fn failed_intern_is_all_or_nothing() {
        use cxl_mem::DeviceOp;
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let (_, _) = intern(&store, "base", &[PageData::pattern(1)], t(1));
        let used = d.used_pages();
        let snapshot = store.index_snapshot();

        // Inject a write fault: the intern attempt must roll back.
        #[derive(Debug)]
        struct FailWrites;
        impl cxl_mem::FaultHook for FailWrites {
            fn inject(
                &self,
                op: DeviceOp,
                _page: Option<CxlPageId>,
                _node: NodeId,
            ) -> Option<CxlError> {
                (op == DeviceOp::Write).then_some(CxlError::Transient { op: "write" })
            }
        }
        d.set_fault_hook(Some(Arc::new(FailWrites)));
        let img = store.begin_image("fails", NodeId(0), 2, t(2));
        let err = store
            .intern_pages(
                img,
                &[PageData::pattern(1), PageData::pattern(2)],
                NodeId(0),
            )
            .unwrap_err();
        assert!(err.is_transient());
        d.set_fault_hook(None);

        assert_eq!(d.used_pages(), used, "allocations rolled back");
        assert_eq!(store.index_snapshot(), snapshot, "index untouched");
        // The retry succeeds and refcounts end up right (refs=2 for the
        // shared fingerprint, not 3).
        let out = store
            .intern_pages(
                img,
                &[PageData::pattern(1), PageData::pattern(2)],
                NodeId(0),
            )
            .unwrap();
        assert_eq!(out.fresh, 1);
        let refs: Vec<u64> = store.index_snapshot().iter().map(|e| e.refs).collect();
        assert_eq!(refs.iter().sum::<u64>(), 3);
    }

    #[test]
    fn eviction_is_lru_and_respects_pins_and_leases() {
        let d = Arc::new(CxlDevice::new(64));
        let store = Store::with_config(
            Arc::clone(&d),
            StoreConfig {
                high_watermark: 0.3,
                low_watermark: 0.2,
            },
        );
        let mut leases = LeaseTable::new(SimDuration::from_secs(10));
        leases.renew(NodeId(2), t(100));

        // Four images, ten private pages each.
        let mk = |i: u64, now| {
            let data: Vec<PageData> = (0..10).map(|p| PageData::pattern(i * 100 + p)).collect();
            intern(&store, &format!("img{i}"), &data, now).0
        };
        let a = mk(1, t(1)); // LRU
        let b = mk(2, t(2));
        let c = mk(3, t(3));
        let e = mk(4, t(4));
        store.set_pinned(b, true);
        store.set_lease(c, Some(NodeId(2))); // live lease at t(100)
        store.touch_restore(a, t(50)); // now e is LRU, then a

        assert!(d.utilization() > 0.3);
        let report = store.evict_to_low_watermark(&leases, t(100));
        // e (last_restore t4) goes first, then a (t50); b pinned and c
        // leased survive even though utilization stays high.
        assert_eq!(report.images, 2);
        assert!(!store.is_live(e) && !store.is_live(a));
        assert!(store.is_live(b) && store.is_live(c));

        // Once the lease lapses, c becomes evictable; b never does.
        let report = store.evict_to_low_watermark(&leases, t(200));
        assert_eq!(report.images, 1);
        assert!(!store.is_live(c));
        assert!(store.is_live(b));
        let report = store.evict_to_low_watermark(&leases, t(201));
        assert_eq!(report.images, 0, "only the pinned image remains");
        assert!(store.is_live(b));
    }

    #[test]
    fn hysteresis_below_high_watermark_evicts_nothing() {
        let d = Arc::new(CxlDevice::new(1024));
        let store = Store::new(Arc::clone(&d));
        let leases = LeaseTable::new(SimDuration::from_secs(10));
        let (img, _) = intern(&store, "small", &[PageData::pattern(1)], t(1));
        let report = store.evict_to_low_watermark(&leases, t(2));
        assert_eq!(report, EvictionReport::default());
        assert!(store.is_live(img));
    }

    #[test]
    fn epoch_gc_releases_only_older_unpinned_epochs() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let leases = LeaseTable::new(SimDuration::from_secs(10));
        let mk = |label: &str, epoch| {
            let img = store.begin_image(label, NodeId(0), epoch, t(epoch));
            store
                .intern_pages(img, &[PageData::pattern(epoch * 7)], NodeId(0))
                .unwrap();
            store.commit_image(img, store.device().create_region(label));
            img
        };
        let old = mk("old", 1);
        let mid = mk("mid", 2);
        let new = mk("new", 3);
        store.set_pinned(mid, true);
        let report = store.gc_epochs_below(3, &leases, t(10));
        assert_eq!(report.images, 1);
        assert!(!store.is_live(old));
        assert!(store.is_live(mid), "pinned survives GC");
        assert!(store.is_live(new));
    }

    #[test]
    fn orphaned_pending_images_are_reclaimed_when_the_lease_lapses() {
        let d = device();
        let store = Store::new(Arc::clone(&d));
        let mut leases = LeaseTable::new(SimDuration::from_secs(5));
        leases.renew(NodeId(1), t(1));
        let img = store.begin_image("torn", NodeId(1), 1, t(1));
        store
            .intern_pages(
                img,
                &[PageData::pattern(1), PageData::pattern(2)],
                NodeId(1),
            )
            .unwrap();
        // Lease still live: nothing reclaimed.
        assert_eq!(store.reclaim_orphan_pending(&leases, t(2)), 0);
        // Lease lapsed: the torn image's pages come back.
        assert_eq!(store.reclaim_orphan_pending(&leases, t(60)), 2);
        assert_eq!(d.used_pages(), 0);
        assert!(store.index_snapshot().is_empty());
    }

    #[test]
    fn reference_counts_reconcile_with_the_catalog() {
        let store = Store::new(device());
        let shared = PageData::pattern(5);
        intern(&store, "a", &[shared.clone(), PageData::pattern(6)], t(1));
        intern(&store, "b", &[shared.clone(), shared.clone()], t(2));
        let expected = store.live_reference_counts();
        for e in store.index_snapshot() {
            assert_eq!(expected.get(&e.fingerprint), Some(&e.refs));
        }
        assert_eq!(expected.values().sum::<u64>(), 4);
    }
}
