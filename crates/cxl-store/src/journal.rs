//! Device-resident write-ahead journal for store metadata.
//!
//! The store's content index, image catalog, and pin/lease state live in
//! coordinator DRAM; the paper's durability claim — images in
//! fabric-attached memory survive the node that made them — is only as
//! good as the metadata needed to *find* them. A durable store therefore
//! logs every mutation to a journal held in a dedicated
//! [`cxl_mem::RegionKind::Metadata`] region on the device itself, so any
//! surviving node can rebuild the catalog after the coordinator dies
//! ([`crate::Store::recover`]).
//!
//! # On-device layout
//!
//! Each journal *generation* is one metadata region named
//! `cxl-store:journal#<gen>` holding:
//!
//! * a **superblock page** — `[magic "CXLS"][generation u64]
//!   [page count u32][data page ids u64...]` — the only discovery root a
//!   recovering node needs (device page ids are not contiguous, so the
//!   byte order of the log is recorded in-band);
//! * **data pages** carrying the record stream.
//!
//! # Record format
//!
//! Records are byte-stable little-endian, in the style of `rfork::wire`:
//!
//! ```text
//! record  := [magic u32 "CXLJ"] [len u32] [payload; len bytes] [marker u8 = 0xA5]
//! payload := [tag u8] [seq u64] [owner u32] [epoch u64] [per-type fields]
//! ```
//!
//! The trailing **commit marker** is written in a *separate* device write
//! from the header+payload, so a crash between the two leaves a real
//! torn tail: replay accepts a record only when its marker byte is
//! intact and truncates the log at the first record without one. Zero
//! bytes (freshly allocated pages are zeroed) terminate the log.
//!
//! # Ordering discipline
//!
//! * **Constructive** mutations (interning pages) touch the device
//!   first and journal second — a crash in between leaks device pages,
//!   which recovery detects (live data-region pages no journal record
//!   references) and frees.
//! * **Destructive** mutations (abort/release/evict) journal first and
//!   free second — a crash in between leaves the free half-done, which
//!   recovery finishes idempotently.
//!
//! Compaction rewrites the surviving state as one [`Record::Snapshot`]
//! into a *new* generation and destroys the old ones only after the new
//! superblock is durable; recovery picks the highest generation with a
//! valid superblock, so a crash at any point of compaction loses
//! nothing.

use cxl_mem::{CxlDevice, CxlError, CxlPageId, NodeId, PageData, RegionId, PAGE_SIZE};

/// Record magic: "CXLJ" little-endian.
const RECORD_MAGIC: u32 = 0x4A4C_5843;
/// Superblock magic: "CXLS" little-endian.
const SUPER_MAGIC: u32 = 0x534C_5843;
/// Commit marker byte sealing a record.
const MARKER: u8 = 0xA5;
/// Region-name prefix for journal generations.
pub const JOURNAL_REGION_PREFIX: &str = "cxl-store:journal#";

/// One journaled store mutation. Field order here is the wire order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// `begin_image`: a pending image was registered.
    Begin {
        /// Image id.
        image: u64,
        /// Creation virtual time, nanoseconds.
        created_at: u64,
        /// Image label.
        label: String,
    },
    /// `intern_pages`: content references were published. Entries carry
    /// the fingerprint → device-page binding **with multiplicity** (a
    /// dedup hit repeats an existing binding), so replay rebuilds exact
    /// refcounts.
    Intern {
        /// Image id.
        image: u64,
        /// `(fingerprint, device page)` per input page, in input order.
        entries: Vec<(u64, u64)>,
    },
    /// `commit_image`: a pending image moved to the catalog.
    Commit {
        /// Image id.
        image: u64,
        /// The checkpoint's committed metadata region.
        meta_region: u64,
    },
    /// `abort_image`: a pending image was abandoned.
    Abort {
        /// Image id.
        image: u64,
    },
    /// `release_image`: a committed image was released by its owner.
    Release {
        /// Image id.
        image: u64,
        /// Metadata region the mechanism will destroy; recovery destroys
        /// it if the crash landed between journal and destruction.
        meta_region: u64,
    },
    /// Watermark/GC eviction of a committed image.
    Evict {
        /// Image id.
        image: u64,
        /// Metadata region the eviction destroys.
        meta_region: u64,
    },
    /// `set_pinned`.
    SetPinned {
        /// Image id.
        image: u64,
        /// New pin state.
        pinned: bool,
    },
    /// `set_lease`.
    SetLease {
        /// Image id.
        image: u64,
        /// New lease holder (`None` clears).
        holder: Option<u32>,
    },
    /// Compaction: the complete surviving state. Replay resets to this
    /// and continues with any records after it.
    Snapshot(SnapshotState),
}

impl Record {
    const TAG_BEGIN: u8 = 1;
    const TAG_INTERN: u8 = 2;
    const TAG_COMMIT: u8 = 3;
    const TAG_ABORT: u8 = 4;
    const TAG_RELEASE: u8 = 5;
    const TAG_EVICT: u8 = 6;
    const TAG_SET_PINNED: u8 = 7;
    const TAG_SET_LEASE: u8 = 8;
    const TAG_SNAPSHOT: u8 = 9;

    fn tag(&self) -> u8 {
        match self {
            Record::Begin { .. } => Self::TAG_BEGIN,
            Record::Intern { .. } => Self::TAG_INTERN,
            Record::Commit { .. } => Self::TAG_COMMIT,
            Record::Abort { .. } => Self::TAG_ABORT,
            Record::Release { .. } => Self::TAG_RELEASE,
            Record::Evict { .. } => Self::TAG_EVICT,
            Record::SetPinned { .. } => Self::TAG_SET_PINNED,
            Record::SetLease { .. } => Self::TAG_SET_LEASE,
            Record::Snapshot(_) => Self::TAG_SNAPSHOT,
        }
    }
}

/// The full store state carried by a [`Record::Snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotState {
    /// Next image id to hand out.
    pub next_image: u64,
    /// Content index: `(fingerprint, device page)`; refcounts are
    /// rebuilt from image multiplicities on replay.
    pub index: Vec<(u64, u64)>,
    /// Committed images.
    pub catalog: Vec<ImageRecord>,
    /// Pending images (mid-checkpoint at snapshot time).
    pub pending: Vec<ImageRecord>,
}

/// One image's catalog entry on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageRecord {
    /// Image id.
    pub id: u64,
    /// Label.
    pub label: String,
    /// Owning node.
    pub owner: u32,
    /// Checkpoint epoch.
    pub epoch: u64,
    /// Pin state.
    pub pinned: bool,
    /// Lease holder.
    pub lease: Option<u32>,
    /// Creation virtual time, nanoseconds.
    pub created_at: u64,
    /// Last-restore virtual time, nanoseconds.
    pub last_restore: u64,
    /// Metadata region id (`u64::MAX` while pending).
    pub meta_region: u64,
    /// Referenced fingerprints, with multiplicity.
    pub fingerprints: Vec<u64>,
}

/// A decoded record with its header tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Append sequence number (monotone within a generation).
    pub seq: u64,
    /// Node the mutation was performed on behalf of.
    pub owner: u32,
    /// Checkpoint epoch tag.
    pub epoch: u64,
    /// The mutation.
    pub record: Record,
}

// --- little-endian codec helpers -----------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len()).unwrap_or(u16::MAX);
    put_u16(buf, len);
    buf.extend_from_slice(&bytes[..len as usize]);
}

fn put_opt_u32(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_u32(buf, v);
        }
        None => buf.push(0),
    }
}

fn put_image_record(buf: &mut Vec<u8>, r: &ImageRecord) {
    put_u64(buf, r.id);
    put_str(buf, &r.label);
    put_u32(buf, r.owner);
    put_u64(buf, r.epoch);
    buf.push(u8::from(r.pinned));
    put_opt_u32(buf, r.lease);
    put_u64(buf, r.created_at);
    put_u64(buf, r.last_restore);
    put_u64(buf, r.meta_region);
    put_u32(buf, r.fingerprints.len() as u32);
    for &fp in &r.fingerprints {
        put_u64(buf, fp);
    }
}

/// A bounds-checked little-endian reader; every getter returns `None`
/// past the end, so a torn payload can never panic the parser.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        Some(String::from_utf8_lossy(bytes).into_owned())
    }

    fn opt_u32(&mut self) -> Option<Option<u32>> {
        match self.u8()? {
            0 => Some(None),
            _ => Some(Some(self.u32()?)),
        }
    }

    fn image_record(&mut self) -> Option<ImageRecord> {
        Some(ImageRecord {
            id: self.u64()?,
            label: self.string()?,
            owner: self.u32()?,
            epoch: self.u64()?,
            pinned: self.u8()? != 0,
            lease: self.opt_u32()?,
            created_at: self.u64()?,
            last_restore: self.u64()?,
            meta_region: self.u64()?,
            fingerprints: {
                let n = self.u32()? as usize;
                let mut fps = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    fps.push(self.u64()?);
                }
                fps
            },
        })
    }
}

/// Encodes one entry's payload (tag + header tags + fields), without the
/// record framing.
pub fn encode_payload(entry: &JournalEntry) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.push(entry.record.tag());
    put_u64(&mut buf, entry.seq);
    put_u32(&mut buf, entry.owner);
    put_u64(&mut buf, entry.epoch);
    match &entry.record {
        Record::Begin {
            image,
            created_at,
            label,
        } => {
            put_u64(&mut buf, *image);
            put_u64(&mut buf, *created_at);
            put_str(&mut buf, label);
        }
        Record::Intern { image, entries } => {
            put_u64(&mut buf, *image);
            put_u32(&mut buf, entries.len() as u32);
            for &(fp, page) in entries {
                put_u64(&mut buf, fp);
                put_u64(&mut buf, page);
            }
        }
        Record::Commit { image, meta_region }
        | Record::Release { image, meta_region }
        | Record::Evict { image, meta_region } => {
            put_u64(&mut buf, *image);
            put_u64(&mut buf, *meta_region);
        }
        Record::Abort { image } => put_u64(&mut buf, *image),
        Record::SetPinned { image, pinned } => {
            put_u64(&mut buf, *image);
            buf.push(u8::from(*pinned));
        }
        Record::SetLease { image, holder } => {
            put_u64(&mut buf, *image);
            put_opt_u32(&mut buf, *holder);
        }
        Record::Snapshot(s) => {
            put_u64(&mut buf, s.next_image);
            put_u32(&mut buf, s.index.len() as u32);
            for &(fp, page) in &s.index {
                put_u64(&mut buf, fp);
                put_u64(&mut buf, page);
            }
            put_u32(&mut buf, s.catalog.len() as u32);
            for r in &s.catalog {
                put_image_record(&mut buf, r);
            }
            put_u32(&mut buf, s.pending.len() as u32);
            for r in &s.pending {
                put_image_record(&mut buf, r);
            }
        }
    }
    buf
}

/// Decodes one payload. `None` on truncation or an unknown tag.
pub fn decode_payload(payload: &[u8]) -> Option<JournalEntry> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let seq = r.u64()?;
    let owner = r.u32()?;
    let epoch = r.u64()?;
    let record = match tag {
        Record::TAG_BEGIN => Record::Begin {
            image: r.u64()?,
            created_at: r.u64()?,
            label: r.string()?,
        },
        Record::TAG_INTERN => {
            let image = r.u64()?;
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                entries.push((r.u64()?, r.u64()?));
            }
            Record::Intern { image, entries }
        }
        Record::TAG_COMMIT => Record::Commit {
            image: r.u64()?,
            meta_region: r.u64()?,
        },
        Record::TAG_ABORT => Record::Abort { image: r.u64()? },
        Record::TAG_RELEASE => Record::Release {
            image: r.u64()?,
            meta_region: r.u64()?,
        },
        Record::TAG_EVICT => Record::Evict {
            image: r.u64()?,
            meta_region: r.u64()?,
        },
        Record::TAG_SET_PINNED => Record::SetPinned {
            image: r.u64()?,
            pinned: r.u8()? != 0,
        },
        Record::TAG_SET_LEASE => Record::SetLease {
            image: r.u64()?,
            holder: r.opt_u32()?,
        },
        Record::TAG_SNAPSHOT => {
            let next_image = r.u64()?;
            let ni = r.u32()? as usize;
            let mut index = Vec::with_capacity(ni.min(1 << 20));
            for _ in 0..ni {
                index.push((r.u64()?, r.u64()?));
            }
            let nc = r.u32()? as usize;
            let mut catalog = Vec::with_capacity(nc.min(1 << 20));
            for _ in 0..nc {
                catalog.push(r.image_record()?);
            }
            let np = r.u32()? as usize;
            let mut pending = Vec::with_capacity(np.min(1 << 20));
            for _ in 0..np {
                pending.push(r.image_record()?);
            }
            Record::Snapshot(SnapshotState {
                next_image,
                index,
                catalog,
                pending,
            })
        }
        _ => return None,
    };
    Some(JournalEntry {
        seq,
        owner,
        epoch,
        record,
    })
}

/// Result of parsing a raw journal byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedLog {
    /// Sealed (marker-intact) records, in append order.
    pub entries: Vec<JournalEntry>,
    /// Byte offset of the end of the last sealed record — where a
    /// recovered journal resumes appending.
    pub committed_bytes: u64,
    /// Bytes of torn tail truncated (a record fragment whose commit
    /// marker never landed). Zero for a cleanly sealed log.
    pub torn_bytes: u64,
}

/// Parses a journal byte stream, truncating at the first record whose
/// commit marker is missing or corrupt. Zero bytes terminate the log
/// cleanly (freshly allocated journal pages are zeroed).
pub fn parse_log(buf: &[u8]) -> ParsedLog {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = &buf[pos..];
        if remaining.len() < 8 {
            // Not even a full header fits: any nonzero residue is a torn
            // header fragment.
            return ParsedLog {
                entries,
                committed_bytes: pos as u64,
                torn_bytes: trailing_nonzero(remaining),
            };
        }
        let magic = u32::from_le_bytes([remaining[0], remaining[1], remaining[2], remaining[3]]);
        if magic == 0 {
            // Freshly allocated pages are zeroed: clean end of log.
            break;
        }
        if magic != RECORD_MAGIC {
            // Corrupt header — no further record is sealed.
            return ParsedLog {
                entries,
                committed_bytes: pos as u64,
                torn_bytes: trailing_nonzero(remaining),
            };
        }
        let len =
            u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]) as usize;
        let payload_end = pos + 8 + len;
        let sealed = buf.get(payload_end) == Some(&MARKER);
        let decoded = buf
            .get(pos + 8..payload_end)
            .and_then(decode_payload)
            .filter(|_| sealed);
        match decoded {
            Some(entry) => {
                entries.push(entry);
                pos = payload_end + 1;
            }
            None => {
                // Header landed but the payload or marker did not: torn
                // tail. The header's length field bounds the fragment
                // (trailing payload bytes may legitimately be zero).
                let frag = (8 + len).min(remaining.len()) as u64;
                return ParsedLog {
                    entries,
                    committed_bytes: pos as u64,
                    torn_bytes: frag,
                };
            }
        }
    }
    ParsedLog {
        entries,
        committed_bytes: pos as u64,
        torn_bytes: 0,
    }
}

/// Length of `buf` up to and including its last nonzero byte.
fn trailing_nonzero(buf: &[u8]) -> u64 {
    buf.iter()
        .rposition(|&b| b != 0)
        .map_or(0, |i| i as u64 + 1)
}

// --- the device-resident log ---------------------------------------------

/// A live journal generation: the DRAM mirror plus the device region
/// backing it. All device traffic goes through the store's batched
/// `write_pages`/`read_pages` paths; the caller charges the virtual
/// clock for the page counts these methods return.
#[derive(Debug)]
pub struct Journal {
    region: RegionId,
    generation: u64,
    super_page: CxlPageId,
    data_pages: Vec<CxlPageId>,
    /// DRAM mirror of the record stream (excludes the superblock).
    buf: Vec<u8>,
    next_seq: u64,
    /// Cumulative journal pages written to the device.
    pages_written: u64,
}

impl Journal {
    /// Creates generation `generation` on `device`: a fresh metadata
    /// region with an empty superblock.
    ///
    /// # Errors
    ///
    /// Device allocation/write failures (including injected faults).
    pub fn create(device: &CxlDevice, generation: u64) -> Result<Journal, CxlError> {
        let region = device.create_region_meta(&format!("{JOURNAL_REGION_PREFIX}{generation}"));
        let super_page = match device.alloc_batch(region, 1) {
            Ok(pages) => pages[0],
            Err(e) => {
                let _ = device.destroy_region(region);
                return Err(e);
            }
        };
        let mut journal = Journal {
            region,
            generation,
            super_page,
            data_pages: Vec::new(),
            buf: Vec::new(),
            next_seq: 0,
            pages_written: 0,
        };
        if let Err(e) = journal.write_superblock(device) {
            let _ = device.destroy_region(region);
            return Err(e);
        }
        Ok(journal)
    }

    /// The journal's region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes in the record stream (DRAM mirror length).
    pub fn len_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Device pages held by this generation (superblock + data).
    pub fn pages(&self) -> u64 {
        1 + self.data_pages.len() as u64
    }

    /// Cumulative journal pages written to the device.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Next record sequence number.
    pub fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn write_superblock(&mut self, device: &CxlDevice) -> Result<(), CxlError> {
        let mut sb = Vec::with_capacity(16 + 8 * self.data_pages.len());
        put_u32(&mut sb, SUPER_MAGIC);
        put_u64(&mut sb, self.generation);
        put_u32(&mut sb, self.data_pages.len() as u32);
        for p in &self.data_pages {
            put_u64(&mut sb, p.0);
        }
        device.write_pages(
            &[(self.super_page, PageData::from_bytes(&sb))],
            NodeId(u32::MAX),
        )?;
        self.pages_written += 1;
        Ok(())
    }

    /// Ensures the data pages cover `bytes` of record stream, updating
    /// the superblock when pages are added. Returns pages written.
    fn reserve(&mut self, device: &CxlDevice, bytes: u64) -> Result<u64, CxlError> {
        let need = bytes.div_ceil(PAGE_SIZE) as usize;
        if need <= self.data_pages.len() {
            return Ok(0);
        }
        let extra = (need - self.data_pages.len()) as u64;
        let fresh = device.alloc_batch(self.region, extra)?;
        self.data_pages.extend(fresh);
        // Superblock first: a crash after this write but before the new
        // pages carry bytes just makes replay end at their zero fill.
        self.write_superblock(device)?;
        Ok(1)
    }

    /// Writes the dirty byte range `[from, to)` of the mirror to the
    /// device, whole pages at a time. Returns pages written.
    fn flush_range(&mut self, device: &CxlDevice, from: u64, to: u64) -> Result<u64, CxlError> {
        if to <= from {
            return Ok(0);
        }
        let first = (from / PAGE_SIZE) as usize;
        let last = to.div_ceil(PAGE_SIZE) as usize;
        let mut writes = Vec::with_capacity(last - first);
        for pi in first..last {
            let start = pi * PAGE_SIZE as usize;
            let end = (start + PAGE_SIZE as usize).min(self.buf.len());
            writes.push((
                self.data_pages[pi],
                PageData::from_bytes(&self.buf[start..end]),
            ));
        }
        device.write_pages(&writes, NodeId(u32::MAX))?;
        self.pages_written += writes.len() as u64;
        Ok(writes.len() as u64)
    }

    /// Phase one of an append: frames and writes the record header and
    /// payload (no marker yet — the record is *not* sealed). Returns
    /// journal pages written.
    ///
    /// # Errors
    ///
    /// Device allocation/write failures; the mirror is rolled back so a
    /// retry re-frames the record.
    pub fn append_payload(&mut self, device: &CxlDevice, payload: &[u8]) -> Result<u64, CxlError> {
        let start = self.buf.len() as u64;
        put_u32(&mut self.buf, RECORD_MAGIC);
        put_u32(&mut self.buf, payload.len() as u32);
        self.buf.extend_from_slice(payload);
        // Reserve through the marker byte so sealing never allocates.
        let total = self.buf.len() as u64 + 1;
        let mut pages = match self.reserve(device, total) {
            Ok(p) => p,
            Err(e) => {
                self.buf.truncate(start as usize);
                return Err(e);
            }
        };
        match self.flush_range(device, start, self.buf.len() as u64) {
            Ok(p) => pages += p,
            Err(e) => {
                self.buf.truncate(start as usize);
                return Err(e);
            }
        }
        Ok(pages)
    }

    /// Phase two of an append: writes the commit marker, sealing the
    /// record. Returns journal pages written.
    ///
    /// # Errors
    ///
    /// Device write failures. The mirror drops the marker again so a
    /// retry re-frames exactly one marker byte.
    pub fn seal(&mut self, device: &CxlDevice) -> Result<u64, CxlError> {
        let start = self.buf.len() as u64;
        self.buf.push(MARKER);
        match self.flush_range(device, start, self.buf.len() as u64) {
            Ok(p) => Ok(p),
            Err(e) => {
                self.buf.pop();
                Err(e)
            }
        }
    }

    /// Whether the record stream has outgrown `limit` bytes and should
    /// be compacted into a fresh generation.
    pub fn wants_compaction(&self, limit: u64) -> bool {
        self.buf.len() as u64 > limit
    }

    /// Compaction phase one: builds generation `generation` around one
    /// sealed record (the state snapshot, expected to carry `seq` 0) —
    /// region, data pages, payload, and marker — but **no superblock**.
    /// Until [`Journal::publish`] runs, recovery cannot see this
    /// generation, so a crash anywhere in between leaves the previous
    /// generation authoritative. Returns the journal plus pages written.
    ///
    /// # Errors
    ///
    /// Device allocation/write failures; the half-built region is
    /// destroyed before returning.
    pub fn stage_compacted(
        device: &CxlDevice,
        generation: u64,
        payload: &[u8],
    ) -> Result<(Journal, u64), CxlError> {
        let region = device.create_region_meta(&format!("{JOURNAL_REGION_PREFIX}{generation}"));
        let mut buf = Vec::with_capacity(payload.len() + 16);
        put_u32(&mut buf, RECORD_MAGIC);
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(payload);
        buf.push(MARKER);
        let data_needed = (buf.len() as u64).div_ceil(PAGE_SIZE);
        let pages = match device.alloc_batch(region, 1 + data_needed) {
            Ok(p) => p,
            Err(e) => {
                let _ = device.destroy_region(region);
                return Err(e);
            }
        };
        let end = buf.len() as u64;
        let mut journal = Journal {
            region,
            generation,
            super_page: pages[0],
            data_pages: pages[1..].to_vec(),
            buf,
            next_seq: 1,
            pages_written: 0,
        };
        match journal.flush_range(device, 0, end) {
            Ok(written) => Ok((journal, written)),
            Err(e) => {
                let _ = device.destroy_region(region);
                Err(e)
            }
        }
    }

    /// Compaction phase two: writes the superblock, making this the
    /// highest *valid* generation — the one recovery will pick. Returns
    /// pages written (always 1 on success).
    ///
    /// # Errors
    ///
    /// Device write failures; retryable (the superblock write is
    /// idempotent).
    pub fn publish(&mut self, device: &CxlDevice) -> Result<u64, CxlError> {
        self.write_superblock(device)?;
        Ok(1)
    }

    /// Destroys this generation's region, returning pages freed.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadRegion`] if already destroyed.
    pub fn destroy(self, device: &CxlDevice) -> Result<u64, CxlError> {
        device.destroy_region(self.region)
    }
}

/// A journal generation discovered on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundGeneration {
    /// The generation's region.
    pub region: RegionId,
    /// Generation number parsed from the region name.
    pub generation: u64,
}

/// Scans the device for journal generations (metadata regions named
/// `cxl-store:journal#<gen>`), lowest generation first.
pub fn find_generations(device: &CxlDevice) -> Vec<FoundGeneration> {
    let mut found: Vec<FoundGeneration> = device
        .regions()
        .into_iter()
        .filter(|(_, usage)| usage.kind == cxl_mem::RegionKind::Metadata)
        .filter_map(|(region, usage)| {
            let gen = usage
                .name
                .strip_prefix(JOURNAL_REGION_PREFIX)?
                .parse()
                .ok()?;
            Some(FoundGeneration {
                region,
                generation: gen,
            })
        })
        .collect();
    found.sort_by_key(|g| g.generation);
    found
}

/// A journal generation loaded back from the device.
#[derive(Debug)]
pub struct LoadedGeneration {
    /// Parsed record stream.
    pub log: ParsedLog,
    /// Raw committed byte stream (for resuming appends).
    pub buf: Vec<u8>,
    /// Superblock + data pages read.
    pub pages_scanned: u64,
    /// The data pages, in stream order.
    pub data_pages: Vec<CxlPageId>,
    /// Superblock page.
    pub super_page: CxlPageId,
}

/// Reads one generation's byte stream back through the modelled
/// `read_pages` path (the caller charges `cxl_batch_read(pages_scanned)`
/// to the virtual clock). Returns `None` if the superblock is missing or
/// invalid — a generation whose compaction never completed.
///
/// # Errors
///
/// Device read failures (including injected faults).
pub fn load_generation(
    device: &CxlDevice,
    found: &FoundGeneration,
    node: NodeId,
) -> Result<Option<LoadedGeneration>, CxlError> {
    // The superblock page is the region's lowest-id page only by
    // convention; find it by parsing. A generation's region holds the
    // superblock plus data pages; try each page as superblock root.
    let pages: Vec<CxlPageId> = device
        .live_pages()
        .into_iter()
        .filter(|(_, r)| *r == found.region)
        .map(|(p, _)| p)
        .collect();
    if pages.is_empty() {
        return Ok(None);
    }
    let contents = device.read_pages(&pages, node)?;
    let mut pages_scanned = pages.len() as u64;
    for (candidate, data) in pages.iter().zip(&contents) {
        let mut raw = vec![0u8; PAGE_SIZE as usize];
        data.read(0, &mut raw);
        let mut r = Reader::new(&raw);
        if r.u32() != Some(SUPER_MAGIC) || r.u64() != Some(found.generation) {
            continue;
        }
        let Some(count) = r.u32() else { continue };
        let mut data_pages = Vec::with_capacity(count as usize);
        let mut ok = true;
        for _ in 0..count {
            match r.u64() {
                Some(p) => data_pages.push(CxlPageId(p)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // Read the data pages in stream order. Pages already read above
        // were a discovery sweep; the stream read is the modelled one.
        let mut buf = Vec::with_capacity(data_pages.len() * PAGE_SIZE as usize);
        if !data_pages.is_empty() {
            let stream = device.read_pages(&data_pages, node)?;
            pages_scanned += data_pages.len() as u64;
            for page in &stream {
                let mut raw = vec![0u8; PAGE_SIZE as usize];
                page.read(0, &mut raw);
                buf.extend_from_slice(&raw);
            }
        }
        let log = parse_log(&buf);
        buf.truncate(log.committed_bytes as usize);
        return Ok(Some(LoadedGeneration {
            log,
            buf,
            pages_scanned,
            data_pages,
            super_page: *candidate,
        }));
    }
    Ok(None)
}

/// Reads one generation back through the *unmodelled* snapshot path:
/// no virtual-clock charge, no fault hooks, no node attribution. This
/// is the auditors' loader — [`load_generation`] is the recovery one.
/// Returns `None` for a generation without a valid superblock.
pub fn snapshot_generation(
    device: &CxlDevice,
    found: &FoundGeneration,
) -> Option<LoadedGeneration> {
    let pages: Vec<CxlPageId> = device
        .live_pages()
        .into_iter()
        .filter(|(_, r)| *r == found.region)
        .map(|(p, _)| p)
        .collect();
    let contents = device.snapshot_pages(&pages).ok()?;
    let mut pages_scanned = pages.len() as u64;
    for (candidate, data) in pages.iter().zip(&contents) {
        let mut raw = vec![0u8; PAGE_SIZE as usize];
        data.read(0, &mut raw);
        let mut r = Reader::new(&raw);
        if r.u32() != Some(SUPER_MAGIC) || r.u64() != Some(found.generation) {
            continue;
        }
        let count = r.u32()?;
        let mut data_pages = Vec::with_capacity(count as usize);
        let mut ok = true;
        for _ in 0..count {
            match r.u64() {
                Some(p) => data_pages.push(CxlPageId(p)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let mut buf = Vec::with_capacity(data_pages.len() * PAGE_SIZE as usize);
        if !data_pages.is_empty() {
            let stream = device.snapshot_pages(&data_pages).ok()?;
            pages_scanned += data_pages.len() as u64;
            for page in &stream {
                let mut raw = vec![0u8; PAGE_SIZE as usize];
                page.read(0, &mut raw);
                buf.extend_from_slice(&raw);
            }
        }
        let log = parse_log(&buf);
        buf.truncate(log.committed_bytes as usize);
        return Some(LoadedGeneration {
            log,
            buf,
            pages_scanned,
            data_pages,
            super_page: *candidate,
        });
    }
    None
}

/// Replays a record stream into the content-index reference counts it
/// implies: `fingerprint → refs`, counting multiplicity across every
/// live (pending or committed) image. This is the auditors' oracle —
/// the store's in-DRAM index must agree with it at quiescence.
pub fn replay_reference_counts(entries: &[JournalEntry]) -> std::collections::BTreeMap<u64, u64> {
    use std::collections::BTreeMap;
    let mut images: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut refs: BTreeMap<u64, u64> = BTreeMap::new();
    let drop_image =
        |images: &mut BTreeMap<u64, Vec<u64>>, refs: &mut BTreeMap<u64, u64>, image: u64| {
            for fp in images.remove(&image).unwrap_or_default() {
                if let Some(r) = refs.get_mut(&fp) {
                    *r = r.saturating_sub(1);
                    if *r == 0 {
                        refs.remove(&fp);
                    }
                }
            }
        };
    for entry in entries {
        match &entry.record {
            Record::Snapshot(s) => {
                images.clear();
                refs.clear();
                for rec in s.catalog.iter().chain(s.pending.iter()) {
                    images.insert(rec.id, rec.fingerprints.clone());
                    for &fp in &rec.fingerprints {
                        *refs.entry(fp).or_default() += 1;
                    }
                }
            }
            Record::Begin { image, .. } => {
                images.insert(*image, Vec::new());
            }
            Record::Intern { image, entries } => {
                let held = images.entry(*image).or_default();
                for &(fp, _) in entries {
                    held.push(fp);
                    *refs.entry(fp).or_default() += 1;
                }
            }
            Record::Commit { .. } | Record::SetPinned { .. } | Record::SetLease { .. } => {}
            Record::Abort { image }
            | Record::Release { image, .. }
            | Record::Evict { image, .. } => {
                drop_image(&mut images, &mut refs, *image);
            }
        }
    }
    refs
}

/// Rebuilds a live [`Journal`] from a loaded generation so the recovered
/// store can keep appending where the committed stream ended.
pub fn resume(found: &FoundGeneration, loaded: LoadedGeneration) -> Journal {
    let next_seq = loaded.log.entries.last().map_or(0, |e| e.seq + 1);
    Journal {
        region: found.region,
        generation: found.generation,
        super_page: loaded.super_page,
        data_pages: loaded.data_pages,
        buf: loaded.buf,
        next_seq,
        pages_written: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, record: Record) -> JournalEntry {
        JournalEntry {
            seq,
            owner: 3,
            epoch: 9,
            record,
        }
    }

    fn sample_records() -> Vec<JournalEntry> {
        vec![
            entry(
                0,
                Record::Begin {
                    image: 1,
                    created_at: 123,
                    label: "img-a".into(),
                },
            ),
            entry(
                1,
                Record::Intern {
                    image: 1,
                    entries: vec![(0xdead, 7), (0xbeef, 8), (0xdead, 7)],
                },
            ),
            entry(
                2,
                Record::Commit {
                    image: 1,
                    meta_region: 4,
                },
            ),
            entry(
                3,
                Record::SetPinned {
                    image: 1,
                    pinned: true,
                },
            ),
            entry(
                4,
                Record::SetLease {
                    image: 1,
                    holder: Some(2),
                },
            ),
            entry(
                5,
                Record::SetLease {
                    image: 1,
                    holder: None,
                },
            ),
            entry(
                6,
                Record::Release {
                    image: 1,
                    meta_region: 4,
                },
            ),
            entry(7, Record::Abort { image: 2 }),
            entry(
                8,
                Record::Evict {
                    image: 3,
                    meta_region: 5,
                },
            ),
            entry(
                9,
                Record::Snapshot(SnapshotState {
                    next_image: 4,
                    index: vec![(0xdead, 7)],
                    catalog: vec![ImageRecord {
                        id: 1,
                        label: "img-a".into(),
                        owner: 3,
                        epoch: 9,
                        pinned: true,
                        lease: None,
                        created_at: 123,
                        last_restore: 456,
                        meta_region: 4,
                        fingerprints: vec![0xdead, 0xdead],
                    }],
                    pending: vec![],
                }),
            ),
        ]
    }

    fn frame(entries: &[JournalEntry]) -> Vec<u8> {
        let mut buf = Vec::new();
        for e in entries {
            let payload = encode_payload(e);
            put_u32(&mut buf, RECORD_MAGIC);
            put_u32(&mut buf, payload.len() as u32);
            buf.extend_from_slice(&payload);
            buf.push(MARKER);
        }
        buf
    }

    #[test]
    fn every_record_type_round_trips() {
        for e in sample_records() {
            let payload = encode_payload(&e);
            assert_eq!(decode_payload(&payload), Some(e));
        }
    }

    #[test]
    fn parse_accepts_sealed_records_and_zero_tail() {
        let records = sample_records();
        let mut buf = frame(&records);
        let committed = buf.len() as u64;
        buf.extend_from_slice(&[0u8; 64]); // fresh-page zero fill
        let log = parse_log(&buf);
        assert_eq!(log.entries, records);
        assert_eq!(log.committed_bytes, committed);
        assert_eq!(log.torn_bytes, 0);
    }

    #[test]
    fn missing_marker_truncates_the_tail() {
        let records = sample_records();
        let mut buf = frame(&records[..2]);
        let committed = buf.len() as u64;
        // Frame a third record but drop its marker (crash between the
        // payload write and the marker write).
        let payload = encode_payload(&records[2]);
        put_u32(&mut buf, RECORD_MAGIC);
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(&payload);
        let log = parse_log(&buf);
        assert_eq!(log.entries, records[..2].to_vec());
        assert_eq!(log.committed_bytes, committed);
        assert_eq!(log.torn_bytes, 8 + payload.len() as u64);
    }

    #[test]
    fn truncated_payload_is_torn_not_a_panic() {
        let records = sample_records();
        let mut buf = frame(&records[..1]);
        let committed = buf.len() as u64;
        let payload = encode_payload(&records[1]);
        put_u32(&mut buf, RECORD_MAGIC);
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(&payload[..payload.len() / 2]);
        let log = parse_log(&buf);
        assert_eq!(log.entries, records[..1].to_vec());
        assert_eq!(log.committed_bytes, committed);
        assert!(log.torn_bytes > 0);
    }

    #[test]
    fn corrupt_magic_ends_the_log_as_torn() {
        let records = sample_records();
        let mut buf = frame(&records[..1]);
        buf.extend_from_slice(&[0xFF, 0x13, 0x37, 0x00, 0x01]);
        let log = parse_log(&buf);
        assert_eq!(log.entries, records[..1].to_vec());
        assert!(log.torn_bytes > 0);
    }

    #[test]
    fn journal_appends_and_reloads_from_the_device() {
        let device = CxlDevice::new(64);
        let mut j = Journal::create(&device, 0).unwrap();
        let records = sample_records();
        for e in &records {
            let payload = encode_payload(e);
            j.append_payload(&device, &payload).unwrap();
            j.seal(&device).unwrap();
        }
        assert!(j.pages_written() > 0);

        let found = find_generations(&device);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].generation, 0);
        let loaded = load_generation(&device, &found[0], NodeId(0))
            .unwrap()
            .expect("superblock is valid");
        assert_eq!(loaded.log.entries, records);
        assert_eq!(loaded.log.torn_bytes, 0);

        // Resuming appends continues the sequence and stays readable.
        let mut resumed = resume(&found[0], loaded);
        assert_eq!(resumed.next_seq(), records.len() as u64);
        let extra = entry(records.len() as u64, Record::Abort { image: 9 });
        let payload = encode_payload(&extra);
        resumed.append_payload(&device, &payload).unwrap();
        resumed.seal(&device).unwrap();
        let reloaded = load_generation(&device, &found[0], NodeId(0))
            .unwrap()
            .unwrap();
        assert_eq!(reloaded.log.entries.len(), records.len() + 1);
        assert_eq!(reloaded.log.entries.last(), Some(&extra));
    }

    #[test]
    fn staged_compaction_is_invisible_until_published() {
        let device = CxlDevice::new(64);
        let mut old = Journal::create(&device, 0).unwrap();
        let e = entry(0, Record::Abort { image: 1 });
        old.append_payload(&device, &encode_payload(&e)).unwrap();
        old.seal(&device).unwrap();

        let snap = entry(0, Record::Snapshot(SnapshotState::default()));
        let (mut staged, written) =
            Journal::stage_compacted(&device, 1, &encode_payload(&snap)).unwrap();
        assert!(written > 0);
        // Both regions exist, but gen 1 has no superblock yet: a crash
        // here leaves gen 0 authoritative.
        let found = find_generations(&device);
        assert_eq!(found.len(), 2);
        assert!(load_generation(&device, &found[1], NodeId(0))
            .unwrap()
            .is_none());
        // Publishing the superblock flips authority to gen 1.
        staged.publish(&device).unwrap();
        let loaded = load_generation(&device, &found[1], NodeId(0))
            .unwrap()
            .unwrap();
        assert_eq!(loaded.log.entries, vec![snap]);
        old.destroy(&device).unwrap();
        assert_eq!(find_generations(&device).len(), 1);
    }

    #[test]
    fn unsealed_append_is_invisible_until_the_marker_lands() {
        let device = CxlDevice::new(64);
        let mut j = Journal::create(&device, 0).unwrap();
        let e = entry(0, Record::Abort { image: 1 });
        let payload = encode_payload(&e);
        j.append_payload(&device, &payload).unwrap();
        // No marker: the record is torn on reload.
        let found = find_generations(&device);
        let loaded = load_generation(&device, &found[0], NodeId(0))
            .unwrap()
            .unwrap();
        assert!(loaded.log.entries.is_empty());
        assert!(loaded.log.torn_bytes > 0);
        // Sealing makes it visible.
        j.seal(&device).unwrap();
        let loaded = load_generation(&device, &found[0], NodeId(0))
            .unwrap()
            .unwrap();
        assert_eq!(loaded.log.entries, vec![e]);
        assert_eq!(loaded.log.torn_bytes, 0);
    }
}
