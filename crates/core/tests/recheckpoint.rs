//! Re-checkpointing chains: checkpoint a *restored* process and restore
//! from the new checkpoint. The paper's lifecycle decoupling (§3.1/§4.1)
//! means a checkpoint never depends on the OS instance — or earlier
//! checkpoint — it came from, so chains must work and old generations must
//! be independently reclaimable.

use std::sync::Arc;

use cxl_mem::CxlDevice;
use cxlfork::CxlFork;
use node_os::addr::{PhysAddr, VirtPageNum};
use node_os::fs::SharedFs;
use node_os::mm::Access;
use node_os::vma::Protection;
use node_os::{Node, NodeConfig};
use rfork::{RemoteFork, RestoreOptions, TierPolicy};

fn cluster(n: usize) -> (Vec<Node>, Arc<CxlDevice>) {
    let device = Arc::new(CxlDevice::with_capacity_mib(256));
    let rootfs = Arc::new(SharedFs::new());
    let nodes = (0..n)
        .map(|i| {
            Node::with_rootfs(
                NodeConfig::default()
                    .with_id(i as u32)
                    .with_local_mem_mib(128),
                Arc::clone(&device),
                Arc::clone(&rootfs),
            )
        })
        .collect();
    (nodes, device)
}

const PAGES: u64 = 64;

fn byte_of(node: &mut Node, pid: node_os::Pid, device: &CxlDevice, vpn: u64) -> u8 {
    node.access(pid, vpn, Access::Read).unwrap();
    let pte = node.process(pid).unwrap().mm.translate(VirtPageNum(vpn));
    match pte.target().unwrap() {
        PhysAddr::Local(pfn) => node.frames().data(pfn).byte_at(0),
        PhysAddr::Cxl(page) => device.read_page(page, node.id()).unwrap().byte_at(0),
    }
}

#[test]
fn checkpoint_of_a_restored_process_carries_its_mutations() {
    let (mut nodes, device) = cluster(3);
    let fork = CxlFork::new();

    // Generation 0 on node 0.
    let p0 = nodes[0].spawn("gen0").unwrap();
    nodes[0]
        .process_mut(p0)
        .unwrap()
        .mm
        .map_anonymous(0, PAGES, Protection::read_write(), "heap")
        .unwrap();
    for i in 0..PAGES {
        nodes[0].access(p0, i, Access::Write).unwrap();
    }
    // Distinctive byte in page 3.
    let pte = nodes[0].process(p0).unwrap().mm.translate(VirtPageNum(3));
    let Some(PhysAddr::Local(pfn)) = pte.target() else {
        panic!()
    };
    nodes[0]
        .with_process_ctx(p0, |_, ctx| ctx.frames.data_mut(pfn).write(0, &[0x11]))
        .unwrap();
    let ckpt0 = fork.checkpoint(&mut nodes[0], p0).unwrap();

    // Generation 1: restore on node 1, mutate page 3, re-checkpoint.
    let r1 = fork.restore(&ckpt0, &mut nodes[1]).unwrap();
    nodes[1].access(r1.pid, 3, Access::Write).unwrap();
    let pte = nodes[1]
        .process(r1.pid)
        .unwrap()
        .mm
        .translate(VirtPageNum(3));
    let Some(PhysAddr::Local(pfn1)) = pte.target() else {
        panic!("written page is local")
    };
    nodes[1]
        .with_process_ctx(r1.pid, |_, ctx| ctx.frames.data_mut(pfn1).write(0, &[0x22]))
        .unwrap();
    // The restored process's page table mixes attached CXL leaves and
    // local (CoW'd) pages; checkpointing must flatten all of it.
    let ckpt1 = fork.checkpoint(&mut nodes[1], r1.pid).unwrap();
    assert_eq!(ckpt1.meta().footprint_pages, PAGES);

    // Generation 2: restore on node 2 and verify both histories.
    let r2 = fork.restore(&ckpt1, &mut nodes[2]).unwrap();
    assert_eq!(
        byte_of(&mut nodes[2], r2.pid, &device, 3),
        0x22,
        "gen1's write"
    );
    // A fresh clone of gen0 still sees the original byte.
    let r0b = fork.restore(&ckpt0, &mut nodes[2]).unwrap();
    assert_eq!(
        byte_of(&mut nodes[2], r0b.pid, &device, 3),
        0x11,
        "gen0 pristine"
    );
}

#[test]
fn old_generations_are_independently_reclaimable() {
    let (mut nodes, device) = cluster(2);
    let fork = CxlFork::new();

    let p0 = nodes[0].spawn("gen0").unwrap();
    nodes[0]
        .process_mut(p0)
        .unwrap()
        .mm
        .map_anonymous(0, PAGES, Protection::read_write(), "heap")
        .unwrap();
    for i in 0..PAGES {
        nodes[0].access(p0, i, Access::Write).unwrap();
    }
    let before = device.used_pages();
    let ckpt0 = fork.checkpoint(&mut nodes[0], p0).unwrap();
    let r1 = fork.restore(&ckpt0, &mut nodes[1]).unwrap();
    let ckpt1 = fork.checkpoint(&mut nodes[1], r1.pid).unwrap();

    // Gen-1's checkpoint copied everything it needed; gen-0 can go.
    fork.release(ckpt0, &nodes[0]).unwrap();

    // Gen-1 restores still work and read correct data. (The r1 process
    // itself had attached gen-0 leaves — a real kernel would refcount the
    // region; the simulation requires the operator to kill attachers
    // first, which the porter's recycle path does.)
    nodes[1].kill(r1.pid).unwrap();
    let r2 = fork.restore(&ckpt1, &mut nodes[0]).unwrap();
    nodes[0].access(r2.pid, 5, Access::Read).unwrap();

    fork.release(ckpt1, &nodes[0]).unwrap();
    nodes[0].kill(r2.pid).unwrap();
    assert_eq!(device.used_pages(), before, "both generations reclaimed");
}

#[test]
fn hybrid_restore_of_a_recheckpoint_respects_new_access_bits() {
    let (mut nodes, _device) = cluster(2);
    let fork = CxlFork::new();

    let p0 = nodes[0].spawn("gen0").unwrap();
    nodes[0]
        .process_mut(p0)
        .unwrap()
        .mm
        .map_anonymous(0, PAGES, Protection::read_write(), "heap")
        .unwrap();
    for i in 0..PAGES {
        nodes[0].access(p0, i, Access::Write).unwrap();
    }
    let ckpt0 = fork.checkpoint(&mut nodes[0], p0).unwrap();

    // Restore gen 1, clear its A bits, then touch only pages 0..8.
    let r1 = fork
        .restore_with(
            &ckpt0,
            &mut nodes[1],
            RestoreOptions {
                policy: TierPolicy::MigrateOnWrite,
                prefetch_dirty: false,
                sync_hot_prefetch: false,
            },
        )
        .unwrap();
    nodes[1]
        .with_process_ctx(r1.pid, |p, _| p.mm.page_table.clear_ad_bits())
        .unwrap();
    ckpt0.reset_access_bits(); // shared leaves: reset those too
    for i in 0..8 {
        nodes[1].access(r1.pid, i, Access::Read).unwrap();
    }
    let ckpt1 = fork.checkpoint(&mut nodes[1], r1.pid).unwrap();
    assert_eq!(ckpt1.accessed_pages, 8, "gen1's steady-state A bits");

    // A hybrid restore of gen 1 arms exactly those eight pages.
    let r2 = fork
        .restore_with(
            &ckpt1,
            &mut nodes[0],
            RestoreOptions {
                policy: TierPolicy::Hybrid,
                prefetch_dirty: false,
                sync_hot_prefetch: false,
            },
        )
        .unwrap();
    let hot = nodes[0].access(r2.pid, 2, Access::Read).unwrap();
    assert_eq!(hot.fault, Some(node_os::mm::FaultKind::CxlPull));
    let cold = nodes[0].access(r2.pid, 20, Access::Read).unwrap();
    assert_eq!(cold.fault, None);
    assert!(cold.cxl_tier);
}
