//! # CXLfork — fast remote fork over CXL fabrics
//!
//! A reproduction of *CXLfork: Fast Remote Fork over CXL Fabrics*
//! (ASPLOS '25). CXLfork is a remote-fork interface that realizes close to
//! **zero-serialization, zero-copy** process cloning across the nodes of a
//! CXL-interconnected cluster:
//!
//! * **Checkpoint** (§4.1): process data *and* OS-maintained state (page
//!   tables, VMA tree, task structure) are copied as-is into shared CXL
//!   memory with streaming non-temporal stores, then **rebased** — every
//!   internal pointer is rewritten to a machine-independent CXL device
//!   page number so any OS instance can remap and dereference the
//!   structures. Clean private file mappings (libraries) are checkpointed
//!   too, trading checkpoint size for restore performance. Only genuinely
//!   global state (open fds, namespaces) is lightly serialized.
//! * **Restore** (§4.2): instead of copying, the target node allocates
//!   only the *upper levels* of the page-table and VMA trees and
//!   **attaches** the checkpointed leaves, restoring OS state in near
//!   constant time. The process resumes immediately; reads are served
//!   straight from CXL (and cached by the local LLC), writes take
//!   migrate-on-write CoW faults. Checkpoint-dirty pages can be
//!   opportunistically prefetched, since children overwhelmingly re-write
//!   what the parent wrote (§4.2.1).
//! * **Sharing & deduplication**: every instance cloned from the same
//!   checkpoint — on any node — maps the same CXL pages and the same
//!   page-table/VMA leaves, deduplicating function state cluster-wide
//!   (Fig. 7b: ≈13 % of a cold start's local memory).
//! * **Tiering** (§4.3): the [`rfork::TierPolicy`] knob selects
//!   migrate-on-write (default), migrate-on-access, or hybrid A-bit-guided
//!   placement, and [`tiering`] exposes the working-set monitoring and
//!   user hot-hint interfaces that drive dynamic policy switching.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cxl_mem::CxlDevice;
//! use cxlfork::CxlFork;
//! use node_os::{Node, NodeConfig, fs::SharedFs, mm::Access, vma::Protection};
//! use rfork::{RemoteFork, RestoreOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let device = Arc::new(CxlDevice::with_capacity_mib(64));
//! let rootfs = Arc::new(SharedFs::new());
//! let mut node0 = Node::with_rootfs(NodeConfig::default().with_id(0), Arc::clone(&device), Arc::clone(&rootfs));
//! let mut node1 = Node::with_rootfs(NodeConfig::default().with_id(1), Arc::clone(&device), rootfs);
//!
//! // A process with some written state on node 0 ...
//! let pid = node0.spawn("fn")?;
//! node0.process_mut(pid)?.mm.map_anonymous(0, 32, Protection::read_write(), "heap")?;
//! for i in 0..32 { node0.access(pid, i, Access::Write)?; }
//!
//! // ... checkpointed once, restored (zero-copy) on node 1.
//! let cxlfork = CxlFork::new();
//! let ckpt = cxlfork.checkpoint(&mut node0, pid)?;
//! let child = cxlfork.restore_with(&ckpt, &mut node1, RestoreOptions::mow())?;
//! assert!(child.restore_latency.as_millis() < 10, "near-constant-time restore");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod restore;
pub mod tiering;

pub use checkpoint::{CkptLeaf, CxlForkCheckpoint, TaskImage, GLOBAL_STATE_MAGIC};
pub use tiering::WorkingSetEstimate;

use std::sync::atomic::{AtomicU64, Ordering};

use node_os::addr::Pid;
use node_os::Node;
use rfork::{CheckpointMeta, RemoteFork, RestoreOptions, Restored, RforkError};

/// Tuning knobs for the CXLfork mechanism.
///
/// The default configuration reproduces the paper's serial transfer
/// model bit-for-bit; every knob is opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CxlForkConfig {
    /// Number of overlapped per-shard streams a checkpoint or restore
    /// transfer may drive concurrently (the device pool is banked into
    /// shards, each with an independent port). `1` — the default — keeps
    /// the single-stream serial cost model, virtual-time-identical to a
    /// build without the knob; higher values cost bulk transfers as the
    /// critical path over per-shard pipelines
    /// ([`simclock::PipelineModel`]) and stripe checkpoint allocations
    /// across banks so each stream has real work. CRIU/Mitosis baselines
    /// ignore this knob and stay serial, preserving the paper's
    /// mechanism ordering.
    pub parallelism: u32,
}

impl Default for CxlForkConfig {
    fn default() -> Self {
        CxlForkConfig { parallelism: 1 }
    }
}

impl CxlForkConfig {
    /// A config with the given stream parallelism and everything else
    /// default.
    pub fn with_parallelism(parallelism: u32) -> Self {
        CxlForkConfig { parallelism }
    }
}

/// The CXLfork mechanism.
#[derive(Debug)]
pub struct CxlFork {
    next_seq: AtomicU64,
    /// Tuning knobs (stream parallelism).
    config: CxlForkConfig,
    /// Content-addressed image store. When set, checkpoint data pages
    /// are interned (deduplicated across images, zero pages elided) and
    /// restores of an evicted image fail with a typed
    /// [`RforkError::EvictedImage`] miss.
    store: Option<std::sync::Arc<cxl_store::Store>>,
    /// Fingerprint seals of every live checkpoint this mechanism took;
    /// restores re-verify them (checkpoints are immutable by design,
    /// §4.2.1).
    #[cfg(feature = "check")]
    seals: cxl_mem::lockdep::TrackedMutex<cxl_check::SealRegistry>,
}

impl Default for CxlFork {
    fn default() -> Self {
        CxlFork {
            next_seq: AtomicU64::new(0),
            config: CxlForkConfig::default(),
            store: None,
            #[cfg(feature = "check")]
            seals: cxl_mem::lockdep::TrackedMutex::new(
                "cxlfork.seals",
                cxl_check::SealRegistry::default(),
            ),
        }
    }
}

impl CxlFork {
    /// Creates the mechanism without a store (every checkpoint owns its
    /// data pages privately).
    pub fn new() -> Self {
        CxlFork::default()
    }

    /// Creates the mechanism with a content-addressed image store:
    /// checkpoints route their data pages through
    /// [`cxl_store::Store::intern_pages`], sharing identical content
    /// across images.
    pub fn with_store(store: std::sync::Arc<cxl_store::Store>) -> Self {
        CxlFork {
            store: Some(store),
            ..CxlFork::default()
        }
    }

    /// Creates the mechanism with explicit tuning knobs (no store).
    pub fn with_config(config: CxlForkConfig) -> Self {
        CxlFork {
            config,
            ..CxlFork::default()
        }
    }

    /// Creates the mechanism with both a content-addressed store and
    /// explicit tuning knobs.
    pub fn with_store_and_config(
        store: std::sync::Arc<cxl_store::Store>,
        config: CxlForkConfig,
    ) -> Self {
        CxlFork {
            config,
            store: Some(store),
            ..CxlFork::default()
        }
    }

    /// The mechanism's tuning knobs.
    pub fn config(&self) -> &CxlForkConfig {
        &self.config
    }

    /// The image store, if the mechanism was built with one.
    pub fn store(&self) -> Option<&std::sync::Arc<cxl_store::Store>> {
        self.store.as_ref()
    }

    /// Deletes a checkpoint, freeing its CXL region (CXLporter's
    /// reclamation path, §5). With a store, the image's references are
    /// dropped (shared pages stay for other images) and an
    /// already-evicted image is a no-op rather than an error.
    ///
    /// # Errors
    ///
    /// [`RforkError::Cxl`] if the region is already gone (store-less
    /// path only).
    pub fn release(&self, checkpoint: CxlForkCheckpoint, node: &Node) -> Result<u64, RforkError> {
        #[cfg(feature = "check")]
        self.with_seals(|seals| seals.release(checkpoint.region));
        if let (Some(store), Some(image)) = (&self.store, checkpoint.image) {
            // An image already evicted (or released) by the store is a
            // clean no-op here, matching the store-less path's tolerance.
            let data_freed = store.release_image(image).unwrap_or(0);
            // Eviction already destroyed the metadata region; releasing
            // an evicted handle is then a clean no-op.
            let meta_freed = node.device().destroy_region(checkpoint.region).unwrap_or(0);
            return Ok(data_freed + meta_freed);
        }
        Ok(node.device().destroy_region(checkpoint.region)?)
    }
}

#[cfg(feature = "check")]
impl CxlFork {
    fn with_seals<R>(&self, f: impl FnOnce(&mut cxl_check::SealRegistry) -> R) -> R {
        f(&mut self.seals.lock())
    }

    /// Re-verifies every checkpoint this mechanism sealed against the
    /// device, returning a violation per mutated or freed checkpoint
    /// page. Only available with the `check` feature.
    pub fn verify_seals(&self, device: &cxl_mem::CxlDevice) -> Vec<cxl_check::Violation> {
        self.with_seals(|seals| seals.verify(device))
    }
}

impl RemoteFork for CxlFork {
    type Checkpoint = CxlForkCheckpoint;

    fn name(&self) -> &'static str {
        "CXLfork"
    }

    fn checkpoint(&self, node: &mut Node, pid: Pid) -> Result<CxlForkCheckpoint, RforkError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let ckpt =
            checkpoint::take_checkpoint(node, pid, seq, self.store.as_deref(), &self.config)?;
        #[cfg(feature = "check")]
        self.with_seals(|seals| {
            seals
                .seal_region(node.device(), ckpt.region)
                .expect("checkpoint pages are live at seal time");
        });
        Ok(ckpt)
    }

    fn restore_with(
        &self,
        checkpoint: &CxlForkCheckpoint,
        node: &mut Node,
        options: RestoreOptions,
    ) -> Result<Restored, RforkError> {
        // A typed miss, never stale bytes: an image evicted under
        // capacity pressure is reported as such so the orchestrator can
        // re-checkpoint instead of diagnosing a mysterious BadImage.
        if let (Some(store), Some(image)) = (&self.store, checkpoint.image) {
            if !store.is_live(image) {
                return Err(RforkError::EvictedImage { image: image.0 });
            }
        }
        let restored = restore::restore(checkpoint, node, options, &self.config)?;
        if let (Some(store), Some(image)) = (&self.store, checkpoint.image) {
            store.touch_restore(image, node.now());
        }
        // Post-condition (`check` builds): a restore must never write
        // through the sealed checkpoint it attaches.
        #[cfg(feature = "check")]
        {
            let violations =
                self.with_seals(|seals| seals.verify_region(node.device(), checkpoint.region));
            assert!(
                violations.is_empty(),
                "restore mutated its sealed checkpoint: {violations:?}"
            );
        }
        Ok(restored)
    }

    /// CXLfork's default restore uses migrate-on-write with dirty-page
    /// prefetch (§4.2.1, §4.3).
    fn restore(
        &self,
        checkpoint: &CxlForkCheckpoint,
        node: &mut Node,
    ) -> Result<Restored, RforkError> {
        self.restore_with(checkpoint, node, RestoreOptions::mow())
    }

    fn meta<'c>(&self, checkpoint: &'c CxlForkCheckpoint) -> &'c CheckpointMeta {
        &checkpoint.meta
    }

    fn image_id(&self, checkpoint: &CxlForkCheckpoint) -> Option<u64> {
        checkpoint.image.map(|i| i.0)
    }

    /// CXLfork restores consume only what the policy migrates: the dirty
    /// pages under MoW prefetch, the hot pages under hybrid, or the full
    /// footprint (lazily) under MoA.
    fn restore_memory_estimate(
        &self,
        checkpoint: &CxlForkCheckpoint,
        options: RestoreOptions,
    ) -> u64 {
        match options.policy {
            rfork::TierPolicy::MigrateOnWrite => {
                if options.prefetch_dirty {
                    checkpoint.dirty_pages
                } else {
                    checkpoint.dirty_pages / 2
                }
            }
            rfork::TierPolicy::Hybrid => checkpoint.accessed_pages + checkpoint.dirty_pages,
            rfork::TierPolicy::MigrateOnAccess => checkpoint.meta.footprint_pages,
        }
    }

    /// Periodic A-bit reset for continuous working-set re-estimation
    /// (§4.3, §5).
    fn maintain(&self, checkpoint: &CxlForkCheckpoint) {
        checkpoint.reset_access_bits();
    }

    fn release_checkpoint(
        &self,
        checkpoint: CxlForkCheckpoint,
        node: &Node,
    ) -> Result<u64, RforkError> {
        self.release(checkpoint, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_mem::{CxlDevice, CxlError, PAGE_SIZE};
    use node_os::addr::{PhysAddr, VirtPageNum};
    use node_os::fs::SharedFs;
    use node_os::mm::{Access, CxlTierPolicy, FaultKind};
    use node_os::process::Registers;
    use node_os::vma::Protection;
    use node_os::NodeConfig;
    use simclock::SimDuration;
    use std::sync::Arc;

    struct Cluster {
        device: Arc<CxlDevice>,
        nodes: Vec<Node>,
        fork: CxlFork,
    }

    fn cluster(n: usize) -> Cluster {
        let device = Arc::new(CxlDevice::with_capacity_mib(256));
        let rootfs = Arc::new(SharedFs::new());
        rootfs.create("/usr/lib/libpython.so", 64 * PAGE_SIZE, 3);
        let nodes = (0..n)
            .map(|i| {
                Node::with_rootfs(
                    NodeConfig::default()
                        .with_id(i as u32)
                        .with_local_mem_mib(256),
                    Arc::clone(&device),
                    Arc::clone(&rootfs),
                )
            })
            .collect();
        Cluster {
            device,
            nodes,
            fork: CxlFork::new(),
        }
    }

    /// 64 anon pages written, 16 file pages read, 8 anon pages re-written
    /// (dirty at checkpoint), fds open.
    fn build_process(node: &mut Node) -> Pid {
        let pid = node.spawn("bert").unwrap();
        {
            let p = node.process_mut(pid).unwrap();
            p.task.regs = Registers::seeded(0xC0FFEE);
            p.task.ns.pid_ns = 11;
            p.task.ns.mount_ns = 12;
            p.mm.map_anonymous(0, 64, Protection::read_write(), "heap")
                .unwrap();
            p.mm.map_file(
                4096,
                16,
                Protection::read_exec(),
                "/usr/lib/libpython.so",
                0,
            )
            .unwrap();
            p.task.fds.open(node_os::process::FileDescriptor {
                path: "/usr/lib/libpython.so".into(),
                offset: 0,
                writable: false,
            });
        }
        for i in 0..64 {
            node.access(pid, i, Access::Write).unwrap();
        }
        for i in 4096..4112 {
            node.access(pid, i, Access::Read).unwrap();
        }
        pid
    }

    #[test]
    fn checkpoint_copies_everything_including_clean_file_pages() {
        let mut c = cluster(1);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        // Unlike CRIU, clean private file pages ARE checkpointed (§4.1).
        assert_eq!(ckpt.data_pages, 80);
        assert_eq!(ckpt.meta().footprint_pages, 80);
        assert_eq!(ckpt.dirty_pages, 64, "writes recorded in D bits");
        assert_eq!(ckpt.accessed_pages, 80, "all touched pages have A set");
        // Device region: data + pt leaves + vma blocks + task page.
        let usage = c.device.region_usage(ckpt.region).unwrap();
        assert!(usage.pages > ckpt.data_pages);
        assert_eq!(ckpt.meta().cxl_pages, usage.pages);
    }

    #[test]
    fn restore_is_zero_copy_and_constant_ish_time() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();

        let frames_before = c.nodes[1].frames().used();
        let restored = c
            .fork
            .restore_with(
                &ckpt,
                &mut c.nodes[1],
                rfork::RestoreOptions {
                    policy: rfork::TierPolicy::MigrateOnWrite,
                    prefetch_dirty: false,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap();
        // Zero data copies: no local frames consumed.
        assert_eq!(c.nodes[1].frames().used(), frames_before);
        let child = c.nodes[1].process(restored.pid).unwrap();
        assert_eq!(child.task.regs, Registers::seeded(0xC0FFEE));
        assert_eq!(child.task.ns.pid_ns, 11);
        assert_eq!(child.task.fds.open_count(), 1);
        assert_eq!(child.mm.mapped_cxl_pages(), 80);
        assert_eq!(child.mm.private_local_pages(), 0);
        assert_eq!(child.mm.page_table.attached_leaf_count(), ckpt.leaves.len());
        // Restore latency in the paper's 1.2–6.1 ms band (small process →
        // near the bottom, and well under CRIU-scale).
        assert!(
            restored.restore_latency < SimDuration::from_millis(7),
            "restore took {}",
            restored.restore_latency
        );
    }

    #[test]
    fn restored_child_reads_checkpointed_bytes_from_cxl() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        // Recognizable byte in page 5.
        let pte = c.nodes[0]
            .process(pid)
            .unwrap()
            .mm
            .translate(VirtPageNum(5));
        let Some(PhysAddr::Local(pfn)) = pte.target() else {
            panic!()
        };
        c.nodes[0]
            .with_process_ctx(pid, |_, ctx| ctx.frames.data_mut(pfn).write(11, &[0x5C]))
            .unwrap();
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();

        let restored = c.fork.restore(&ckpt, &mut c.nodes[1]).unwrap();
        let o = c.nodes[1].access(restored.pid, 5, Access::Read).unwrap();
        assert_eq!(o.fault, None, "reads never fault under MoW");
        let cpte = c.nodes[1]
            .process(restored.pid)
            .unwrap()
            .mm
            .translate(VirtPageNum(5));
        match cpte.target() {
            Some(PhysAddr::Cxl(page)) => {
                let data = c.device.read_page(page, c.nodes[1].id()).unwrap();
                assert_eq!(data.byte_at(11), 0x5C);
            }
            Some(PhysAddr::Local(lpfn)) => {
                // Page 5 was dirty → prefetched local by default options.
                assert_eq!(c.nodes[1].frames().data(lpfn).byte_at(11), 0x5C);
            }
            None => panic!("page 5 unmapped after restore"),
        }
    }

    #[test]
    fn write_triggers_cxl_cow_and_checkpoint_stays_pristine() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        let fingerprints: Vec<u64> = ckpt
            .iter_pages()
            .map(|(_, pte)| {
                let Some(PhysAddr::Cxl(p)) = pte.target() else {
                    panic!()
                };
                c.device.fingerprint(p).unwrap()
            })
            .collect();

        // Restore WITHOUT prefetch so the write must CoW.
        let restored = c
            .fork
            .restore_with(
                &ckpt,
                &mut c.nodes[1],
                rfork::RestoreOptions {
                    policy: rfork::TierPolicy::MigrateOnWrite,
                    prefetch_dirty: false,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap();
        let o = c.nodes[1].access(restored.pid, 3, Access::Write).unwrap();
        assert_eq!(o.fault, Some(FaultKind::CxlCow));
        assert!(o.pt_leaf_cow, "first write copies the attached leaf");

        // Scribble through the new local frame.
        let cpte = c.nodes[1]
            .process(restored.pid)
            .unwrap()
            .mm
            .translate(VirtPageNum(3));
        let Some(PhysAddr::Local(lpfn)) = cpte.target() else {
            panic!()
        };
        c.nodes[1]
            .with_process_ctx(restored.pid, |_, ctx| {
                ctx.frames.data_mut(lpfn).write(0, &[0xEE]);
            })
            .unwrap();

        // Every checkpoint page fingerprint is unchanged.
        let after: Vec<u64> = ckpt
            .iter_pages()
            .map(|(_, pte)| {
                let Some(PhysAddr::Cxl(p)) = pte.target() else {
                    panic!()
                };
                c.device.fingerprint(p).unwrap()
            })
            .collect();
        assert_eq!(fingerprints, after);
    }

    #[test]
    fn siblings_on_different_nodes_share_cxl_state() {
        let mut c = cluster(3);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        let device_pages_after_ckpt = c.device.used_pages();

        let opts = rfork::RestoreOptions {
            policy: rfork::TierPolicy::MigrateOnWrite,
            prefetch_dirty: false,
            sync_hot_prefetch: false,
        };
        let r1 = c.fork.restore_with(&ckpt, &mut c.nodes[1], opts).unwrap();
        let r2 = c.fork.restore_with(&ckpt, &mut c.nodes[2], opts).unwrap();
        // Cluster-wide dedup: restores add ZERO device pages and zero
        // local frames.
        assert_eq!(c.device.used_pages(), device_pages_after_ckpt);
        for (node, pid) in [(&c.nodes[1], r1.pid), (&c.nodes[2], r2.pid)] {
            let p = node.process(pid).unwrap();
            assert_eq!(p.mm.private_local_pages(), 0);
            assert_eq!(p.mm.mapped_cxl_pages(), 80);
        }
        // Both map the same physical CXL page for vpn 0.
        let t1 = c.nodes[1]
            .process(r1.pid)
            .unwrap()
            .mm
            .translate(VirtPageNum(0));
        let t2 = c.nodes[2]
            .process(r2.pid)
            .unwrap()
            .mm
            .translate(VirtPageNum(0));
        assert_eq!(t1.target(), t2.target());
    }

    #[test]
    fn prefetch_dirty_avoids_cow_faults() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        let restored = c.fork.restore(&ckpt, &mut c.nodes[1]).unwrap(); // default: prefetch on
        assert_eq!(
            c.nodes[1].counters().get("cxlfork_prefetched_page"),
            ckpt.dirty_pages
        );
        // Writing a prefetched page is fault-free.
        let o = c.nodes[1].access(restored.pid, 3, Access::Write).unwrap();
        assert_eq!(o.fault, None);
        assert_eq!(
            c.nodes[1]
                .process(restored.pid)
                .unwrap()
                .mm
                .private_local_pages(),
            ckpt.dirty_pages
        );
    }

    #[test]
    fn moa_policy_pulls_everything_on_access() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        let restored = c
            .fork
            .restore_with(&ckpt, &mut c.nodes[1], rfork::RestoreOptions::moa())
            .unwrap();
        let child = c.nodes[1].process(restored.pid).unwrap();
        assert_eq!(child.mm.policy(), CxlTierPolicy::MigrateOnAccess);
        assert_eq!(child.mm.mapped_cxl_pages(), 0, "nothing attached");

        // Reads pull pages locally.
        let o = c.nodes[1].access(restored.pid, 10, Access::Read).unwrap();
        assert_eq!(o.fault, Some(FaultKind::CxlPull));
        assert!(!o.cxl_tier);
        // File pages pull too (they are checkpointed).
        let o2 = c.nodes[1].access(restored.pid, 4100, Access::Read).unwrap();
        assert_eq!(o2.fault, Some(FaultKind::CxlPull));
    }

    #[test]
    fn hybrid_policy_splits_by_accessed_bit() {
        let mut c = cluster(2);
        // Build a process where only half the pages are accessed before
        // checkpointing: map 32 pages, touch 16.
        let pid = c.nodes[0].spawn("half").unwrap();
        c.nodes[0]
            .process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 32, Protection::read_write(), "heap")
            .unwrap();
        for i in 0..32 {
            c.nodes[0].access(pid, i, Access::Write).unwrap();
        }
        // Reset A bits, then touch only the first 16 pages again.
        c.nodes[0]
            .with_process_ctx(pid, |p, _| {
                for (_, slot) in p.mm.page_table.leaves() {
                    slot.access_bits().clear_all();
                }
            })
            .unwrap();
        for i in 0..16 {
            c.nodes[0].access(pid, i, Access::Read).unwrap();
        }
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        assert_eq!(ckpt.accessed_pages, 16);

        let restored = c
            .fork
            .restore_with(
                &ckpt,
                &mut c.nodes[1],
                rfork::RestoreOptions {
                    policy: rfork::TierPolicy::Hybrid,
                    prefetch_dirty: false,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap();
        // Hot page: pulled local on first access.
        let o_hot = c.nodes[1].access(restored.pid, 2, Access::Read).unwrap();
        assert_eq!(o_hot.fault, Some(FaultKind::CxlPull));
        // Cold page: stays in CXL, read directly with no fault.
        let o_cold = c.nodes[1].access(restored.pid, 20, Access::Read).unwrap();
        assert_eq!(o_cold.fault, None);
        assert!(o_cold.cxl_tier);
    }

    #[test]
    fn user_hot_hints_promote_pages_in_hybrid() {
        let mut c = cluster(2);
        let pid = c.nodes[0].spawn("hints").unwrap();
        c.nodes[0]
            .process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 8, Protection::read_write(), "heap")
            .unwrap();
        for i in 0..8 {
            c.nodes[0].access(pid, i, Access::Write).unwrap();
        }
        // Clear A bits so nothing is "hot" by access.
        c.nodes[0]
            .with_process_ctx(pid, |p, _| {
                for (_, slot) in p.mm.page_table.leaves() {
                    slot.access_bits().clear_all();
                }
            })
            .unwrap();
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        assert_eq!(ckpt.accessed_pages, 0);
        assert!(ckpt.mark_hot(VirtPageNum(4)));
        assert!(!ckpt.mark_hot(VirtPageNum(999)), "unknown page rejected");
        assert_eq!(ckpt.hot_hint_count(), 1);

        let restored = c
            .fork
            .restore_with(
                &ckpt,
                &mut c.nodes[1],
                rfork::RestoreOptions {
                    policy: rfork::TierPolicy::Hybrid,
                    prefetch_dirty: false,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap();
        let o_hint = c.nodes[1].access(restored.pid, 4, Access::Read).unwrap();
        assert_eq!(
            o_hint.fault,
            Some(FaultKind::CxlPull),
            "hinted page migrates"
        );
        let o_other = c.nodes[1].access(restored.pid, 5, Access::Read).unwrap();
        assert_eq!(o_other.fault, None, "unhinted page stays in CXL");
    }

    #[test]
    fn working_set_monitoring_via_shared_a_bits() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        ckpt.reset_access_bits();
        assert_eq!(ckpt.working_set().hot_pages, 0);

        let restored = c
            .fork
            .restore_with(
                &ckpt,
                &mut c.nodes[1],
                rfork::RestoreOptions {
                    policy: rfork::TierPolicy::MigrateOnWrite,
                    prefetch_dirty: false,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap();
        for i in 0..10 {
            c.nodes[1].access(restored.pid, i, Access::Read).unwrap();
        }
        // The restored instance's walks updated the A bits on the SHARED
        // checkpoint leaves (§4.3).
        let ws = ckpt.working_set();
        assert_eq!(ws.hot_pages, 10);
        assert_eq!(ws.total_pages, 80);
        assert!((ws.hot_fraction() - 0.125).abs() < 1e-9);
        // And user space can reset them again.
        ckpt.reset_access_bits();
        assert_eq!(ckpt.working_set().hot_pages, 0);
    }

    #[test]
    fn release_frees_the_whole_region() {
        let mut c = cluster(1);
        let pid = build_process(&mut c.nodes[0]);
        let before = c.device.used_pages();
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        assert!(c.device.used_pages() > before);
        let freed = c.fork.release(ckpt, &c.nodes[0]).unwrap();
        assert!(freed > 0);
        assert_eq!(c.device.used_pages(), before);
    }

    #[test]
    fn restore_latency_nearly_independent_of_footprint() {
        let mut c = cluster(2);
        let small = build_process(&mut c.nodes[0]);
        let big = c.nodes[0].spawn("big").unwrap();
        c.nodes[0]
            .process_mut(big)
            .unwrap()
            .mm
            .map_anonymous(1 << 20, 4096, Protection::read_write(), "heap")
            .unwrap();
        for i in 0..4096u64 {
            c.nodes[0]
                .access(big, (1 << 20) + i, Access::Write)
                .unwrap();
        }
        let ck_small = c.fork.checkpoint(&mut c.nodes[0], small).unwrap();
        let ck_big = c.fork.checkpoint(&mut c.nodes[0], big).unwrap();
        let opts = rfork::RestoreOptions {
            policy: rfork::TierPolicy::MigrateOnWrite,
            prefetch_dirty: false,
            sync_hot_prefetch: false,
        };
        let r_small = c
            .fork
            .restore_with(&ck_small, &mut c.nodes[1], opts)
            .unwrap();
        let r_big = c.fork.restore_with(&ck_big, &mut c.nodes[1], opts).unwrap();
        // 51x the footprint, but restore grows only with leaf count.
        assert!(
            r_big.restore_latency < r_small.restore_latency * 4,
            "attach-based restore: {} vs {}",
            r_big.restore_latency,
            r_small.restore_latency
        );
    }

    #[test]
    fn torn_staging_checkpoint_is_never_restorable() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        assert_eq!(c.device.region_committed(ckpt.region), Some(true));

        // Forge a checkpoint whose region is an *unpublished* staging
        // region — what a reader would see if a node died mid-copy and
        // two-phase commit did not exist.
        let torn_region = c
            .device
            .create_region_staged("cxlfork:torn#1", cxl_mem::NodeId(0), 1);
        c.device.alloc_pages(torn_region, 4).unwrap();
        let forged = CxlForkCheckpoint {
            meta: ckpt.meta.clone(),
            region: torn_region,
            image: None,
            task: ckpt.task.clone(),
            global_bytes: ckpt.global_bytes.clone(),
            vma_blocks: ckpt.vma_blocks.clone(),
            leaves: ckpt.leaves.clone(),
            backing: Arc::clone(&ckpt.backing),
            data_pages: ckpt.data_pages,
            dirty_pages: ckpt.dirty_pages,
            accessed_pages: ckpt.accessed_pages,
        };
        let before = c.nodes[1].process_count();
        let err = c.fork.restore(&forged, &mut c.nodes[1]).unwrap_err();
        assert!(matches!(err, RforkError::BadImage(_)), "got {err}");
        assert_eq!(c.nodes[1].process_count(), before, "no zombie process");

        // A destroyed region is equally unrestorable.
        c.device.destroy_region(torn_region).unwrap();
        c.fork.release(ckpt, &c.nodes[0]).unwrap();
    }

    #[test]
    fn checkpoint_retries_transient_faults_and_charges_backoff() {
        let mut c = cluster(1);
        let pid = build_process(&mut c.nodes[0]);
        // Clean baseline checkpoint of the same process.
        let clean = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();

        // Two transient write errors early in the bulk copy.
        let inj = Arc::new(cxl_fault::Injector::from_schedule(
            cxl_fault::FaultSchedule::new().transient_after(cxl_mem::DeviceOp::Write, 3, 2),
        ));
        inj.arm(&c.device);
        let faulted = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        c.device.set_fault_hook(None);

        assert_eq!(c.nodes[0].counters().get("cxl_transient_retry"), 2);
        assert!(
            faulted.meta().checkpoint_cost > clean.meta().checkpoint_cost,
            "backoff delay must show up in the checkpoint cost ({} vs {})",
            faulted.meta().checkpoint_cost,
            clean.meta().checkpoint_cost
        );
        assert_eq!(faulted.data_pages, clean.data_pages);
    }

    #[test]
    fn batch_retry_backoff_is_charged_exactly_once_per_attempt() {
        // Regression guard for the batched copy path: a transient fault
        // retries the *whole batch*, but the modelled copy time is paid
        // once and every attempt adds exactly one backoff step. The cost
        // delta between a faulted and a clean checkpoint of the same
        // process must therefore be the policy's backoff ladder alone —
        // a re-charged batch (or a per-page retry loop sneaking back in)
        // would show up as a larger delta.
        let mut c = cluster(1);
        let pid = build_process(&mut c.nodes[0]);
        let clean = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();

        let policy = cxl_fault::BackoffPolicy::default();
        for transients in [1u32, 2, 3] {
            // Seeded, deterministic schedule: the first `transients` write
            // consults fail, so each retry attempt trips the next one.
            let inj = Arc::new(cxl_fault::Injector::from_schedule(
                cxl_fault::FaultSchedule::new().transient_after(
                    cxl_mem::DeviceOp::Write,
                    0,
                    transients,
                ),
            ));
            inj.arm(&c.device);
            let faulted = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
            c.device.set_fault_hook(None);

            // Expected ladder: base, base*m, base*m^2, ... capped.
            let mut expected = simclock::SimDuration::ZERO;
            let mut step = policy.base;
            for _ in 0..transients {
                expected += if step > policy.cap { policy.cap } else { step };
                step = simclock::SimDuration::from_nanos(
                    step.as_nanos().saturating_mul(u64::from(policy.multiplier)),
                );
            }
            assert_eq!(
                faulted.meta().checkpoint_cost,
                clean.meta().checkpoint_cost + expected,
                "{transients} transient(s): cost delta must be backoff alone"
            );
            assert_eq!(faulted.data_pages, clean.data_pages);
        }
    }

    #[test]
    fn checkpoint_gives_up_cleanly_when_the_link_stays_down() {
        let mut c = cluster(1);
        let pid = build_process(&mut c.nodes[0]);
        let used_before = c.device.used_pages();
        // A burst longer than the retry budget (4 attempts).
        let inj = Arc::new(cxl_fault::Injector::from_schedule(
            cxl_fault::FaultSchedule::new().transient_after(cxl_mem::DeviceOp::Write, 0, 16),
        ));
        inj.arm(&c.device);
        let err = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap_err();
        c.device.set_fault_hook(None);
        assert!(
            matches!(
                err,
                RforkError::RetriesExhausted {
                    op: "checkpoint_copy",
                    attempts: 4,
                    ..
                }
            ),
            "got {err}"
        );
        assert_eq!(c.device.used_pages(), used_before, "no leaked pages");
        assert!(c.device.staging_regions().is_empty(), "no orphaned staging");
    }

    #[test]
    fn checkpoint_alloc_exhaustion_fails_all_or_nothing() {
        let mut c = cluster(1);
        let pid = build_process(&mut c.nodes[0]);
        let used_before = c.device.used_pages();
        // The batched checkpoint makes one alloc request per batch (data,
        // leaves, VMA blocks, task), so exhaust the device on the second
        // one — mid-checkpoint, after the data pages already landed.
        let inj = Arc::new(cxl_fault::Injector::from_schedule(
            cxl_fault::FaultSchedule::new().alloc_exhausted_after(1, 1),
        ));
        inj.arm(&c.device);
        let err = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap_err();
        c.device.set_fault_hook(None);
        assert!(
            matches!(err, RforkError::Cxl(CxlError::OutOfDeviceMemory { .. })),
            "got {err}"
        );
        assert_eq!(c.device.used_pages(), used_before);
        assert!(c.device.staging_regions().is_empty());
    }

    #[test]
    fn failed_restore_rolls_back_the_half_restored_process() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();

        let frames_before = c.nodes[1].frames().used();
        let procs_before = c.nodes[1].process_count();
        // The link goes down for good during dirty-page prefetch.
        let inj = Arc::new(cxl_fault::Injector::from_schedule(
            cxl_fault::FaultSchedule::new().transient_after(cxl_mem::DeviceOp::Read, 0, 64),
        ));
        inj.arm(&c.device);
        let err = c
            .fork
            .restore_with(
                &ckpt,
                &mut c.nodes[1],
                rfork::RestoreOptions {
                    policy: rfork::TierPolicy::MigrateOnWrite,
                    prefetch_dirty: true,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap_err();
        c.device.set_fault_hook(None);
        assert!(
            matches!(
                err,
                RforkError::RetriesExhausted {
                    op: "restore_prefetch",
                    ..
                }
            ),
            "got {err}"
        );
        assert_eq!(c.nodes[1].process_count(), procs_before, "no zombie");
        assert_eq!(
            c.nodes[1].frames().used(),
            frames_before,
            "no leaked frames"
        );
        // The checkpoint itself is untouched and still restorable.
        let restored = c.fork.restore(&ckpt, &mut c.nodes[1]).unwrap();
        assert!(c.nodes[1].process(restored.pid).is_ok());
    }

    #[test]
    fn restored_access_to_poisoned_page_surfaces_typed_error() {
        let mut c = cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        let restored = c
            .fork
            .restore_with(
                &ckpt,
                &mut c.nodes[1],
                rfork::RestoreOptions {
                    policy: rfork::TierPolicy::MigrateOnWrite,
                    prefetch_dirty: false,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap();

        // Poison the device page backing vpn 5, then write to it:
        // migrate-on-write must surface the poison, not retry forever.
        let (_, pte) = ckpt
            .iter_pages()
            .find(|(vpn, _)| *vpn == VirtPageNum(5))
            .unwrap();
        let Some(PhysAddr::Cxl(page)) = pte.target() else {
            panic!("checkpoint entries point at CXL");
        };
        let inj = Arc::new(cxl_fault::Injector::from_schedule(
            cxl_fault::FaultSchedule::new(),
        ));
        inj.poison_page(page);
        inj.arm(&c.device);
        let err = c.nodes[1]
            .access(restored.pid, 5, Access::Write)
            .unwrap_err();
        c.device.set_fault_hook(None);
        assert_eq!(
            err,
            node_os::OsError::Cxl(CxlError::Poisoned(page)),
            "poison is permanent, not retried"
        );
        // Other pages stay readable.
        assert!(c.nodes[1].access(restored.pid, 6, Access::Read).is_ok());
    }

    fn store_cluster(n: usize) -> (Cluster, Arc<cxl_store::Store>) {
        let mut c = cluster(n);
        let store = Arc::new(cxl_store::Store::new(Arc::clone(&c.device)));
        c.fork = CxlFork::with_store(Arc::clone(&store));
        (c, store)
    }

    #[test]
    fn store_dedups_identical_content_across_checkpoints() {
        // Two identical processes checkpointed without a store pay for
        // every page twice; through the store the second image's pages
        // all resolve to resident content.
        let mut plain = cluster(1);
        let p1 = build_process(&mut plain.nodes[0]);
        let p2 = build_process(&mut plain.nodes[0]);
        let base = plain.device.used_pages();
        let c1 = plain.fork.checkpoint(&mut plain.nodes[0], p1).unwrap();
        let after_one = plain.device.used_pages() - base;
        let _c2 = plain.fork.checkpoint(&mut plain.nodes[0], p2).unwrap();
        let plain_used = plain.device.used_pages() - base;
        assert_eq!(plain_used, 2 * after_one, "no cross-image sharing");

        let (mut c, store) = store_cluster(1);
        let q1 = build_process(&mut c.nodes[0]);
        let q2 = build_process(&mut c.nodes[0]);
        let base = c.device.used_pages();
        let s1 = c.fork.checkpoint(&mut c.nodes[0], q1).unwrap();
        let s2 = c.fork.checkpoint(&mut c.nodes[0], q2).unwrap();
        let store_used = c.device.used_pages() - base;
        assert!(
            store_used < plain_used,
            "store {store_used} pages vs plain {plain_used}"
        );
        let stats = store.stats();
        // First image: 64 zero-filled anon pages collapse onto one
        // canonical page (63 intra-image hits). Second image: all 80
        // pages are already resident.
        assert_eq!(stats.deduped_pages, 63 + 80);
        // The canonical zero page was allocated but never written.
        assert_eq!(stats.zero_elided, 1);

        // Dedup is transparent: the store-backed checkpoints hold the
        // same bytes per vpn as the plain one.
        let plain_pages: std::collections::BTreeMap<VirtPageNum, cxl_mem::CxlPageId> = c1
            .iter_pages()
            .map(|(vpn, pte)| match pte.target().unwrap() {
                PhysAddr::Cxl(p) => (vpn, p),
                PhysAddr::Local(_) => unreachable!("checkpoints live on the device"),
            })
            .collect();
        for ckpt in [&s1, &s2] {
            for (vpn, pte) in ckpt.iter_pages() {
                let PhysAddr::Cxl(page) = pte.target().unwrap() else {
                    unreachable!("checkpoints live on the device")
                };
                let got = c.device.read_page(page, cxl_mem::NodeId(0)).unwrap();
                let want = plain
                    .device
                    .read_page(plain_pages[&vpn], cxl_mem::NodeId(0))
                    .unwrap();
                assert_eq!(got, want, "vpn {vpn:?} diverged through the store");
            }
        }
    }

    #[test]
    fn store_backed_restore_matches_the_private_path() {
        let (mut c, _store) = store_cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        assert!(ckpt.image.is_some());
        let restored = c
            .fork
            .restore_with(
                &ckpt,
                &mut c.nodes[1],
                rfork::RestoreOptions {
                    policy: rfork::TierPolicy::MigrateOnWrite,
                    prefetch_dirty: false,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap();
        let child = c.nodes[1].process(restored.pid).unwrap();
        assert_eq!(child.task.regs, Registers::seeded(0xC0FFEE));
        assert_eq!(child.mm.mapped_cxl_pages(), 80);
        // File content reads back byte-identically through the deduped
        // pages.
        for i in 4096..4112u64 {
            c.nodes[1].access(restored.pid, i, Access::Read).unwrap();
        }
    }

    #[test]
    fn restoring_an_evicted_image_is_a_typed_miss() {
        let (mut c, store) = store_cluster(2);
        let pid = build_process(&mut c.nodes[0]);
        let ckpt = c.fork.checkpoint(&mut c.nodes[0], pid).unwrap();
        let image = ckpt.image.unwrap();

        // Force the image out (no pins, no leases => always a victim).
        let leases = cxl_fault::LeaseTable::new(SimDuration::from_secs(1));
        let report = store.evict_for(u64::MAX, &leases, c.nodes[0].now());
        assert_eq!(report.images, 1);
        assert!(!store.is_live(image));

        let before = c.nodes[1].process_count();
        let err = c.fork.restore(&ckpt, &mut c.nodes[1]).unwrap_err();
        assert!(
            matches!(err, RforkError::EvictedImage { image: i } if i == image.0),
            "got {err}"
        );
        assert_eq!(c.nodes[1].process_count(), before, "no zombie process");
        // Releasing the stale handle afterwards is a clean no-op.
        assert_eq!(c.fork.release(ckpt, &c.nodes[0]).unwrap(), 0);
    }

    #[test]
    fn store_release_keeps_content_shared_with_other_images() {
        let (mut c, store) = store_cluster(1);
        let p1 = build_process(&mut c.nodes[0]);
        let p2 = build_process(&mut c.nodes[0]);
        let base = c.device.used_pages();
        let c1 = c.fork.checkpoint(&mut c.nodes[0], p1).unwrap();
        let after_one = c.device.used_pages() - base;
        let c2 = c.fork.checkpoint(&mut c.nodes[0], p2).unwrap();

        // Releasing the first image frees only its private metadata —
        // every data page is still referenced by the second image.
        c.fork.release(c1, &c.nodes[0]).unwrap();
        assert_eq!(
            c.device.used_pages() - base,
            after_one,
            "shared data pages survive the first release"
        );
        // Releasing the last image drains the store completely.
        c.fork.release(c2, &c.nodes[0]).unwrap();
        assert_eq!(c.device.used_pages(), base);
        assert!(store.index_snapshot().is_empty());
    }

    /// 4096 anonymous pages, all written — big enough that the striped
    /// allocation spreads real work across every device bank.
    fn build_big_process(node: &mut Node) -> Pid {
        let pid = node.spawn("big").unwrap();
        node.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(1 << 20, 4096, Protection::read_write(), "heap")
            .unwrap();
        for i in 0..4096u64 {
            node.access(pid, (1 << 20) + i, Access::Write).unwrap();
        }
        pid
    }

    #[test]
    fn default_config_is_bit_identical_to_explicit_serial() {
        let mut default_c = cluster(1);
        let mut p1_c = cluster(1);
        p1_c.fork = CxlFork::with_config(CxlForkConfig::with_parallelism(1));
        let d_pid = build_big_process(&mut default_c.nodes[0]);
        let p_pid = build_big_process(&mut p1_c.nodes[0]);
        let d_ck = default_c
            .fork
            .checkpoint(&mut default_c.nodes[0], d_pid)
            .unwrap();
        let p_ck = p1_c.fork.checkpoint(&mut p1_c.nodes[0], p_pid).unwrap();
        assert_eq!(
            d_ck.meta().checkpoint_cost,
            p_ck.meta().checkpoint_cost,
            "parallelism = 1 must reproduce the default serial model exactly"
        );
        assert_eq!(default_c.nodes[0].now(), p1_c.nodes[0].now());
        assert_eq!(
            default_c.device.used_pages(),
            p1_c.device.used_pages(),
            "p = 1 striped allocation degenerates to first-fit"
        );
    }

    #[test]
    fn pipelined_checkpoint_beats_serial_on_a_striped_footprint() {
        let mut serial = cluster(2);
        let mut piped = cluster(2);
        piped.fork = CxlFork::with_config(CxlForkConfig::with_parallelism(8));
        let s_pid = build_big_process(&mut serial.nodes[0]);
        let p_pid = build_big_process(&mut piped.nodes[0]);
        let s_ck = serial.fork.checkpoint(&mut serial.nodes[0], s_pid).unwrap();
        let p_ck = piped.fork.checkpoint(&mut piped.nodes[0], p_pid).unwrap();
        assert!(
            p_ck.meta().checkpoint_cost < s_ck.meta().checkpoint_cost,
            "8 shard streams should overlap the copy: p8 {} vs serial {}",
            p_ck.meta().checkpoint_cost,
            s_ck.meta().checkpoint_cost
        );
        // The image itself is identical — only the transfer schedule
        // (and therefore the virtual-time cost) changes.
        assert_eq!(p_ck.data_pages, s_ck.data_pages);
        assert_eq!(p_ck.meta().footprint_pages, s_ck.meta().footprint_pages);

        // Restore inherits the knob on the prefetch paths and can only
        // get cheaper (the pipelined cost is clamped by the serial one).
        let opts = rfork::RestoreOptions {
            policy: rfork::TierPolicy::MigrateOnWrite,
            prefetch_dirty: true,
            sync_hot_prefetch: false,
        };
        let r_serial = serial
            .fork
            .restore_with(&s_ck, &mut serial.nodes[1], opts)
            .unwrap();
        let r_piped = piped
            .fork
            .restore_with(&p_ck, &mut piped.nodes[1], opts)
            .unwrap();
        assert!(
            r_piped.restore_latency <= r_serial.restore_latency,
            "pipelined prefetch regressed: {} vs {}",
            r_piped.restore_latency,
            r_serial.restore_latency
        );
    }

    #[test]
    fn durable_checkpoint_phases_reconcile_with_the_latency_timer() {
        // The telemetry sink is process-global; a distinctive track keeps
        // spans from any concurrently running test out of the assertions.
        const TRACK: u32 = 4242;
        let device = Arc::new(CxlDevice::with_capacity_mib(256));
        let rootfs = Arc::new(SharedFs::new());
        rootfs.create("/usr/lib/libpython.so", 64 * PAGE_SIZE, 3);
        let mut node = Node::with_rootfs(
            NodeConfig::default().with_id(TRACK).with_local_mem_mib(256),
            Arc::clone(&device),
            Arc::clone(&rootfs),
        );
        let store = Arc::new(cxl_store::Store::with_config(
            Arc::clone(&device),
            cxl_store::StoreConfig {
                durable: true,
                ..cxl_store::StoreConfig::default()
            },
        ));
        let fork = CxlFork::with_store(Arc::clone(&store));
        let pid = build_process(&mut node);

        let session = cxl_telemetry::TelemetrySession::start();
        let ckpt = fork.checkpoint(&mut node, pid).unwrap();
        let data = session.finish();

        let spans: Vec<&cxl_telemetry::SpanRecord> =
            data.spans.iter().filter(|s| s.track == TRACK).collect();
        let parent = spans
            .iter()
            .find(|s| s.name == "core.checkpoint")
            .expect("checkpoint parent span");
        let mut children: Vec<&cxl_telemetry::SpanRecord> = spans
            .iter()
            .filter(|s| s.depth == 1 && s.name.starts_with("core.checkpoint."))
            .filter(|s| !s.name.ends_with(".stream"))
            .copied()
            .collect();
        children.sort_by_key(|s| s.start);
        // The post-publish journal commit is a visible phase child, not
        // silent cost the timer would otherwise underreport.
        assert!(
            children
                .iter()
                .any(|s| s.name == "core.checkpoint.commit_journal" && s.dur_ns() > 0),
            "durable commit must appear as a phase child: {children:?}"
        );
        // The children partition the parent contiguously and sum exactly.
        let mut cursor = parent.start;
        for child in &children {
            assert_eq!(child.start, cursor, "gap before {}", child.name);
            cursor = child.end;
        }
        assert_eq!(cursor, parent.end, "children must cover the parent");
        let child_sum: u64 = children.iter().map(|s| s.dur_ns()).sum();
        assert_eq!(child_sum, parent.dur_ns());
        // Span, timer and the checkpoint's own meta all agree — the
        // commit cost is no longer excluded from any of the three.
        assert_eq!(parent.dur_ns(), ckpt.meta().checkpoint_cost.as_nanos());
        let timer = data
            .registry
            .timer("core", "checkpoint.latency", Some(TRACK))
            .expect("checkpoint.latency timer");
        assert_eq!(timer.len(), 1);
        assert_eq!(timer.mean(), ckpt.meta().checkpoint_cost);
    }
}
