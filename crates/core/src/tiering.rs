//! Working-set monitoring and hot-page interfaces (§4.3).
//!
//! Hybrid tiering is only effective if the checkpointed page tables'
//! Accessed bits capture the workload's hot pages. CXLfork supports
//! *continuous* refinement: restored processes that attached the
//! checkpointed leaves keep setting the (atomic, side-band) A bits as they
//! run, and user space can reset those bits through a dedicated interface
//! to re-estimate the working set over time — the same idle-page-tracking
//! idiom as DAMON-style profilers. User-space profilers can additionally
//! pin pages hot explicitly through the hot-hint bit.

use node_os::addr::VirtPageNum;

use crate::checkpoint::CxlForkCheckpoint;

/// Working-set statistics of a checkpoint's shared leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkingSetEstimate {
    /// Pages whose runtime A bit is currently set (touched since the last
    /// reset by *any* restored instance, cluster-wide).
    pub hot_pages: u64,
    /// Total checkpointed pages.
    pub total_pages: u64,
}

impl WorkingSetEstimate {
    /// Hot fraction in `[0, 1]`; zero when the checkpoint is empty.
    pub fn hot_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.hot_pages as f64 / self.total_pages as f64
        }
    }
}

impl CxlForkCheckpoint {
    /// Clears the runtime A bits on every checkpointed leaf — the
    /// user-space reset interface (§4.3). CXLporter calls this
    /// periodically to re-estimate hot pages.
    pub fn reset_access_bits(&self) {
        for leaf in &self.leaves {
            leaf.leaf.access_bits().clear_all();
        }
    }

    /// Current working-set estimate from the runtime A bits.
    pub fn working_set(&self) -> WorkingSetEstimate {
        let mut hot = 0u64;
        let mut total = 0u64;
        for leaf in &self.leaves {
            for (slot, _) in leaf.leaf.iter_populated() {
                total += 1;
                if leaf.leaf.access_bits().get(slot) {
                    hot += 1;
                }
            }
        }
        WorkingSetEstimate {
            hot_pages: hot,
            total_pages: total,
        }
    }

    /// Marks `vpn` as user-identified hot (§4.3): future hybrid-tiering
    /// restores will migrate it to local memory on first access. Returns
    /// `false` if the page is not part of the checkpoint.
    pub fn mark_hot(&self, vpn: VirtPageNum) -> bool {
        let leaf_index = vpn.leaf_index();
        let slot = vpn.leaf_slot();
        match self
            .leaves
            .binary_search_by_key(&leaf_index, |l| l.leaf_index)
        {
            Ok(i) => {
                if self.leaves[i].leaf.get(slot).is_present() {
                    self.leaves[i].leaf.hot_bits().set(slot);
                    true
                } else {
                    false
                }
            }
            Err(_) => false,
        }
    }

    /// Number of user-hinted hot pages.
    pub fn hot_hint_count(&self) -> u64 {
        self.leaves
            .iter()
            .map(|l| u64::from(l.leaf.hot_bits().count()))
            .sum()
    }
}
