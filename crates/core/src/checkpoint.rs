//! CXLfork checkpoint: copy process state to CXL memory and rebase it.
//!
//! Following §4.1, the checkpoint distinguishes *private* state — the task
//! structure, the memory descriptor (VMA tree + page tables), CPU
//! registers, and the process's private pages **including clean private
//! file mappings** — from *global* state (open files, namespaces). Private
//! state is copied to CXL memory as-is with streaming non-temporal stores
//! and then **rebased**: every pointer in the copied structures is
//! rewritten to a machine-independent CXL device page number, so any OS
//! instance in the cluster can attach and dereference it. Global state is
//! lightly serialized (paths and permissions only).
//!
//! The checkpointed page-table leaves preserve the parent's Accessed and
//! Dirty bits (harvested from the runtime A-bit bitmap), which later
//! drive dirty-page prefetch (§4.2.1) and hybrid tiering (§4.3).

use std::sync::Arc;

use cxl_mem::{CxlPageId, RegionId, PAGE_SIZE};
use node_os::addr::{PhysAddr, Pid, VirtPageNum};
use node_os::mm::{BackingPage, BackingSource, CxlBacking};
use node_os::page_table::PtLeaf;
use node_os::process::{FileDescriptor, Registers};
use node_os::pte::{Pte, PteFlags};
use node_os::vma::VmaBlock;
use node_os::Node;
use rfork::wire::{ImageReader, ImageWriter};
use rfork::{CheckpointMeta, RforkError};
use simclock::SimDuration;

/// Magic of the lightly-serialized global-state record.
pub const GLOBAL_STATE_MAGIC: u32 = 0xCF0C_0001;

/// Runs one device operation with bounded backoff on transient link
/// errors, accumulating the retry count and the (virtual) backoff delay
/// for the caller's cost model, and typing the give-up error as
/// [`RforkError::RetriesExhausted`].
pub(crate) fn dev_retry<T>(
    op: &'static str,
    retries: &mut u64,
    backoff: &mut SimDuration,
    f: impl FnMut() -> Result<T, cxl_mem::CxlError>,
) -> Result<T, RforkError> {
    let policy = cxl_fault::BackoffPolicy::default();
    let (res, report) = cxl_fault::with_backoff(&policy, f);
    *retries += u64::from(report.retries);
    *backoff = backoff.saturating_add(report.backoff);
    res.map_err(|e| {
        if e.is_transient() {
            RforkError::RetriesExhausted {
                op,
                attempts: report.attempts,
                last: e,
            }
        } else {
            RforkError::from(e)
        }
    })
}

/// The task's private state, checkpointed as-is (a bitwise copy in CXL
/// memory; no serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskImage {
    /// Command name.
    pub comm: String,
    /// CPU context, restored verbatim.
    pub regs: Registers,
    /// Checkpointed PID namespace (§4.1: one of the two namespace kinds
    /// CXLfork checkpoints).
    pub pid_ns: u64,
    /// Checkpointed mount namespace.
    pub mount_ns: u64,
}

/// One checkpointed page-table leaf resident in CXL memory.
#[derive(Debug, Clone)]
pub struct CkptLeaf {
    /// Position in the page table (`vpn >> 9`).
    pub leaf_index: u64,
    /// The rebased, immutable leaf. Its runtime A bits and hot-hint bits
    /// stay writable for working-set monitoring (§4.3).
    pub leaf: Arc<PtLeaf>,
    /// The device page physically holding the leaf.
    pub backing: CxlPageId,
}

/// A CXLfork checkpoint: rebased OS structures plus process pages, all
/// resident in one CXL region.
#[derive(Debug)]
pub struct CxlForkCheckpoint {
    pub(crate) meta: CheckpointMeta,
    /// The device region holding every checkpoint *metadata* page (and,
    /// without a store, the data pages too).
    pub region: RegionId,
    /// The content-addressed store image holding the data pages, when
    /// the mechanism was built with [`crate::CxlFork::with_store`].
    pub image: Option<cxl_store::ImageId>,
    /// Private task state.
    pub task: TaskImage,
    /// Lightly-serialized global state (fd paths + permissions).
    pub(crate) global_bytes: Vec<u8>,
    /// Checkpointed VMA-tree leaf blocks, in address order.
    pub vma_blocks: Vec<(Arc<VmaBlock>, CxlPageId)>,
    /// Checkpointed page-table leaves, in address order.
    pub leaves: Vec<CkptLeaf>,
    /// Prebuilt vpn → device-page map for pull-based restores.
    pub(crate) backing: Arc<CxlBacking>,
    /// Checkpointed data pages.
    pub data_pages: u64,
    /// Pages whose checkpointed D bit is set.
    pub dirty_pages: u64,
    /// Pages whose checkpointed A bit is set.
    pub accessed_pages: u64,
}

impl CxlForkCheckpoint {
    /// Checkpoint metadata.
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// Iterates `(vpn, pte)` over every checkpointed page entry.
    pub fn iter_pages(&self) -> impl Iterator<Item = (VirtPageNum, Pte)> + '_ {
        self.leaves.iter().flat_map(|l| {
            l.leaf
                .iter_populated()
                .map(move |(slot, pte)| (VirtPageNum((l.leaf_index << 9) | slot as u64), pte))
        })
    }
}

/// Encodes the global state (open fds) for light serialization.
pub(crate) fn encode_global_state(fds: &[FileDescriptor]) -> Result<Vec<u8>, RforkError> {
    let mut w = ImageWriter::new(GLOBAL_STATE_MAGIC);
    w.put_u32(fds.len() as u32);
    for fd in fds {
        w.put_str(&fd.path)?;
        w.put_u64(fd.offset);
        w.put_bool(fd.writable);
    }
    Ok(w.into_bytes())
}

/// Decodes the global-state record.
pub(crate) fn decode_global_state(bytes: &[u8]) -> Result<Vec<FileDescriptor>, RforkError> {
    let mut r = ImageReader::new(bytes, GLOBAL_STATE_MAGIC)?;
    let n = r.get_u32()? as usize;
    let mut fds = Vec::with_capacity(n);
    for _ in 0..n {
        fds.push(FileDescriptor {
            path: r.get_str()?.to_owned(),
            offset: r.get_u64()?,
            writable: r.get_bool()?,
        });
    }
    Ok(fds)
}

/// Aborts a pending store image if the checkpoint fails before
/// publishing it, mirroring what the staged-region guard does for the
/// metadata region.
struct ImageGuard<'s> {
    store: &'s cxl_store::Store,
    image: cxl_store::ImageId,
    armed: bool,
}

impl ImageGuard<'_> {
    /// Publishes the image (catalog entry referencing `meta_region`) and
    /// disarms the rollback. Returns the image plus the journal pages
    /// the commit record cost (zero for a volatile store).
    fn commit(mut self, meta_region: RegionId) -> (cxl_store::ImageId, u64) {
        self.armed = false;
        let journal_pages = self
            .store
            .commit_image(self.image, meta_region)
            .expect("image stays pending until the guard commits it");
        (self.image, journal_pages)
    }
}

impl Drop for ImageGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // The image may already be gone if the store itself failed
            // mid-intern; rollback is best-effort either way.
            let _ = self.store.abort_image(self.image);
        }
    }
}

/// Takes a CXLfork checkpoint of `pid` on `node`.
///
/// Returns the checkpoint and charges the modelled cost to the node's
/// clock. With a store, data pages are interned (content-addressed,
/// deduped across images) instead of written privately.
pub(crate) fn take_checkpoint(
    node: &mut Node,
    pid: Pid,
    checkpoint_seq: u64,
    store: Option<&cxl_store::Store>,
    config: &crate::CxlForkConfig,
) -> Result<CxlForkCheckpoint, RforkError> {
    let node_id = node.id();
    let model = node.model().clone();
    let parallelism = config.parallelism;

    // ---- Gather source state (read-only walk). ----
    struct SourceLeaf {
        leaf_index: u64,
        harvested: PtLeaf,
    }
    let (task, fds, src_leaves, vma_block_images, footprint_pages) = {
        let process = node.process(pid)?;
        // §4.1: CXLfork does not support shared anonymous memory.
        if let Some(vma) = process
            .mm
            .vmas
            .iter()
            .find(|v| v.kind.is_shared_anonymous())
        {
            return Err(RforkError::Unsupported(format!(
                "shared anonymous mapping at vpn{:#x} (§4.1)",
                vma.start
            )));
        }
        let task = TaskImage {
            comm: process.task.comm.clone(),
            regs: process.task.regs,
            pid_ns: process.task.ns.pid_ns,
            mount_ns: process.task.ns.mount_ns,
        };
        let fds: Vec<FileDescriptor> = process.task.fds.iter().map(|(_, d)| d.clone()).collect();

        let mut src_leaves = Vec::new();
        let mut footprint_pages = 0u64;
        for (leaf_index, slot) in process.mm.page_table.leaves() {
            // Fold the runtime A bits into entry flags: the checkpoint
            // records the parent's access pattern (§4.1).
            let harvested = match slot {
                node_os::page_table::LeafSlot::Local(l) => l.harvested(),
                node_os::page_table::LeafSlot::Attached(a) => a.leaf.harvested(),
            };
            footprint_pages += harvested.present_count() as u64;
            src_leaves.push(SourceLeaf {
                leaf_index,
                harvested,
            });
        }

        // VMA tree leaves: copy the blocks as-is.
        let vma_block_images: Vec<VmaBlock> = process
            .mm
            .vmas
            .blocks()
            .iter()
            .map(|slot| match slot {
                node_os::vma::VmaBlockSlot::Local(b) => b.clone(),
                node_os::vma::VmaBlockSlot::Attached { block, .. } => (**block).clone(),
            })
            .filter(|b| !b.is_empty())
            .collect();
        (task, fds, src_leaves, vma_block_images, footprint_pages)
    };

    // ---- Copy pages + metadata into a fresh CXL *staging* region. ----
    // Two-phase commit: the region stays uncommitted (invisible to
    // restore) until every page is written, then `commit_region`
    // publishes it atomically — a crash mid-checkpoint can never leave a
    // half-visible checkpoint, only an orphaned staging region for the
    // lease GC. The guard additionally destroys the region if anything
    // below fails on this (live) node, so a failed checkpoint never
    // leaks device pages.
    let device = Arc::clone(node.device());
    let guard = device.create_region_staged_guarded(
        &format!("cxlfork:{}#{}", task.comm, checkpoint_seq),
        node_id,
        checkpoint_seq,
    );
    let region = guard.id();

    // ---- Enumerate every page to copy, in leaf/slot order, so the
    // contents move in one batched read + alloc + write per checkpoint:
    // the fabric round-trip is paid once per batch and the remaining
    // pages pipeline behind it (§4.1 streaming non-temporal copy).
    struct PageEntry {
        leaf_pos: usize,
        slot: usize,
        vpn: VirtPageNum,
        pte: Pte,
    }
    enum PageSource {
        Local(cxl_mem::PageData),
        Device(CxlPageId),
    }
    let mut entries: Vec<PageEntry> = Vec::new();
    let mut sources: Vec<PageSource> = Vec::new();
    for (leaf_pos, src) in src_leaves.iter().enumerate() {
        for (slot, pte) in src.harvested.iter_populated() {
            if !pte.is_present() {
                continue; // armed entries re-arm against the new checkpoint via backing
            }
            let vpn = VirtPageNum((src.leaf_index << 9) | slot as u64);
            sources.push(match pte.target().expect("present pte") {
                PhysAddr::Local(pfn) => PageSource::Local(node.frames().data(pfn).clone()),
                PhysAddr::Cxl(page) => PageSource::Device(page),
            });
            entries.push(PageEntry {
                leaf_pos,
                slot,
                vpn,
                pte,
            });
        }
    }

    let mut retries = 0u64;
    let mut retry_backoff = SimDuration::ZERO;

    // One batched read covers every source page still resident on the
    // device (e.g. re-checkpointing a restored process).
    let dev_srcs: Vec<CxlPageId> = sources
        .iter()
        .filter_map(|s| match s {
            PageSource::Device(p) => Some(*p),
            PageSource::Local(_) => None,
        })
        .collect();
    let dev_data = if dev_srcs.is_empty() {
        Vec::new()
    } else {
        dev_retry("checkpoint_read", &mut retries, &mut retry_backoff, || {
            device.read_pages(&dev_srcs, node_id)
        })?
    };

    // Materialize the content of every page to checkpoint (local frames
    // as-is, device-resident sources from the batched read), in
    // leaf/slot order.
    let mut dev_iter = dev_data.into_iter();
    let datas: Vec<cxl_mem::PageData> = sources
        .into_iter()
        .map(|src| match src {
            PageSource::Local(d) => d,
            PageSource::Device(_) => dev_iter.next().expect("one read result per device source"),
        })
        .collect();

    // Data pages land either in the content-addressed store (deduped
    // across images, zero pages elided from the transfer) or privately
    // in the staging region. Either way the batch ops are built once and
    // reused verbatim across transient retry attempts, so each attempt
    // is exactly one batch op plus the policy's backoff — never a
    // rebuilt partial; `intern_pages` is additionally all-or-nothing per
    // attempt, so retries never double-count references.
    let mut image_guard: Option<ImageGuard<'_>> = None;
    let (dsts, interned) = if let Some(store) = store {
        let image = store.begin_image(
            &format!("cxlfork:{}#{}", task.comm, checkpoint_seq),
            node_id,
            checkpoint_seq,
            node.now(),
        );
        image_guard = Some(ImageGuard {
            store,
            image,
            armed: true,
        });
        let outcome = dev_retry(
            "checkpoint_intern",
            &mut retries,
            &mut retry_backoff,
            || store.intern_pages(image, &datas, node_id),
        )?;
        (outcome.pages.clone(), Some(outcome))
    } else {
        // With stream parallelism, stripe the data pages across shard
        // banks so the pipelined transfer has real per-bank work; at
        // the default parallelism this IS `alloc_batch`, page ids
        // included.
        let dsts = dev_retry("checkpoint_alloc", &mut retries, &mut retry_backoff, || {
            device.alloc_batch_striped(region, entries.len() as u64, parallelism)
        })?;
        let pairs: Vec<(CxlPageId, cxl_mem::PageData)> = dsts.iter().copied().zip(datas).collect();
        if !pairs.is_empty() {
            dev_retry("checkpoint_copy", &mut retries, &mut retry_backoff, || {
                device.write_pages(&pairs, node_id)
            })?;
        }
        (dsts, None)
    };

    // REBASE: rewrite every copied entry to its machine-independent CXL
    // page number, read-only + CoW + checkpoint-pinned, keeping the
    // FILE / ACCESSED / DIRTY record bits.
    let mut backing = CxlBacking::new();
    let data_pages = entries.len() as u64;
    let mut dirty_pages = 0u64;
    let mut accessed_pages = 0u64;
    let mut rebased_pointers = 0u64;
    let mut ckpt_leaves: Vec<PtLeaf> = (0..src_leaves.len()).map(|_| PtLeaf::new()).collect();
    for (e, dst) in entries.iter().zip(dsts.iter().copied()) {
        let mut flags = PteFlags::PRESENT | PteFlags::COW | PteFlags::CKPT_PIN;
        if e.pte.flags().contains(PteFlags::FILE) {
            flags |= PteFlags::FILE;
        }
        if e.pte.is_accessed() {
            flags |= PteFlags::ACCESSED;
            accessed_pages += 1;
        }
        if e.pte.is_dirty() {
            flags |= PteFlags::DIRTY;
            dirty_pages += 1;
        }
        ckpt_leaves[e.leaf_pos].set(e.slot, Pte::mapped(PhysAddr::Cxl(dst), flags));
        rebased_pointers += 1;

        backing.insert(
            e.vpn,
            BackingPage {
                source: BackingSource::Device(dst),
                accessed: e.pte.is_accessed(),
                dirty: e.pte.is_dirty(),
                file_backed: e.pte.flags().contains(PteFlags::FILE),
            },
        );
    }

    // One device page physically stores each populated 512-entry leaf.
    let populated: Vec<(u64, PtLeaf)> = src_leaves
        .iter()
        .zip(ckpt_leaves)
        .filter(|(_, l)| l.populated_count() > 0)
        .map(|(src, l)| (src.leaf_index, l))
        .collect();
    let leaf_backings = dev_retry("checkpoint_alloc", &mut retries, &mut retry_backoff, || {
        device.alloc_batch(region, populated.len() as u64)
    })?;
    let leaves: Vec<CkptLeaf> = populated
        .into_iter()
        .zip(leaf_backings)
        .map(|((leaf_index, leaf), backing)| CkptLeaf {
            leaf_index,
            leaf: Arc::new(leaf),
            backing,
        })
        .collect();

    // VMA blocks: one device page each, plus a rebased pointer per VMA.
    let vma_backings = dev_retry("checkpoint_alloc", &mut retries, &mut retry_backoff, || {
        device.alloc_batch(region, vma_block_images.len() as u64)
    })?;
    let mut vma_count = 0usize;
    let vma_blocks: Vec<(Arc<VmaBlock>, CxlPageId)> = vma_block_images
        .into_iter()
        .zip(vma_backings)
        .map(|(block, backing_page)| {
            vma_count += block.len();
            rebased_pointers += block.len() as u64;
            (Arc::new(block), backing_page)
        })
        .collect();

    // Task image: one device page.
    let task_backing = dev_retry("checkpoint_alloc", &mut retries, &mut retry_backoff, || {
        device.alloc_batch(region, 1)
    })?;

    // Global state: light serialization of fd paths + permissions.
    let global_bytes = encode_global_state(&fds)?;

    // ---- Cost model (§4.1, §8): one pipelined streaming transfer for
    // every checkpointed page (data + leaf + VMA + task), plus rebase,
    // plus whatever backoff the transient-fault retries accrued. A
    // one-page checkpoint costs exactly the scalar write path.
    // With a store, only the pages whose content actually crossed the
    // fabric count (dedup hits and elided zero pages moved nothing).
    // Durable stores additionally journal each intern batch; those
    // records ride the same batched write path and are charged here.
    let data_transfer = interned.as_ref().map_or(data_pages, |o| o.written);
    let journal_transfer = interned.as_ref().map_or(0, |o| o.journal_pages);
    let copied_pages =
        data_transfer + journal_transfer + leaves.len() as u64 + vma_blocks.len() as u64 + 1;
    let copied_bytes = copied_pages * PAGE_SIZE;
    // With stream parallelism, cost the transfer as overlapped per-shard
    // pipelines over the *actual* pages written (data + leaf + VMA +
    // task backings, partitioned by bank); journal records are an
    // append-only log on one bank and stay serial. At the default
    // parallelism the serial batched write is charged unchanged. The
    // same per-bank partition feeds the fabric, which also needs it
    // when the transfer itself runs serially.
    let stream_partition: Option<Vec<u64>> =
        (parallelism > 1 || device.fabric_armed()).then(|| {
            let mut transfer: Vec<CxlPageId> = match interned.as_ref() {
                Some(o) => o.written_pages.clone(),
                None => dsts.clone(),
            };
            transfer.extend(leaves.iter().map(|l| l.backing));
            transfer.extend(vma_blocks.iter().map(|(_, backing)| *backing));
            transfer.extend(task_backing.iter().copied());
            device.shard_partition(&transfer)
        });
    // An attached fabric charges the whole transfer — journal records
    // ride bank 0's port with the append-only log — and answers with
    // the queueing delay this checkpoint suffers under contention.
    // Detached (the default) this is exactly zero.
    let fabric_wait = match &stream_partition {
        Some(counts) if device.fabric_armed() => {
            let mut charged = counts.clone();
            if let Some(slot) = charged.first_mut() {
                *slot += journal_transfer;
            }
            device.fabric_charge(node.now(), &charged)
        }
        _ => SimDuration::ZERO,
    };
    let copy_cost = match &stream_partition {
        Some(counts) if parallelism > 1 => {
            model
                .pipeline(parallelism)
                .with_queue_delay(fabric_wait)
                .batch_write(counts, interned.is_some())
                + model.cxl_batch_write(journal_transfer)
        }
        _ => model.cxl_batch_write(copied_pages) + fabric_wait,
    };
    let rebase_cost = SimDuration::from_nanos(model.rebase_pointer_ns) * rebased_pointers;
    let serialize_cost = model.serialize(global_bytes.len() as u64);
    let cost = copy_cost + rebase_cost + serialize_cost + retry_backoff;
    let t0 = node.now();
    node.clock_mut().advance(cost);
    node.counters_note("cxlfork_checkpoint");
    if retries > 0 {
        node.counters_add("cxl_transient_retry", retries);
    }

    let region_usage = device.region_usage(region)?;
    // Phase two: every page is in place — publish atomically, then
    // disarm the cleanup guards (region first, then the store image,
    // which records the committed region as its metadata region).
    device.commit_region(region)?;
    let region = guard.commit();
    let mut cost = cost;
    let mut commit_cost = SimDuration::ZERO;
    let image = match image_guard {
        Some(g) => {
            let (image, commit_journal_pages) = g.commit(region);
            // The commit marker is itself a journaled write (possibly
            // with a compaction snapshot behind it); it lands strictly
            // after the publish, so its cost is charged here.
            if commit_journal_pages > 0 {
                commit_cost = model.cxl_batch_write(commit_journal_pages);
                node.clock_mut().advance(commit_cost);
                cost += commit_cost;
            }
            Some(image)
        }
        None => None,
    };

    if cxl_telemetry::is_armed() {
        // The phase children partition [t0, t0+cost] contiguously, so
        // their durations sum exactly to the parent span (Fig. 7a) —
        // including the post-publish journal commit, which a durable
        // store charges after the region is live; recording the span
        // here (after the commit) is what keeps `checkpoint.latency`
        // and the closed span reconciled with the `PorterReport` e2e
        // time.
        let track = node_id.0;
        cxl_telemetry::span_open(
            "core.checkpoint",
            track,
            t0,
            &[("pages", data_pages), ("bytes", copied_bytes)],
        );
        let mut cursor = t0;
        let mut phases = vec![
            ("checkpoint.copy_pages", copy_cost),
            ("checkpoint.rebase", rebase_cost),
            ("checkpoint.serialize", serialize_cost),
            ("checkpoint.retry_backoff", retry_backoff),
        ];
        if commit_cost > SimDuration::ZERO {
            phases.push(("checkpoint.commit_journal", commit_cost));
        }
        for (phase, d) in phases {
            let end = cursor + d;
            cxl_telemetry::record_span(&format!("core.{phase}"), track, cursor, end, &[]);
            cxl_telemetry::counter_add("core", &format!("phase.{phase}"), None, d.as_nanos());
            if phase == "checkpoint.copy_pages" {
                if let Some(counts) = stream_partition.as_ref().filter(|_| parallelism > 1) {
                    // Per-stream children partition the copy phase: each
                    // stream starts with the phase and runs its own
                    // critical path (clamped to the phase — the modelled
                    // cost may be the serial floor).
                    let pipeline = model.pipeline(parallelism);
                    for (i, load) in pipeline.stream_loads(counts).iter().enumerate() {
                        let stream_end =
                            cursor + pipeline.stream_write_cost(*load, interned.is_some()).min(d);
                        cxl_telemetry::record_span(
                            "core.checkpoint.copy_pages.stream",
                            track,
                            cursor,
                            stream_end,
                            &[("stream", i as u64), ("pages", *load)],
                        );
                    }
                }
            }
            cursor = end;
        }
        cxl_telemetry::span_close(track, cursor);
        cxl_telemetry::timer_record("core", "checkpoint.latency", Some(track), cost);
    }
    Ok(CxlForkCheckpoint {
        meta: CheckpointMeta {
            comm: task.comm.clone(),
            footprint_pages,
            // Pages this checkpoint added to the device: its metadata
            // region plus (with a store) the freshly interned data pages
            // — shared content was already resident.
            cxl_pages: region_usage.pages + interned.as_ref().map_or(0, |o| o.fresh),
            created_at: node.now(),
            checkpoint_cost: cost,
            vma_count,
        },
        region,
        image,
        task,
        global_bytes,
        vma_blocks,
        leaves,
        backing: Arc::new(backing),
        data_pages,
        dirty_pages,
        accessed_pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_state_roundtrip() {
        let fds = vec![
            FileDescriptor {
                path: "/a".into(),
                offset: 1,
                writable: true,
            },
            FileDescriptor {
                path: "/b/c".into(),
                offset: 0,
                writable: false,
            },
        ];
        let bytes = encode_global_state(&fds).unwrap();
        assert_eq!(decode_global_state(&bytes).unwrap(), fds);
    }

    #[test]
    fn corrupt_global_state_rejected() {
        let bytes = encode_global_state(&[]).unwrap();
        assert!(decode_global_state(&bytes[..3]).is_err());
    }
}
