//! CXLfork restore: attach checkpointed state in (almost) constant time.
//!
//! The restore path implements §4.2:
//!
//! * a new process is created on the target node (in practice inside a
//!   ghost container, §5) and its *reconfigurable* state — network
//!   namespace, cgroup — is inherited from the restore-side caller;
//! * **global state is redone**: fds are reopened from their checkpointed
//!   paths, the mount and PID namespaces are restored from the checkpoint;
//! * **private state is attached, not copied**: only the upper levels of
//!   the page-table and VMA trees are allocated locally; the checkpointed
//!   leaves are linked in by CXL page number (§4.2.1). No data page is
//!   copied — the process resumes instantly and loads hit CXL directly,
//!   while stores take migrate-on-write CoW faults.
//!
//! The three tiering policies (§4.3) shape what "attach" means:
//!
//! * **MoW** attaches every leaf and (optionally) prefetches the
//!   checkpoint-dirty pages into local memory, since >95 % of pages the
//!   parent wrote are written again by children (§4.2.1);
//! * **MoA** attaches nothing: the page table starts empty and every first
//!   touch pulls the page from CXL;
//! * **Hybrid** materializes per-policy local leaf copies in which A-set
//!   (or user-hinted hot) pages are *armed* to migrate on first access and
//!   the rest stay mapped read-only in CXL.

use node_os::addr::{PhysAddr, Pid, VirtPageNum};
use node_os::mm::CxlTierPolicy;
use node_os::page_table::{AttachedLeaf, PtLeaf};
use node_os::process::FdTable;
use node_os::pte::{Pte, PteFlags};
use node_os::Node;
use rfork::{RestoreOptions, Restored, RforkError, TierPolicy};
use simclock::SimDuration;

use crate::checkpoint::{decode_global_state, dev_retry, CxlForkCheckpoint};

/// Restores a process from `checkpoint` onto `node` with `options`,
/// charging the cost to the node's clock.
pub(crate) fn restore(
    checkpoint: &CxlForkCheckpoint,
    node: &mut Node,
    options: RestoreOptions,
    config: &crate::CxlForkConfig,
) -> Result<Restored, RforkError> {
    let model = node.model().clone();
    let device = std::sync::Arc::clone(node.device());

    // Two-phase-commit gate: an *uncommitted* region is a torn
    // checkpoint whose writer died mid-copy — it must never be
    // restorable, no matter how plausible its contents look.
    match device.region_committed(checkpoint.region) {
        Some(true) => {}
        Some(false) => {
            return Err(RforkError::BadImage(format!(
                "checkpoint region {} is an unpublished staging region",
                checkpoint.region
            )))
        }
        None => {
            return Err(RforkError::BadImage(format!(
                "checkpoint region {} no longer exists",
                checkpoint.region
            )))
        }
    }

    let mut cost = SimDuration::from_nanos(model.process_create_ns);

    // ---- Global state: redo operations from the light serialization. ----
    let fds = decode_global_state(&checkpoint.global_bytes)?;
    cost += model.deserialize(checkpoint.global_bytes.len() as u64);
    cost += SimDuration::from_nanos(model.file_reopen_ns) * fds.len() as u64;

    let pid = node.spawn(&checkpoint.task.comm)?;
    {
        let process = node.process_mut(pid)?;
        process.task.regs = checkpoint.task.regs;
        process.task.ns.pid_ns = checkpoint.task.pid_ns;
        process.task.ns.mount_ns = checkpoint.task.mount_ns;
        // net_ns / cgroup / sched stay inherited from the caller (§4.2).
        let mut table = FdTable::new();
        for fd in &fds {
            table.open(fd.clone());
        }
        process.task.fds = table;
    }

    match attach_state(checkpoint, node, options, pid, cost, config) {
        Ok(restored) => Ok(restored),
        Err(e) => {
            // Roll back the half-restored process: a failed restore
            // (exhausted device retries, poisoned checkpoint page, frame
            // exhaustion) must not leak a zombie address space.
            let _ = node.kill(pid);
            Err(e)
        }
    }
}

/// Attaches VMA/page-table state and runs prefetch — everything after
/// the process shell exists. Split out so [`restore`] can roll the
/// process back on any failure.
fn attach_state(
    checkpoint: &CxlForkCheckpoint,
    node: &mut Node,
    options: RestoreOptions,
    pid: Pid,
    mut cost: SimDuration,
    config: &crate::CxlForkConfig,
) -> Result<Restored, RforkError> {
    let parallelism = config.parallelism;
    let node_id = node.id();
    let model = node.model().clone();
    let device = std::sync::Arc::clone(node.device());
    let mut retries = 0u64;
    let mut retry_backoff = SimDuration::ZERO;
    // Cost accrued so far is the global-state redo (process create +
    // deserialize + fd reopen); everything added below is attach, then
    // prefetch. The splits feed the Fig. 7a phase breakdown.
    let global_redo_cost = cost;

    // ---- VMA tree: attach the checkpointed leaf blocks. ----
    cost += SimDuration::from_nanos(model.vma_leaf_attach_ns) * checkpoint.vma_blocks.len() as u64;
    node.with_process_ctx(pid, |p, _| {
        for (block, backing) in &checkpoint.vma_blocks {
            p.mm.vmas
                .attach_block(std::sync::Arc::clone(block), *backing);
        }
    })?;

    // ---- Page table: policy-dependent attach. ----
    match options.policy {
        TierPolicy::MigrateOnWrite => {
            let mut dirs_created = 0u64;
            node.with_process_ctx(pid, |p, _| {
                for leaf in &checkpoint.leaves {
                    dirs_created += p.mm.page_table.attach_leaf(
                        leaf.leaf_index,
                        AttachedLeaf {
                            leaf: std::sync::Arc::clone(&leaf.leaf),
                            backing: leaf.backing,
                        },
                    );
                }
                p.mm.set_policy(CxlTierPolicy::MigrateOnWrite);
            })?;
            cost +=
                SimDuration::from_nanos(model.pt_leaf_attach_ns) * checkpoint.leaves.len() as u64;
            cost += SimDuration::from_nanos(model.pt_upper_alloc_ns) * dirs_created;
        }
        TierPolicy::MigrateOnAccess => {
            // No leaves attached, no entries populated: every first access
            // takes a CXL pull fault (§4.3).
            node.with_process_ctx(pid, |p, _| {
                p.mm.set_policy(CxlTierPolicy::MigrateOnAccess);
                p.mm.set_backing(std::sync::Arc::clone(&checkpoint.backing));
            })?;
        }
        TierPolicy::Hybrid => {
            // Materialize local leaves: A-set (or user-hinted) entries are
            // armed fetch-on-access — or, under the §4.3 alternative the
            // paper evaluated and rejected, copied to local memory right
            // now — and the rest stay mapped in CXL.
            let mut dirs_created = 0u64;
            let mut install: Vec<(u64, PtLeaf)> = Vec::with_capacity(checkpoint.leaves.len());
            // Hot entries to sync-prefetch: (leaf position in `install`,
            // slot, pte, device page). Deferred so the whole hot set moves
            // in one batched device read.
            let mut hot_fills: Vec<(usize, usize, Pte, cxl_mem::CxlPageId)> = Vec::new();
            for ckpt_leaf in &checkpoint.leaves {
                let mut local = PtLeaf::new();
                for (slot, pte) in ckpt_leaf.leaf.iter_populated() {
                    let hot = pte.is_accessed() || ckpt_leaf.leaf.hot_bits().get(slot);
                    let target = pte.target().expect("checkpoint entries are mapped");
                    if hot && options.sync_hot_prefetch {
                        // Copy the hot page to local memory during the
                        // restore itself (inflates restore latency).
                        let PhysAddr::Cxl(page) = target else {
                            unreachable!("checkpoint targets are CXL pages")
                        };
                        hot_fills.push((install.len(), slot, pte, page));
                        continue;
                    }
                    let new = if hot {
                        Pte::armed(
                            target,
                            pte.flags()
                                .without(PteFlags::PRESENT | PteFlags::CKPT_PIN)
                                .union(PteFlags::FETCH_ON_ACCESS),
                        )
                    } else {
                        pte.without_flags(PteFlags::CKPT_PIN)
                    };
                    local.set(slot, new);
                }
                install.push((ckpt_leaf.leaf_index, local));
            }
            // One pipelined batch read for the whole hot set, then one
            // frame-allocation sweep; a batch of one costs exactly the
            // old per-page prefetch.
            if !hot_fills.is_empty() {
                let hot_pages: Vec<cxl_mem::CxlPageId> =
                    hot_fills.iter().map(|(_, _, _, page)| *page).collect();
                let hot_data =
                    dev_retry("restore_prefetch", &mut retries, &mut retry_backoff, || {
                        device.read_pages(&hot_pages, node_id)
                    })?;
                let pfns = node
                    .with_process_ctx(pid, |p, ctx| {
                        hot_data
                            .into_iter()
                            .map(|data| {
                                let pfn = ctx.frames.alloc(data)?;
                                p.mm.note_private_page();
                                Ok(pfn)
                            })
                            .collect::<Result<Vec<_>, node_os::OsError>>()
                    })
                    .map_err(RforkError::from)?
                    .map_err(RforkError::from)?;
                for ((leaf_pos, slot, pte, _), pfn) in hot_fills.iter().zip(pfns) {
                    install[*leaf_pos].1.set(
                        *slot,
                        pte.without_flags(PteFlags::CKPT_PIN)
                            .retarget(PhysAddr::Local(pfn)),
                    );
                }
                // With stream parallelism, the hot set splits across
                // shard banks and the batch read costs the bottleneck
                // stream's critical path; serial (the default) is the
                // single-stream batched read, unchanged. An attached
                // fabric adds the queueing delay this read finds on its
                // ports (exactly zero detached or idle).
                let fabric_wait = device.fabric_charge_pages(node.now(), &hot_pages);
                cost += if parallelism > 1 {
                    model
                        .pipeline(parallelism)
                        .with_queue_delay(fabric_wait)
                        .batch_read(&device.shard_partition(&hot_pages))
                } else {
                    model.prefetch_pages(hot_fills.len() as u64) + fabric_wait
                };
            }
            node.with_process_ctx(pid, |p, _| {
                for (leaf_index, local) in install {
                    dirs_created += p.mm.page_table.install_local_leaf(leaf_index, local);
                }
                p.mm.set_policy(CxlTierPolicy::Hybrid);
            })?;
            // Each materialized leaf costs one CXL leaf read.
            cost += model.cxl_copy(checkpoint.leaves.len() as u64 * cxl_mem::PAGE_SIZE);
            cost += SimDuration::from_nanos(model.pt_upper_alloc_ns) * dirs_created;
        }
    }

    let attach_cost = cost - global_redo_cost;

    // ---- Optional dirty-page prefetch (§4.2.1). ----
    let mut prefetched = 0u64;
    if options.prefetch_dirty && options.policy != TierPolicy::MigrateOnAccess {
        let dirty: Vec<(VirtPageNum, cxl_mem::CxlPageId)> = checkpoint
            .iter_pages()
            .filter(|(_, pte)| pte.is_dirty())
            .map(|(vpn, pte)| {
                let PhysAddr::Cxl(page) = pte.target().expect("checkpoint entries are mapped")
                else {
                    unreachable!("checkpoint targets are CXL pages")
                };
                (vpn, page)
            })
            .collect();
        if !dirty.is_empty() {
            // One batched device read for the whole dirty set, then one
            // fill sweep installing the mappings. A single dirty page
            // costs exactly the old per-page path.
            let dirty_pages: Vec<cxl_mem::CxlPageId> = dirty.iter().map(|(_, p)| *p).collect();
            let data = dev_retry("restore_prefetch", &mut retries, &mut retry_backoff, || {
                device.read_pages(&dirty_pages, node_id)
            })?;
            let filled = node.with_process_ctx(pid, |p, ctx| {
                p.mm.fill_pages(
                    dirty.iter().map(|(vpn, _)| *vpn).zip(data),
                    PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::DIRTY,
                    ctx,
                )
            })?;
            let filled = match filled {
                Ok(f) => f,
                Err(e) => {
                    // Roll back the half-restored process (memory-
                    // constrained nodes can run out of frames
                    // mid-prefetch).
                    let _ = node.kill(pid);
                    return Err(RforkError::from(e));
                }
            };
            prefetched = filled.installed;
            // Pipelined prefetch costs the per-shard critical path of
            // the dirty set, clamped by the serial charge for the pages
            // actually installed (fill can skip already-present pages);
            // serial (the default) is unchanged. Fabric queueing delay
            // rides on top of either side of the clamp — contention
            // slows pipelined and serial prefetch alike.
            let fabric_wait = device.fabric_charge_pages(node.now(), &dirty_pages);
            cost += if parallelism > 1 {
                model
                    .pipeline(parallelism)
                    .with_queue_delay(fabric_wait)
                    .batch_read(&device.shard_partition(&dirty_pages))
                    .min(model.prefetch_pages(filled.installed) + fabric_wait)
            } else {
                model.prefetch_pages(filled.installed) + fabric_wait
            };
            // Installing a mapping may leaf-CoW an attached leaf: one
            // local copy of the 4 KiB leaf each.
            cost += model.cxl_copy(cxl_mem::PAGE_SIZE) * filled.leaf_cows;
        }
    }

    let prefetch_cost = cost - global_redo_cost - attach_cost;
    cost += retry_backoff;
    let t0 = node.now();
    node.clock_mut().advance(cost);
    node.counters_note("cxlfork_restore");
    if retries > 0 {
        node.counters_add("cxl_transient_retry", retries);
    }
    if prefetched > 0 {
        for _ in 0..prefetched {
            node.counters_note("cxlfork_prefetched_page");
        }
    }
    if cxl_telemetry::is_armed() {
        // Phase children partition [t0, t0+cost] contiguously, so their
        // durations sum exactly to the parent restore span.
        let track = node_id.0;
        cxl_telemetry::span_open(
            "core.restore",
            track,
            t0,
            &[("pages", checkpoint.data_pages), ("prefetched", prefetched)],
        );
        let mut cursor = t0;
        for (phase, d) in [
            ("restore.global_redo", global_redo_cost),
            ("restore.attach", attach_cost),
            ("restore.prefetch", prefetch_cost),
            ("restore.retry_backoff", retry_backoff),
        ] {
            let end = cursor + d;
            cxl_telemetry::record_span(&format!("core.{phase}"), track, cursor, end, &[]);
            cxl_telemetry::counter_add("core", &format!("phase.{phase}"), None, d.as_nanos());
            cursor = end;
        }
        cxl_telemetry::span_close(track, cursor);
        cxl_telemetry::timer_record("core", "restore.latency", Some(track), cost);
    }
    Ok(Restored {
        pid,
        restore_latency: cost,
    })
}
