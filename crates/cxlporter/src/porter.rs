//! The CXLporter autoscaler (§5).
//!
//! CXLporter scales function instances up and down across a
//! CXL-interconnected cluster using a pluggable remote-fork mechanism. It
//! performs the five operations §5 lists:
//!
//! 1. **appropriately-timed checkpoints** — a function is checkpointed
//!    after its 16th invocation (JIT warm-up), and its A/D bits are
//!    cleared after the first invocation so the checkpoint records the
//!    steady-state access pattern;
//! 2. **an object store of checkpoints** keyed by function;
//! 3. **a pool of ghost containers** — pre-provisioned empty containers
//!    (512 KiB each) that absorb the ≈130 ms container-creation cost;
//! 4. **tiering-policy control** — by default migrate-on-write; functions
//!    whose latency approaches their SLO are promoted to hybrid tiering,
//!    unless node memory exceeds the HighMem threshold (90 %);
//! 5. **dynamic keep-alive windows** — shrunk to 10 s under memory
//!    pressure so idle instances are reclaimed faster.

use std::collections::BTreeMap;
use std::sync::Arc;

use cxl_fabric::{DevicePool, PlacementPolicy};
use cxl_fault::{reclaim_dead, reclaim_orphans, CrashSchedule, LeaseTable, NodeCrash};
use cxl_mem::NodeId;
use cxl_sim::{ClusterMachines, EventQueue, NodePhase, Scheduled, Simulation};
use cxl_store::ImageId;
use node_os::addr::Pid;
use node_os::OsError;
use rfork::{RemoteFork, RestoreOptions, TierPolicy};
use simclock::stats::LatencyHistogram;
use simclock::{SimDuration, SimTime};
use trace_gen::{Invocation, TraceError};

use faas::{Catalog, Container, FunctionSpec};

use crate::cluster::Cluster;
use crate::store::ObjectStore;

/// Autoscaler configuration.
#[derive(Debug, Clone)]
pub struct PorterConfig {
    /// Checkpoint a function after this many invocations (§5: 16).
    pub checkpoint_after: u64,
    /// Keep-alive window with ample memory (minutes in production; the
    /// paper cites multi-minute windows).
    pub keep_alive: SimDuration,
    /// Keep-alive window under memory pressure (§5: 10 s).
    pub pressure_keep_alive: SimDuration,
    /// Local-memory utilization above which a node counts as pressured
    /// (§5/§6.2: HighMem = 90 %).
    pub high_mem_threshold: f64,
    /// Ghost containers pre-provisioned per node.
    pub ghost_pool_per_node: usize,
    /// Whether the mechanism restores into ghost containers (CXLfork and
    /// Mitosis do; CRIU "is not compatible with ghost containers", §6.2).
    pub use_ghost_containers: bool,
    /// Dynamically switch tiering policies based on SLO + memory
    /// pressure. When `false`, `static_policy` is always used.
    pub dynamic_tiering: bool,
    /// Policy used when `dynamic_tiering` is off.
    pub static_policy: TierPolicy,
    /// SLO multiplier over the observed warm latency.
    pub slo_factor: f64,
    /// Interval between A-bit maintenance resets.
    pub maintenance_interval: SimDuration,
    /// CXL device utilization above which stored checkpoints are
    /// reclaimed, coldest first (§5: CXLporter "is also responsible for
    /// reclaiming checkpoints under CXL memory pressure").
    pub cxl_reclaim_threshold: f64,
    /// Per-function keep-alive overrides (the paper leaves "different
    /// window sizes for different functions" as future work, §5; CXLfork's
    /// cheap restores make short windows safe for functions with fast
    /// cold paths).
    pub per_function_keep_alive: BTreeMap<String, SimDuration>,
    /// Liveness-lease duration: a node that stops renewing for this long
    /// is presumed dead and its checkpoint staging regions reclaimable.
    pub lease_ttl: SimDuration,
    /// Fraction of each function's runtime (library) pages backed by
    /// shared runtime images (see `faas::FunctionSpec::template_overlap`);
    /// applied when the porter resolves an invocation's spec. 0 keeps the
    /// historical fully-private layout.
    pub template_overlap: f64,
    /// Per-owner fairness quotas for multi-tenant traces. `None` (the
    /// default) disables quota metering entirely and reproduces the
    /// historical dispatch behaviour byte-for-byte.
    pub fairness: Option<FairnessConfig>,
    /// Image-placement policy across the fabric device pool (only
    /// meaningful once [`CxlPorter::with_device_pool`] attaches one).
    /// `Locality` pins every checkpoint of a function to one
    /// seed-derived device; `Stripe` round-robins consecutive
    /// checkpoints across the pool.
    pub placement: PlacementPolicy,
}

/// Per-owner dispatch quotas.
///
/// With fairness on, an arrival whose owner already has
/// `max_inflight_per_owner` instances busy is *deferred*: re-enqueued
/// at the earliest instant one of those instances frees up, up to
/// `max_deferrals` times, after which it is dropped (`fair_drops`).
/// This bounds how far a single bursty tenant can push everyone else's
/// queue-wait tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairnessConfig {
    /// Maximum concurrently busy instances per owner. A quota of 0
    /// drops every arrival of every owner (useful only in tests).
    pub max_inflight_per_owner: usize,
    /// Deferral budget per arrival before it is dropped.
    pub max_deferrals: u32,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig {
            max_inflight_per_owner: 8,
            max_deferrals: 16,
        }
    }
}

impl Default for PorterConfig {
    fn default() -> Self {
        PorterConfig {
            checkpoint_after: 16,
            keep_alive: SimDuration::from_secs(600),
            pressure_keep_alive: SimDuration::from_secs(10),
            high_mem_threshold: 0.9,
            ghost_pool_per_node: 10,
            use_ghost_containers: true,
            dynamic_tiering: true,
            static_policy: TierPolicy::MigrateOnWrite,
            slo_factor: 1.3,
            maintenance_interval: SimDuration::from_secs(10),
            cxl_reclaim_threshold: 0.9,
            per_function_keep_alive: BTreeMap::new(),
            lease_ttl: SimDuration::from_secs(30),
            template_overlap: 0.0,
            fairness: None,
            placement: PlacementPolicy::Locality,
        }
    }
}

impl PorterConfig {
    /// The full CXLporter configuration (dynamic tiering, ghosts).
    pub fn cxlfork_dynamic() -> Self {
        PorterConfig::default()
    }

    /// CXLfork with migrate-on-write pinned statically (the
    /// `CXLfork-MoW` variant of Fig. 10).
    pub fn cxlfork_static_mow() -> Self {
        PorterConfig {
            dynamic_tiering: false,
            static_policy: TierPolicy::MigrateOnWrite,
            ..PorterConfig::default()
        }
    }

    /// Mitosis-CXL: ghost containers, no tiering choice (the mechanism is
    /// inherently migrate-on-access).
    pub fn mitosis() -> Self {
        PorterConfig {
            dynamic_tiering: false,
            static_policy: TierPolicy::MigrateOnAccess,
            ..PorterConfig::default()
        }
    }

    /// CRIU-CXL: no ghost containers (checkpoints restore from the
    /// filesystem into freshly created containers, §6.2).
    pub fn criu() -> Self {
        PorterConfig {
            use_ghost_containers: false,
            dynamic_tiering: false,
            static_policy: TierPolicy::MigrateOnWrite,
            ..PorterConfig::default()
        }
    }
}

/// One live function instance.
#[derive(Debug)]
struct Instance {
    /// Stable identifier (vector positions shift under reclamation).
    id: u64,
    node: usize,
    container: Container,
    pid: Pid,
    function: String,
    /// Owning tenant of the invocation that created the instance.
    owner: u32,
    busy_until: SimTime,
    last_used: SimTime,
    invocations: u64,
    /// `true` if this instance was cold-deployed (checkpoint candidate).
    cold_started: bool,
    /// The store image the instance was restored from, if any. MoW/MoA
    /// restores keep mapping the image's device pages for the life of
    /// the process, so the porter shields these images from capacity
    /// eviction even after their lease holder crashes.
    image: Option<u64>,
}

/// Per-function latency tracking for SLO-driven tiering (§5: CXLporter
/// "monitors the tail and average latency of function instances").
#[derive(Debug, Default, Clone)]
struct FnStats {
    /// EWMA over all request latencies.
    ewma_ns: f64,
    /// EWMA over warm-instance latencies only — the signal that
    /// CXL-resident read-only data is slowing steady-state execution.
    ewma_warm_ns: f64,
    /// Best warm latency ever seen (the function's local-memory speed).
    min_warm_ns: u64,
    /// Warm invocations that individually exceeded the SLO.
    slo_breaches: u32,
}

impl FnStats {
    fn observe(&mut self, latency: SimDuration, warm: bool) {
        let ns = latency.as_nanos() as f64;
        self.ewma_ns = if self.ewma_ns == 0.0 {
            ns
        } else {
            0.8 * self.ewma_ns + 0.2 * ns
        };
        if warm {
            self.ewma_warm_ns = if self.ewma_warm_ns == 0.0 {
                ns
            } else {
                0.8 * self.ewma_warm_ns + 0.2 * ns
            };
            let ns = latency.as_nanos();
            if self.min_warm_ns == 0 || ns < self.min_warm_ns {
                self.min_warm_ns = ns;
            }
        }
    }

    /// Records SLO breaches after the minimum is known. Called with the
    /// same warm samples as [`FnStats::observe`].
    fn note_breach(&mut self, latency: SimDuration, slo_factor: f64) {
        if self.min_warm_ns > 0 && latency.as_nanos() as f64 > self.min_warm_ns as f64 * slo_factor
        {
            self.slo_breaches += 1;
        }
    }

    /// `true` once warm executions have repeatedly exceeded the SLO
    /// relative to the best observed warm latency (tail-sensitive, as §5's
    /// "monitors the tail and average latency").
    fn over_slo(&self, slo_factor: f64) -> bool {
        self.slo_breaches >= 3
            || (self.min_warm_ns > 0 && self.ewma_warm_ns > self.min_warm_ns as f64 * slo_factor)
    }
}

/// Aggregated results of a trace run.
///
/// Equality is derived so determinism tests can compare whole reports:
/// two runs of the same trace with the same fault/crash seeds must
/// produce identical reports, bit for bit.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PorterReport {
    /// End-to-end latency per function.
    pub per_function: BTreeMap<String, LatencyHistogram>,
    /// End-to-end latency across all requests.
    pub overall: LatencyHistogram,
    /// Requests served by an idle warm instance.
    pub warm_hits: u64,
    /// Requests served by restoring from a checkpoint.
    pub restores: u64,
    /// Requests served by a full cold deployment.
    pub full_cold: u64,
    /// Requests dropped because memory could not be reclaimed.
    pub dropped: u64,
    /// Idle instances recycled for memory.
    pub recycles: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Checkpoints reclaimed under CXL memory pressure.
    pub checkpoint_reclaims: u64,
    /// Restores that ran under hybrid tiering.
    pub hybrid_restores: u64,
    /// Peak local-memory pages per node.
    pub peak_local_pages: Vec<u64>,
    /// CXL device pages in use at the end of the run.
    pub final_cxl_pages: u64,
    /// Node crashes the run absorbed without stopping.
    pub crashes_survived: u64,
    /// In-flight invocations re-dispatched to a surviving node after a
    /// crash (each also lands in `warm_hits`/`restores`/`full_cold`).
    pub redispatched: u64,
    /// In-flight invocations lost to a crash that no surviving node
    /// could absorb.
    pub work_lost: u64,
    /// Transient CXL device errors absorbed by retry, summed over nodes.
    pub device_retries: u64,
    /// Orphaned checkpoint staging regions the lease GC reclaimed.
    pub orphan_regions_reclaimed: u64,
    /// Device pages freed with those regions.
    pub orphan_pages_reclaimed: u64,
    /// Restores that found their backing store image evicted; the stale
    /// checkpoint was dropped and the request re-deployed cold (which
    /// re-checkpoints on the usual schedule).
    pub image_misses: u64,
    /// Store images the capacity-pressure GC evicted during maintenance.
    pub image_evictions: u64,
    /// Data pages the checkpoint store deduplicated away over the run
    /// (zero at the end of a run without an image store).
    pub store_deduped_pages: u64,
    /// Committed images adopted from a dead coordinator's journal
    /// ([`CxlPorter::adopt_recovered_store`]) and re-leased to the
    /// survivor instead of being lost and re-deployed cold.
    pub recovered_images: u64,
    /// Virtual time the adopting node spent replaying the journal
    /// (batched read of the scanned log plus the compacted snapshot
    /// write).
    pub journal_replay_ns: u64,
    /// Arrivals the per-owner fairness quota deferred (zero unless
    /// [`PorterConfig::fairness`] is set).
    pub fair_deferrals: u64,
    /// Arrivals dropped after exhausting their deferral budget.
    pub fair_drops: u64,
    /// Requests served (dispatched without being dropped) per owner.
    pub per_owner_served: BTreeMap<u32, u64>,
    /// Events the discrete-event engine dispatched across `run_trace`
    /// calls (arrivals + crashes + fairness deferrals).
    pub engine_events: u64,
    /// Checkpoints routed to each fabric pool device (empty without a
    /// [`CxlPorter::with_device_pool`] pool).
    pub fabric_placements: BTreeMap<u32, u64>,
}

impl PorterReport {
    /// Fraction of requests that hit a warm instance.
    pub fn warm_ratio(&self) -> f64 {
        let total = self.warm_hits + self.restores + self.full_cold + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }
}

/// The autoscaler, generic over the remote-fork mechanism.
///
/// # Example
///
/// ```
/// use cxlporter::{Cluster, CxlPorter, PorterConfig};
/// use cxlfork::CxlFork;
/// use trace_gen::{generate, TraceConfig};
///
/// let cluster = Cluster::new(2, 4096, 8192, simclock::LatencyModel::calibrated());
/// let mut porter = CxlPorter::new(cluster, CxlFork::new(), PorterConfig::cxlfork_dynamic());
/// let trace = generate(&TraceConfig {
///     duration_secs: 2.0,
///     total_rps: 4.0,
///     ..TraceConfig::paper_default(vec!["Float".into(), "Json".into()], 7)
/// });
/// let report = porter.run_trace(&trace);
/// assert!(report.overall.len() as usize <= trace.len());
/// ```
#[derive(Debug)]
pub struct CxlPorter<M: RemoteFork> {
    mech: M,
    config: PorterConfig,
    /// The cluster (public for post-run inspection).
    pub cluster: Cluster,
    store: ObjectStore<M::Checkpoint>,
    instances: Vec<Instance>,
    ghost_pools: Vec<Vec<Container>>,
    fn_stats: BTreeMap<String, FnStats>,
    report: PorterReport,
    next_container_id: u64,
    next_instance_id: u64,
    last_maintenance: SimTime,
    measure_from: SimTime,
    crash_schedule: CrashSchedule,
    leases: LeaseTable,
    torn_epoch: u64,
    image_store: Option<Arc<cxl_store::Store>>,
    catalog: Catalog,
    machines: ClusterMachines,
    device_pool: Option<Arc<DevicePool>>,
    fn_checkpoint_seq: BTreeMap<String, u64>,
    fn_fabric_home: BTreeMap<String, u32>,
}

/// Event alphabet of a porter trace run. Ordering within the engine's
/// `(time, seq)` key reproduces the historical straight-line replay
/// exactly: crashes are enqueued before arrivals (lower seq ⇒ a crash
/// due at an arrival's instant fires first, like the old inclusive
/// `due()` drain), and arrivals are enqueued in trace order (same-time
/// arrivals keep their FIFO order).
#[derive(Debug)]
enum PorterEvent {
    /// A scheduled node crash.
    Crash(NodeCrash),
    /// Arrival of `trace[idx]`.
    Arrival(usize),
    /// A fairness-deferred arrival of `trace[idx]`, re-dispatched at
    /// the event's firing time.
    Deferred {
        /// Trace index of the deferred invocation.
        idx: usize,
        /// Deferrals so far, counted against the budget.
        attempts: u32,
    },
}

/// One trace run bound to the discrete-event engine.
struct TraceSim<'a, M: RemoteFork> {
    porter: &'a mut CxlPorter<M>,
    trace: &'a [Invocation],
}

impl<M: RemoteFork> Simulation for TraceSim<'_, M> {
    type Event = PorterEvent;

    fn dispatch(&mut self, ev: Scheduled<PorterEvent>, queue: &mut EventQueue<PorterEvent>) {
        match ev.event {
            PorterEvent::Crash(crash) => self.porter.handle_crash(crash),
            PorterEvent::Arrival(idx) => {
                let inv = &self.trace[idx];
                self.porter.maintenance_tick(inv.time);
                self.porter.dispatch_arrival(inv, idx, 0, queue);
            }
            PorterEvent::Deferred { idx, attempts } => {
                self.porter.maintenance_tick(ev.at);
                let retry = Invocation {
                    time: ev.at,
                    function: self.trace[idx].function.clone(),
                    owner: self.trace[idx].owner,
                };
                self.porter.dispatch_arrival(&retry, idx, attempts, queue);
            }
        }
    }
}

impl<M: RemoteFork> CxlPorter<M> {
    /// Builds the autoscaler and pre-provisions the ghost pools (charged
    /// to the node clocks at t = 0, off every request's critical path).
    pub fn new(mut cluster: Cluster, mech: M, config: PorterConfig) -> Self {
        let mut next_container_id = 1;
        let mut ghost_pools = Vec::with_capacity(cluster.nodes.len());
        for node in &mut cluster.nodes {
            let mut pool = Vec::new();
            if config.use_ghost_containers {
                for _ in 0..config.ghost_pool_per_node {
                    if let Ok((c, _)) = Container::create(node, next_container_id) {
                        next_container_id += 1;
                        pool.push(c);
                    }
                }
            }
            ghost_pools.push(pool);
        }
        let mut leases = LeaseTable::new(config.lease_ttl);
        for idx in 0..cluster.nodes.len() {
            leases.renew(NodeId(idx as u32), SimTime::ZERO);
        }
        let machines = ClusterMachines::new(cluster.nodes.len());
        CxlPorter {
            mech,
            config,
            cluster,
            store: ObjectStore::new(),
            instances: Vec::new(),
            ghost_pools,
            fn_stats: BTreeMap::new(),
            report: PorterReport::default(),
            next_container_id,
            next_instance_id: 1,
            last_maintenance: SimTime::ZERO,
            measure_from: SimTime::ZERO,
            crash_schedule: CrashSchedule::new(),
            leases,
            torn_epoch: 0,
            image_store: None,
            catalog: Catalog::table1(),
            machines,
            device_pool: None,
            fn_checkpoint_seq: BTreeMap::new(),
            fn_fabric_home: BTreeMap::new(),
        }
    }

    /// Replaces the function catalog invocations resolve against. The
    /// default is the Table 1 suite (matching the historical
    /// `faas::by_name` lookup); cluster-scale scenarios install their
    /// synthetic per-tenant namespaces here.
    #[must_use]
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// The function catalog invocations resolve against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Per-node state machines: phase entry and transition counts
    /// accumulated over every trace run.
    pub fn machines(&self) -> &ClusterMachines {
        &self.machines
    }

    /// Attaches a content-addressed checkpoint image store. The
    /// mechanism must route its checkpoints through the same store (see
    /// `CxlFork::with_store`); the porter then leases each published
    /// image to its owner node, runs the store's watermark GC on the
    /// maintenance tick, and turns a restore of an evicted image into a
    /// cold re-deployment instead of a dropped request.
    #[must_use]
    pub fn with_image_store(mut self, store: Arc<cxl_store::Store>) -> Self {
        self.image_store = Some(store);
        self
    }

    /// The attached checkpoint image store, if any.
    pub fn image_store(&self) -> Option<&Arc<cxl_store::Store>> {
        self.image_store.as_ref()
    }

    /// Attaches a fabric device pool. Before every checkpoint the porter
    /// picks a pool device under [`PorterConfig::placement`] and routes
    /// the cluster device's fabric charges to that device's switch ports
    /// (page *data* still lives on the single simulated cluster device —
    /// the pool models where the traffic lands, not a second copy).
    /// Restores of a function charge the device its image was placed on.
    #[must_use]
    pub fn with_device_pool(mut self, pool: Arc<DevicePool>) -> Self {
        assert!(
            !pool.is_empty(),
            "device pool must have at least one device"
        );
        self.device_pool = Some(pool);
        self
    }

    /// The attached fabric device pool, if any.
    pub fn device_pool(&self) -> Option<&Arc<DevicePool>> {
        self.device_pool.as_ref()
    }

    /// Routes the cluster device's fabric charges to the pool device the
    /// placement policy picks for `function`'s next checkpoint, and
    /// remembers that device as the function's fabric home for restores.
    fn route_fabric_for_checkpoint(&mut self, function: &str) {
        let Some(pool) = &self.device_pool else {
            return;
        };
        let nth = self
            .fn_checkpoint_seq
            .entry(function.to_string())
            .or_insert(0);
        let idx = pool.place_with(self.config.placement, fnv64(function), *nth);
        *nth += 1;
        let device = u32::try_from(idx).unwrap_or(u32::MAX);
        self.fn_fabric_home.insert(function.to_string(), device);
        *self.report.fabric_placements.entry(device).or_insert(0) += 1;
        cxl_telemetry::counter_add("cxlporter", "fabric.placement", Some(device), 1);
        let link: Arc<dyn cxl_mem::FabricLink> = pool.topology().clone();
        self.cluster.device.attach_fabric(Some((link, device)));
    }

    /// Routes fabric charges to the device `function`'s image landed on
    /// (no-op if the function was never placed — e.g. restored from an
    /// adopted store — in which case the last routing stays in effect).
    fn route_fabric_for_restore(&mut self, function: &str) {
        let Some(pool) = &self.device_pool else {
            return;
        };
        if let Some(&device) = self.fn_fabric_home.get(function) {
            let link: Arc<dyn cxl_mem::FabricLink> = pool.topology().clone();
            self.cluster.device.attach_fabric(Some((link, device)));
        }
    }

    /// Adopts a checkpoint store recovered from a dead coordinator's
    /// journal (see [`cxl_store::Store::recover`] — the caller runs it
    /// so the same `Arc` can also be wired into the mechanism, e.g.
    /// `CxlFork::with_store`): installs `store` as this porter's image
    /// store, re-leases every recovered committed image to `adopter`
    /// (so the watermark GC cannot reclaim them before their functions
    /// re-register), and charges the replay traffic — one batched read
    /// of the scanned journal pages plus one batched write of the
    /// compacted snapshot — to `adopter`'s clock.
    ///
    /// Post-failover re-checkpoints then dedup against the recovered
    /// index instead of re-copying every page cold; the adoption lands
    /// in the report as `recovered_images` and `journal_replay_ns`.
    ///
    /// # Panics
    ///
    /// If `adopter` is not a node of this cluster, or `store` is not
    /// backed by this cluster's device.
    pub fn adopt_recovered_store(
        &mut self,
        store: Arc<cxl_store::Store>,
        recovery: &cxl_store::RecoveryReport,
        adopter: NodeId,
    ) {
        let node = adopter.0 as usize;
        assert!(
            node < self.cluster.nodes.len(),
            "adopter must be a cluster node"
        );
        assert!(
            Arc::ptr_eq(store.device(), &self.cluster.device),
            "adopted store must live on this cluster's device"
        );
        let model = self.cluster.nodes[node].model();
        let replay = model.cxl_batch_read(recovery.pages_scanned)
            + model.cxl_batch_write(recovery.compaction_pages_written);
        self.cluster.nodes[node].clock_mut().advance(replay);
        let now = self.cluster.nodes[node].now();
        self.leases.renew(adopter, now);
        for image in store.images() {
            store
                .set_lease(image, Some(adopter))
                .expect("recovered catalog lists only committed images");
        }
        self.report.recovered_images += recovery.committed_images;
        self.report.journal_replay_ns += replay.as_nanos();
        if cxl_telemetry::is_armed() {
            cxl_telemetry::counter_add(
                "cxlporter",
                "recovered_images",
                None,
                recovery.committed_images,
            );
            cxl_telemetry::counter_add("cxlporter", "journal_replay_ns", None, replay.as_nanos());
        }
        self.image_store = Some(store);
    }

    /// Installs the node-crash schedule [`run_trace`](Self::run_trace)
    /// consumes: each due crash kills a node mid-run and the porter fails
    /// its work over to the survivors.
    pub fn set_crash_schedule(&mut self, schedule: CrashSchedule) {
        self.crash_schedule = schedule;
    }

    /// Excludes requests arriving before `t` from the latency histograms
    /// and counters (they still execute and warm the system). The
    /// evaluation warms every function past its checkpoint before
    /// measuring, so the steady-state tail is not polluted by first-ever
    /// deployments.
    pub fn set_measure_from(&mut self, t: SimTime) {
        self.measure_from = t;
    }

    /// The underlying mechanism.
    pub fn mechanism(&self) -> &M {
        &self.mech
    }

    /// Runs a trace to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the trace is out of order (see
    /// [`try_run_trace`](Self::try_run_trace) for the fallible form).
    pub fn run_trace(&mut self, trace: &[Invocation]) -> PorterReport {
        match self.try_run_trace(trace) {
            Ok(report) => report,
            Err(e) => panic!("invalid trace: {e}"),
        }
    }

    /// Runs a trace to completion under the discrete-event engine.
    ///
    /// The trace is validated first: arrival times must be
    /// non-decreasing. A queue-driven replay would otherwise silently
    /// *reorder* an out-of-order trace (the heap dispatches by time),
    /// diverging from what the caller generated — so the porter refuses
    /// it instead.
    ///
    /// Scheduling: every crash due within the trace horizon and every
    /// arrival becomes an event in one `(time, seq)`-ordered queue;
    /// fairness deferrals (when [`PorterConfig::fairness`] is set)
    /// re-enqueue dispatches mid-run. With fairness off, the event
    /// order — and therefore the report — is bit-identical to the
    /// historical straight-line replay.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrder`] for a non-monotonic trace;
    /// nothing is dispatched in that case.
    pub fn try_run_trace(&mut self, trace: &[Invocation]) -> Result<PorterReport, TraceError> {
        for (i, w) in trace.windows(2).enumerate() {
            if w[1].time < w[0].time {
                return Err(TraceError::OutOfOrder {
                    index: i + 1,
                    time: w[1].time,
                    prev: w[0].time,
                });
            }
        }
        if let Some(last) = trace.last() {
            let mut queue = EventQueue::new();
            // Crashes first: lower seq than any same-instant arrival,
            // matching the old loop's inclusive `due(inv.time)` drain.
            // Crashes beyond the last arrival stay pending in the
            // schedule, exactly as the straight-line replay left them.
            for crash in self.crash_schedule.due(last.time) {
                queue.push(crash.at, PorterEvent::Crash(crash));
            }
            for (idx, inv) in trace.iter().enumerate() {
                queue.push(inv.time, PorterEvent::Arrival(idx));
            }
            let engine = {
                let mut sim = TraceSim {
                    porter: self,
                    trace,
                };
                cxl_sim::run(&mut sim, &mut queue)
            };
            self.report.engine_events += engine.dispatched;
        }
        let mut report = std::mem::take(&mut self.report);
        // Backstop GC: a crash after the last maintenance tick may have
        // left staging orphans the lease pass never saw.
        let dead: Vec<NodeId> = (0..self.cluster.nodes.len())
            .filter(|&i| self.cluster.is_failed(i))
            .map(|i| NodeId(i as u32))
            .collect();
        if !dead.is_empty() {
            let r = reclaim_dead(&self.cluster.device, &dead);
            report.orphan_regions_reclaimed += r.regions;
            report.orphan_pages_reclaimed += r.pages;
        }
        report.device_retries = self
            .cluster
            .nodes
            .iter()
            .map(|n| n.counters().get("cxl_transient_retry"))
            .sum();
        report.peak_local_pages = self
            .cluster
            .nodes
            .iter()
            .map(|n| n.frames().peak_used())
            .collect();
        report.final_cxl_pages = self.cluster.device.used_pages();
        if let Some(istore) = &self.image_store {
            report.store_deduped_pages = istore.stats().deduped_pages;
        }
        // Post-condition (`check` builds): a full trace must leave every
        // memory ledger in the cluster balanced.
        #[cfg(feature = "check")]
        {
            let violations = self.audit();
            assert!(
                violations.is_empty(),
                "cluster invariants violated after trace: {violations:?}"
            );
        }
        Ok(report)
    }

    /// Dispatches one (possibly deferred) arrival, metering the owner's
    /// fairness quota first when one is configured.
    fn dispatch_arrival(
        &mut self,
        inv: &Invocation,
        idx: usize,
        attempts: u32,
        queue: &mut EventQueue<PorterEvent>,
    ) {
        if let Some(fairness) = self.config.fairness.clone() {
            let (busy, next_free) = self.owner_busy(inv.owner, inv.time);
            if busy >= fairness.max_inflight_per_owner {
                match next_free {
                    Some(at) if attempts < fairness.max_deferrals => {
                        self.report.fair_deferrals += 1;
                        queue.push(
                            at,
                            PorterEvent::Deferred {
                                idx,
                                attempts: attempts + 1,
                            },
                        );
                    }
                    _ => {
                        // Budget exhausted — or a zero quota, which has
                        // no busy instance to wait on.
                        self.report.fair_drops += 1;
                    }
                }
                return;
            }
        }
        let dropped_before = self.report.dropped;
        self.handle(inv);
        if self.report.dropped == dropped_before {
            *self.report.per_owner_served.entry(inv.owner).or_default() += 1;
        }
    }

    /// Counts `owner`'s busy instances at `now` and the earliest
    /// instant one of them frees up.
    fn owner_busy(&self, owner: u32, now: SimTime) -> (usize, Option<SimTime>) {
        let mut busy = 0;
        let mut next_free: Option<SimTime> = None;
        for inst in &self.instances {
            if inst.owner == owner && inst.busy_until > now {
                busy += 1;
                next_free = Some(next_free.map_or(inst.busy_until, |t| t.min(inst.busy_until)));
            }
        }
        (busy, next_free)
    }

    /// Store images some live instance was restored from: their device
    /// pages are still mapped by running processes, so capacity
    /// eviction must not free them (even when the image's lease holder
    /// has crashed — the restores outlive the checkpointing node).
    fn referenced_images(&self) -> std::collections::BTreeSet<u64> {
        self.instances.iter().filter_map(|i| i.image).collect()
    }

    fn maintenance_tick(&mut self, now: SimTime) {
        if now - self.last_maintenance >= self.config.maintenance_interval {
            self.last_maintenance = now;
            // Liveness: every surviving node renews its lease, then one
            // GC pass reclaims staging regions whose owner's lease has
            // lapsed (crashed nodes stop renewing).
            let live: Vec<usize> = self.cluster.live_nodes().collect();
            for &idx in &live {
                self.leases.renew(NodeId(idx as u32), now);
                self.machines.pulse(idx, NodePhase::Maintenance, now);
            }
            let r = reclaim_orphans(&self.cluster.device, &self.leases, now);
            self.report.orphan_regions_reclaimed += r.regions;
            self.report.orphan_pages_reclaimed += r.pages;
            let referenced = self.referenced_images();
            if let Some(istore) = &self.image_store {
                // Capacity-pressure GC: pending images whose writer's
                // lease lapsed roll back first, then LRU watermark
                // eviction (lease-protected images of live nodes and
                // images still mapped by running restores survive; a
                // crashed node's unreferenced images are fair game).
                istore.reclaim_orphan_pending(&self.leases, now);
                let evicted = istore.evict_to_low_watermark_except(&self.leases, now, &referenced);
                self.report.image_evictions += evicted.images;
            }
            for (_, entry) in self.store.iter() {
                self.mech.maintain(&entry.checkpoint);
            }
        }
    }

    /// Fails `crash.node` over to the surviving nodes: tears down every
    /// instance and ghost on the dead node, revokes its lease (so its
    /// staging orphans become reclaimable immediately), and re-dispatches
    /// the invocations that were executing at the instant of the crash.
    ///
    /// Exactly-once accounting: a crashed in-flight invocation either
    /// re-runs once on a survivor (`redispatched`) or is counted in
    /// `work_lost` — never both, and never silently dropped. The CXL
    /// device survives the crash, so published checkpoints keep serving
    /// restores; a crash `mid_checkpoint` leaves a torn staging region
    /// behind that two-phase commit keeps invisible to restores until the
    /// lease GC destroys it.
    fn handle_crash(&mut self, crash: NodeCrash) {
        let node = crash.node;
        if node >= self.cluster.nodes.len() || self.cluster.is_failed(node) {
            return;
        }
        if crash.mid_checkpoint {
            // The node dies partway through a checkpoint copy: its
            // staging region stays uncommitted (invisible to restores)
            // and its pages are stranded until reclamation.
            self.torn_epoch += 1;
            let region = self.cluster.device.create_region_staged(
                &format!("crash:n{node}#torn{}", self.torn_epoch),
                NodeId(node as u32),
                self.torn_epoch,
            );
            let _ = self.cluster.device.alloc_batch(region, 4);
        }

        // Tear down everything on the dead node. Containers are destroyed
        // outright (their host is gone), never recycled into a pool.
        let mut in_flight: Vec<(String, u32)> = Vec::new();
        let mut idx = 0;
        while idx < self.instances.len() {
            if self.instances[idx].node == node {
                let inst = self.instances.swap_remove(idx);
                if inst.busy_until > crash.at {
                    in_flight.push((inst.function.clone(), inst.owner));
                }
                let mut container = inst.container;
                let _ = container.recycle(&mut self.cluster.nodes[node]);
                let _ = container.destroy(&mut self.cluster.nodes[node]);
            } else {
                idx += 1;
            }
        }
        let ghosts: Vec<Container> = self.ghost_pools[node].drain(..).collect();
        for ghost in ghosts {
            let _ = ghost.destroy(&mut self.cluster.nodes[node]);
        }
        self.cluster.nodes[node].drop_page_cache();
        self.cluster.mark_failed(node);
        self.machines.enter(node, NodePhase::Crashed, crash.at);
        self.leases.revoke(NodeId(node as u32));
        self.report.crashes_survived += 1;

        // Re-dispatch: each lost invocation re-enters the normal
        // dispatch path at the crash instant. A retry the survivors
        // cannot place is lost work, not a dropped request.
        let redispatched_before = self.report.redispatched;
        let lost_before = self.report.work_lost;
        in_flight.sort();
        for (function, owner) in in_flight {
            let retry = Invocation {
                time: crash.at,
                function,
                owner,
            };
            let dropped_before = self.report.dropped;
            self.handle(&retry);
            if self.report.dropped > dropped_before {
                self.report.dropped = dropped_before;
                self.report.work_lost += 1;
            } else {
                self.report.redispatched += 1;
            }
        }
        if cxl_telemetry::is_armed() {
            cxl_telemetry::counter_add("cxlporter", "crashes_survived", None, 1);
            let redispatched = self.report.redispatched - redispatched_before;
            if redispatched > 0 {
                cxl_telemetry::counter_add("cxlporter", "redispatched", None, redispatched);
            }
            let lost = self.report.work_lost - lost_before;
            if lost > 0 {
                cxl_telemetry::counter_add("cxlporter", "work_lost", None, lost);
            }
        }
    }

    fn handle(&mut self, inv: &Invocation) {
        let Some(spec) = self.catalog.get(&inv.function).cloned() else {
            return;
        };
        let spec = spec.with_template_overlap(self.config.template_overlap);
        let now = inv.time;
        self.evict_expired(now);

        // Warm path: an idle instance of this function.
        if let Some(id) = self.find_idle(&inv.function, now) {
            let (node, pid, inv_idx) = {
                let i = self.instance(id).expect("just found");
                (i.node, i.pid, i.invocations)
            };
            self.note_queue_wait(node, now);
            self.cluster.nodes[node].clock_mut().advance_to(now);
            self.machines.pulse(node, NodePhase::Dispatching, now);
            match self.invoke_with_reclaim(node, pid, &spec, inv_idx, now) {
                Some(result) => {
                    self.report.warm_hits += 1;
                    cxl_telemetry::counter_add("cxlporter", "warm_hits", None, 1);
                    self.finish(id, now, SimDuration::ZERO, result, &spec, true);
                }
                None => {
                    self.drop_instance_by_id(id);
                    self.report.dropped += 1;
                }
            }
            self.cluster.touch(node);
            return;
        }

        // Cold path.
        match self.cold_start(&spec, now, inv.owner) {
            Some((id, startup)) => {
                let (node, pid) = {
                    let i = self.instance(id).expect("just created");
                    (i.node, i.pid)
                };
                match self.invoke_with_reclaim(node, pid, &spec, 0, now) {
                    Some(result) => {
                        self.finish(id, now, startup, result, &spec, false);
                    }
                    None => {
                        self.drop_instance_by_id(id);
                        self.report.dropped += 1;
                    }
                }
                self.cluster.touch(node);
            }
            None => {
                self.report.dropped += 1;
            }
        }
    }

    /// Records how long the invocation waited for its target node's
    /// virtual clock (the node is still busy with earlier work) — the
    /// queueing portion of the request timeline.
    fn note_queue_wait(&self, node: usize, now: SimTime) {
        if !cxl_telemetry::is_armed() {
            return;
        }
        let node_now = self.cluster.nodes[node].now();
        if node_now > now {
            let track = node as u32;
            cxl_telemetry::record_span("cxlporter.queue", track, now, node_now, &[]);
            cxl_telemetry::timer_record("cxlporter", "queue.latency", Some(track), node_now - now);
        }
    }

    fn instance(&self, id: u64) -> Option<&Instance> {
        self.instances.iter().find(|i| i.id == id)
    }

    fn instance_pos(&self, id: u64) -> Option<usize> {
        self.instances.iter().position(|i| i.id == id)
    }

    /// Completes a request: records latency, schedules the instance,
    /// clears A/D bits after the first invocation, and checkpoints after
    /// the sixteenth (§5).
    fn finish(
        &mut self,
        id: u64,
        now: SimTime,
        startup: SimDuration,
        result: faas::InvocationResult,
        spec: &FunctionSpec,
        warm: bool,
    ) {
        let latency = startup + result.total;
        let idx = self
            .instance_pos(id)
            .expect("instance survives its own invocation (reclaim excludes it)");
        let inst = &mut self.instances[idx];
        inst.invocations += 1;
        inst.busy_until = now + latency;
        inst.last_used = inst.busy_until;
        let node = inst.node;
        let pid = inst.pid;
        let invocations = inst.invocations;
        let cold_started = inst.cold_started;

        if now >= self.measure_from {
            self.report
                .per_function
                .entry(spec.name.clone())
                .or_default()
                .record(latency);
            self.report.overall.record(latency);
            if cxl_telemetry::is_armed() {
                cxl_telemetry::timer_record("cxlporter", "e2e", None, latency);
                cxl_telemetry::timer_record(
                    "cxlporter",
                    &format!("e2e.{}", spec.name),
                    None,
                    latency,
                );
            }
        }
        let slo_factor = self.config.slo_factor;
        let stats = self.fn_stats.entry(spec.name.clone()).or_default();
        stats.observe(latency, warm);
        if warm {
            stats.note_breach(latency, slo_factor);
        }

        if cold_started {
            if invocations == 1 {
                // §5: clear A/D after the first invocation so the bits
                // capture the steady state.
                let _ = faas::engine::clear_ad_bits(&mut self.cluster.nodes[node], pid);
            }
            if invocations == self.config.checkpoint_after && !self.store.contains(&spec.name) {
                // Make room first if the device is short (a checkpoint
                // needs roughly the footprint plus metadata).
                self.reclaim_cxl_for(
                    spec.footprint_pages() + spec.footprint_pages() / 16,
                    "",
                    now,
                );
                self.route_fabric_for_checkpoint(&spec.name);
                let ckpt = match self.mech.checkpoint(&mut self.cluster.nodes[node], pid) {
                    Ok(c) => Some(c),
                    Err(_) => {
                        // Device full: evict everything evictable and retry
                        // once.
                        self.reclaim_cxl_for(u64::MAX, "", now);
                        self.mech
                            .checkpoint(&mut self.cluster.nodes[node], pid)
                            .ok()
                    }
                };
                if let Some(ckpt) = ckpt {
                    if let Some(istore) = &self.image_store {
                        if let Some(image) = self.mech.image_id(&ckpt) {
                            // Lease-protect the published image: the
                            // watermark GC only reclaims it once its
                            // owner node stops renewing (crash) or the
                            // porter releases the checkpoint.
                            istore
                                .set_lease(ImageId(image), Some(NodeId(node as u32)))
                                .expect("freshly published image is committed");
                        }
                    }
                    self.store.put(&spec.name, ckpt, now);
                    self.report.checkpoints += 1;
                    cxl_telemetry::counter_add("cxlporter", "checkpoints", None, 1);
                    self.reclaim_cxl_pressure(&spec.name);
                }
            }
        }
    }

    fn find_idle(&self, function: &str, now: SimTime) -> Option<u64> {
        self.instances
            .iter()
            .filter(|i| i.function == function && i.busy_until <= now)
            .max_by_key(|i| i.last_used)
            .map(|i| i.id)
    }

    /// Runs an invocation, reclaiming idle instances on OOM (the
    /// memory-constrained runtime "has to recycle containers to serve
    /// requests", §7.2).
    fn invoke_with_reclaim(
        &mut self,
        node: usize,
        pid: Pid,
        spec: &FunctionSpec,
        inv_idx: u64,
        now: SimTime,
    ) -> Option<faas::InvocationResult> {
        for _attempt in 0..3 {
            match faas::run_invocation(&mut self.cluster.nodes[node], pid, spec, inv_idx) {
                Ok(r) => return Some(r),
                Err(OsError::OutOfMemory { .. }) => {
                    if !self.reclaim_one(node, now, Some(pid)) {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
        None
    }

    /// Cold start: restore from checkpoint if one exists, else full cold
    /// deployment. Returns the instance index and the startup latency.
    fn cold_start(
        &mut self,
        spec: &FunctionSpec,
        now: SimTime,
        owner: u32,
    ) -> Option<(u64, SimDuration)> {
        let node = self.cluster.least_loaded()?;
        self.note_queue_wait(node, now);
        self.cluster.nodes[node].clock_mut().advance_to(now);

        // Re-checkpoint-on-miss: the store's capacity GC may have
        // evicted the image backing this function's checkpoint (its
        // owner crashed, or pressure outran the lease). Drop the stale
        // entry and fall through to a cold deployment, which
        // re-checkpoints on the usual schedule.
        if let Some(istore) = self.image_store.clone() {
            let stale = self.store.get(&spec.name).is_some_and(|entry| {
                self.mech
                    .image_id(&entry.checkpoint)
                    .is_some_and(|image| !istore.is_live(ImageId(image)))
            });
            if stale {
                if let Some(ckpt) = self.store.remove(&spec.name) {
                    let _ = self
                        .mech
                        .release_checkpoint(ckpt, &self.cluster.nodes[node]);
                }
                self.report.image_misses += 1;
                cxl_telemetry::counter_add("cxlporter", "image_misses", None, 1);
            }
        }

        if self.store.contains(&spec.name) {
            let options = self.choose_options(spec, node);
            if options.policy == TierPolicy::Hybrid {
                self.report.hybrid_restores += 1;
            }
            // Memory pre-check against the policy's expected consumption.
            let estimate = {
                let entry = self.store.get(&spec.name).expect("checked above");
                self.mech
                    .restore_memory_estimate(&entry.checkpoint, options)
            };
            self.ensure_free(node, estimate + faas::BARE_CONTAINER_PAGES, now);

            let (container, container_cost) = self.claim_container(node, now)?;
            self.route_fabric_for_restore(&spec.name);
            // Placement + restore span; the mechanism's own
            // `core.restore` phase spans nest underneath it.
            cxl_telemetry::span_open(
                "cxlporter.restore",
                node as u32,
                self.cluster.nodes[node].now(),
                &[],
            );
            let restored = {
                let entry = self
                    .store
                    .get_for_restore(&spec.name)
                    .expect("checked above");
                self.mech
                    .restore_with(&entry.checkpoint, &mut self.cluster.nodes[node], options)
            };
            cxl_telemetry::span_close(node as u32, self.cluster.nodes[node].now());
            match restored {
                Ok(r) => {
                    let mut container = container;
                    container.attach_process(&spec.name, r.pid);
                    let id = self.next_instance_id;
                    self.next_instance_id += 1;
                    self.machines.pulse(node, NodePhase::Restoring, now);
                    let image = self
                        .store
                        .get(&spec.name)
                        .and_then(|entry| self.mech.image_id(&entry.checkpoint));
                    self.instances.push(Instance {
                        id,
                        node,
                        container,
                        pid: r.pid,
                        function: spec.name.clone(),
                        owner,
                        busy_until: now,
                        last_used: now,
                        invocations: 0,
                        cold_started: false,
                        image,
                    });
                    self.report.restores += 1;
                    if cxl_telemetry::is_armed() {
                        cxl_telemetry::counter_add("cxlporter", "restores", None, 1);
                        cxl_telemetry::timer_record(
                            "cxlporter",
                            "startup.latency",
                            Some(node as u32),
                            container_cost + r.restore_latency,
                        );
                    }
                    Some((id, container_cost + r.restore_latency))
                }
                Err(_) => {
                    // Give the container back and drop the request.
                    self.return_container(node, container);
                    None
                }
            }
        } else {
            // First-ever deployment: full container + state init.
            self.ensure_free(
                node,
                spec.footprint_pages() + faas::BARE_CONTAINER_PAGES,
                now,
            );
            let (container, container_cost) = self.create_container(node)?;
            cxl_telemetry::span_open(
                "cxlporter.cold_deploy",
                node as u32,
                self.cluster.nodes[node].now(),
                &[],
            );
            let deployed = faas::deploy_cold(&mut self.cluster.nodes[node], spec);
            cxl_telemetry::span_close(node as u32, self.cluster.nodes[node].now());
            match deployed {
                Ok((pid, init)) => {
                    let mut container = container;
                    container.attach_process(&spec.name, pid);
                    let id = self.next_instance_id;
                    self.next_instance_id += 1;
                    self.machines.pulse(node, NodePhase::ColdDeploying, now);
                    self.instances.push(Instance {
                        id,
                        node,
                        container,
                        pid,
                        function: spec.name.clone(),
                        owner,
                        busy_until: now,
                        last_used: now,
                        invocations: 0,
                        cold_started: true,
                        image: None,
                    });
                    self.report.full_cold += 1;
                    if cxl_telemetry::is_armed() {
                        cxl_telemetry::counter_add("cxlporter", "full_cold", None, 1);
                        cxl_telemetry::timer_record(
                            "cxlporter",
                            "startup.latency",
                            Some(node as u32),
                            container_cost + init.total,
                        );
                    }
                    Some((id, container_cost + init.total))
                }
                Err(_) => {
                    self.return_container(node, container);
                    None
                }
            }
        }
    }

    /// SLO- and memory-driven tiering choice (§5).
    fn choose_options(&self, spec: &FunctionSpec, node: usize) -> RestoreOptions {
        if !self.config.dynamic_tiering {
            return match self.config.static_policy {
                TierPolicy::MigrateOnWrite => RestoreOptions::mow(),
                TierPolicy::MigrateOnAccess => RestoreOptions::moa(),
                TierPolicy::Hybrid => RestoreOptions::hybrid(),
            };
        }
        let util = self.cluster.nodes[node].frames().utilization();
        if util >= self.config.high_mem_threshold {
            // HighMem: no more hybrid promotions (§5).
            return RestoreOptions::mow();
        }
        if let Some(s) = self.fn_stats.get(&spec.name) {
            if s.over_slo(self.config.slo_factor) {
                return RestoreOptions::hybrid();
            }
        }
        RestoreOptions::mow()
    }

    /// Reclaims the coldest stored checkpoints while the CXL device is
    /// over the pressure threshold (§5). Never evicts `keep` (the
    /// checkpoint that was just stored).
    fn reclaim_cxl_pressure(&mut self, keep: &str) {
        while self.cluster.device.utilization() > self.config.cxl_reclaim_threshold {
            if !self.evict_coldest(keep) {
                break;
            }
        }
    }

    /// Reclaims coldest checkpoints until at least `pages` device pages
    /// are free (best effort). With an image store attached, its
    /// unprotected images (crashed owners, lease lapses) go first —
    /// they serve no restorable checkpoint — before live checkpoints
    /// are sacrificed.
    fn reclaim_cxl_for(&mut self, pages: u64, keep: &str, now: SimTime) {
        if let Some(istore) = self.image_store.clone() {
            let referenced = self.referenced_images();
            let evicted = istore.evict_for_except(pages, &self.leases, now, &referenced);
            self.report.image_evictions += evicted.images;
        }
        while self.cluster.device.free_pages() < pages {
            if !self.evict_coldest(keep) {
                break;
            }
        }
    }

    fn evict_coldest(&mut self, keep: &str) -> bool {
        let victim = self
            .store
            .iter()
            .filter(|(f, _)| *f != keep)
            .min_by_key(|(_, s)| s.restores)
            .map(|(f, _)| f.to_owned());
        let Some(victim) = victim else { return false };
        match self.store.remove(&victim) {
            Some(ckpt) => {
                let _ = self.mech.release_checkpoint(ckpt, &self.cluster.nodes[0]);
                self.report.checkpoint_reclaims += 1;
                true
            }
            None => false,
        }
    }

    fn claim_container(&mut self, node: usize, now: SimTime) -> Option<(Container, SimDuration)> {
        if self.config.use_ghost_containers {
            if let Some(c) = self.ghost_pools[node].pop() {
                let cost = c.trigger(&mut self.cluster.nodes[node]);
                // Background workers replenish the pool off the critical
                // path (§5: CXLporter "provisions and caches" the ghosts);
                // the ~130 ms creation cost is charged to the node's clock
                // but never to a request.
                let id = self.next_container_id;
                self.next_container_id += 1;
                if let Ok((fresh, _)) = Container::create(&mut self.cluster.nodes[node], id) {
                    self.ghost_pools[node].push(fresh);
                }
                return Some((c, cost));
            }
        }
        let created = self.create_container(node);
        if created.is_none() {
            // Last resort: reclaim and retry once.
            if self.reclaim_one(node, now, None) {
                return self.create_container(node);
            }
        }
        created
    }

    fn create_container(&mut self, node: usize) -> Option<(Container, SimDuration)> {
        let id = self.next_container_id;
        self.next_container_id += 1;
        Container::create(&mut self.cluster.nodes[node], id).ok()
    }

    fn return_container(&mut self, node: usize, container: Container) {
        if self.config.use_ghost_containers
            && self.ghost_pools[node].len() < self.config.ghost_pool_per_node
        {
            self.ghost_pools[node].push(container);
        } else {
            let _ = container.destroy(&mut self.cluster.nodes[node]);
        }
    }

    /// Reclaims idle instances on `node` until at least `pages` frames
    /// are free (best effort).
    fn ensure_free(&mut self, node: usize, pages: u64, now: SimTime) {
        while self.cluster.nodes[node].frames().available() < pages {
            if !self.reclaim_one(node, now, None) {
                break;
            }
        }
    }

    /// Kills the least-recently-used idle instance on `node`. Returns
    /// `false` if none exists.
    fn reclaim_one(&mut self, node: usize, now: SimTime, exclude_pid: Option<Pid>) -> bool {
        let victim = self
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.node == node && i.busy_until <= now && Some(i.pid) != exclude_pid)
            .min_by_key(|(_, i)| i.last_used)
            .map(|(idx, _)| idx);
        match victim {
            Some(idx) => {
                self.drop_instance(idx);
                self.report.recycles += 1;
                true
            }
            None => {
                // No idle instance: drop the node's clean page cache (the
                // OS reclamation path for file pages).
                self.cluster.nodes[node].drop_page_cache() > 0
            }
        }
    }

    /// Evicts idle instances past their keep-alive window; the window
    /// shrinks to 10 s on pressured nodes (§5).
    fn evict_expired(&mut self, now: SimTime) {
        let mut idx = 0;
        while idx < self.instances.len() {
            let i = &self.instances[idx];
            let pressured =
                self.cluster.nodes[i.node].frames().utilization() >= self.config.high_mem_threshold;
            let window = if pressured {
                self.config.pressure_keep_alive
            } else {
                self.config
                    .per_function_keep_alive
                    .get(&i.function)
                    .copied()
                    .unwrap_or(self.config.keep_alive)
            };
            if i.busy_until <= now && now - i.last_used > window {
                self.drop_instance(idx);
            } else {
                idx += 1;
            }
        }
    }

    /// Kills an instance (looked up by stable id) and recycles its
    /// container.
    fn drop_instance_by_id(&mut self, id: u64) {
        if let Some(idx) = self.instance_pos(id) {
            self.drop_instance(idx);
        }
    }

    /// Kills an instance and recycles its container.
    fn drop_instance(&mut self, idx: usize) {
        let mut inst = self.instances.swap_remove(idx);
        let node = inst.node;
        let _ = inst.container.recycle(&mut self.cluster.nodes[node]);
        self.return_container(node, inst.container);
        self.cluster.touch(node);
    }

    /// Live instance count (for tests and reports).
    pub fn live_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of checkpoints stored.
    pub fn stored_checkpoints(&self) -> usize {
        self.store.len()
    }

    /// The checkpoint object store (for audits and tests).
    pub fn store(&self) -> &ObjectStore<M::Checkpoint> {
        &self.store
    }

    /// Runs the cross-layer invariant audit over the whole deployment:
    /// every node's memory ledgers, the shared device's region
    /// accounting, and the recorded lock-order graph. Returns every
    /// violation found (empty = clean). Only available with the `check`
    /// feature.
    #[cfg(feature = "check")]
    pub fn audit(&self) -> Vec<cxl_check::Violation> {
        let mut out = Vec::new();
        for (idx, node) in self.cluster.nodes.iter().enumerate() {
            // Containers pin their bare 512 KiB footprint outside any
            // process; declare those frames so the refcount balance
            // closes.
            let pins = self.ghost_pools[idx]
                .iter()
                .chain(
                    self.instances
                        .iter()
                        .filter(|i| i.node == idx)
                        .map(|i| &i.container),
                )
                .flat_map(|c| c.pinned_frames().iter().copied());
            out.extend(
                cxl_check::NodeAudit::new(node)
                    .with_external_refs(pins)
                    .run(),
            );
        }
        out.extend(cxl_check::audit_device(&self.cluster.device));
        if let Some(istore) = &self.image_store {
            out.extend(cxl_check::audit_store(istore));
        }
        out.extend(cxl_check::audit_staging(
            &self.cluster.device,
            self.cluster.live_nodes().map(|i| NodeId(i as u32)),
        ));
        out.extend(cxl_check::check_lock_order());
        out
    }
}

/// FNV-1a over the function name: a stable, platform-independent seed
/// for locality placement (`std` hashers are randomized per process,
/// which would break run-to-run determinism).
fn fnv64(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
