//! The simulated CXL-interconnected cluster.

use std::sync::Arc;

use cxl_mem::CxlDevice;
use node_os::fs::SharedFs;
use node_os::{Node, NodeConfig};
use simclock::LatencyModel;

/// A cluster of nodes sharing one CXL device and one root filesystem.
///
/// The evaluation platform is a two-node cluster (one VM per socket) with
/// a 16 GiB CXL device (§6.1); the builder accepts any geometry.
#[derive(Debug)]
pub struct Cluster {
    /// The compute nodes.
    pub nodes: Vec<Node>,
    /// The shared CXL memory device.
    pub device: Arc<CxlDevice>,
    /// The shared root filesystem.
    pub rootfs: Arc<SharedFs>,
    /// Per-node failure flags: a failed node takes no new placements.
    failed: Vec<bool>,
}

impl Cluster {
    /// Builds a cluster of `node_count` nodes with `node_mem_mib` of local
    /// DRAM each and a `cxl_mib` CXL device.
    pub fn new(node_count: usize, node_mem_mib: u64, cxl_mib: u64, model: LatencyModel) -> Self {
        let device = Arc::new(CxlDevice::with_capacity_mib(cxl_mib));
        Cluster::with_device(node_count, node_mem_mib, device, model)
    }

    /// Builds a cluster over an **existing** CXL device. This is the
    /// failover path: fabric-attached memory outlives the coordinator
    /// that populated it, so a successor cluster attaches to the same
    /// device and recovers the durable state it finds there instead of
    /// starting from an empty device.
    pub fn with_device(
        node_count: usize,
        node_mem_mib: u64,
        device: Arc<CxlDevice>,
        model: LatencyModel,
    ) -> Self {
        let rootfs = Arc::new(SharedFs::new());
        let nodes = (0..node_count)
            .map(|i| {
                Node::with_rootfs(
                    NodeConfig::default()
                        .with_id(i as u32)
                        .with_local_mem_mib(node_mem_mib)
                        .with_model(model.clone()),
                    Arc::clone(&device),
                    Arc::clone(&rootfs),
                )
            })
            .collect();
        Cluster {
            failed: vec![false; node_count],
            nodes,
            device,
            rootfs,
        }
    }

    /// The paper's platform: two nodes, 16 GiB CXL device.
    pub fn paper_platform(node_mem_mib: u64) -> Self {
        Cluster::new(2, node_mem_mib, 16 * 1024, LatencyModel::calibrated())
    }

    /// Index of the live node with the most free local memory, or `None`
    /// when every node has failed.
    ///
    /// Ties break deterministically toward the **lowest node index**: a
    /// candidate only displaces the incumbent when its load is *strictly*
    /// lower, so an evenly loaded cluster always places on the first live
    /// node and repeated runs schedule identically.
    pub fn least_loaded(&self) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for i in self.live_nodes() {
            // Utilization scaled to integers for exact comparison.
            let load = (self.nodes[i].frames().utilization() * 1e9) as u64;
            let improves = match best {
                None => true,
                Some((_, incumbent)) => load < incumbent,
            };
            if improves {
                best = Some((i, load));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Marks a node as failed; it is skipped by placement from now on.
    pub fn mark_failed(&mut self, idx: usize) {
        self.failed[idx] = true;
    }

    /// Whether `idx` has been marked failed.
    pub fn is_failed(&self, idx: usize) -> bool {
        self.failed.get(idx).copied().unwrap_or(true)
    }

    /// Indices of the nodes still live.
    pub fn live_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|&i| !self.failed[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_shares_device_and_rootfs() {
        let c = Cluster::new(3, 64, 128, LatencyModel::calibrated());
        assert_eq!(c.nodes.len(), 3);
        c.rootfs.create("/shared", 10, 1);
        for n in &c.nodes {
            assert!(n.rootfs().exists("/shared"));
            assert!(Arc::ptr_eq(n.device(), &c.device));
        }
    }

    #[test]
    fn least_loaded_prefers_free_node() {
        let mut c = Cluster::new(2, 64, 16, LatencyModel::calibrated());
        // Load node 0.
        for _ in 0..1000 {
            c.nodes[0].frames_mut().alloc_zeroed().unwrap();
        }
        assert_eq!(c.least_loaded(), Some(1));
    }

    #[test]
    fn least_loaded_skips_failed_nodes() {
        let mut c = Cluster::new(3, 64, 16, LatencyModel::calibrated());
        // Node 2 is the emptiest but dead; placement must skip it.
        for _ in 0..1000 {
            c.nodes[0].frames_mut().alloc_zeroed().unwrap();
        }
        for _ in 0..500 {
            c.nodes[1].frames_mut().alloc_zeroed().unwrap();
        }
        c.mark_failed(2);
        assert!(c.is_failed(2));
        assert_eq!(c.least_loaded(), Some(1));
        assert_eq!(c.live_nodes().collect::<Vec<_>>(), vec![0, 1]);
        // A fully failed cluster has nowhere to place.
        c.mark_failed(0);
        c.mark_failed(1);
        assert_eq!(c.least_loaded(), None);
    }

    #[test]
    fn least_loaded_breaks_ties_toward_lowest_index() {
        // An evenly loaded cluster always places on the first live node.
        let mut c = Cluster::new(4, 64, 16, LatencyModel::calibrated());
        assert_eq!(c.least_loaded(), Some(0), "all empty: lowest index wins");
        c.mark_failed(0);
        assert_eq!(c.least_loaded(), Some(1), "ties among live nodes only");
        // Load node 1: nodes 2 and 3 now tie for emptiest.
        for _ in 0..100 {
            c.nodes[1].frames_mut().alloc_zeroed().unwrap();
        }
        assert_eq!(c.least_loaded(), Some(2), "equal load: lowest index wins");
        // Strictly lighter nodes still beat index order.
        for i in 2..4 {
            for _ in 0..200 {
                c.nodes[i].frames_mut().alloc_zeroed().unwrap();
            }
        }
        assert_eq!(c.least_loaded(), Some(1), "strict improvement wins");
    }

    #[test]
    fn paper_platform_geometry() {
        let c = Cluster::paper_platform(1024);
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.device.capacity_pages(), 16 * 1024 * 256);
    }
}
