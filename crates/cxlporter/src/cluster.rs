//! The simulated CXL-interconnected cluster.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;

use cxl_mem::CxlDevice;
use node_os::fs::SharedFs;
use node_os::{Node, NodeConfig};
use simclock::LatencyModel;

/// Incremental least-loaded index: an ordered set of `(scaled load,
/// node index)` pairs mirroring each node's frame utilization.
///
/// The scheduler keeps the index fresh by calling [`Cluster::touch`]
/// after every placement-relevant mutation; lookups then cost one
/// ordered-set minimum instead of a full O(n) scan of every node's
/// allocator.
///
/// Lazy repair at lookup time only ever visits the entry at the
/// *minimum*, so it corrects exactly one kind of staleness: untracked
/// load **increases** (a stale-low entry surfaces at the front, is
/// re-costed, and sinks to its true position). An untracked **decrease**
/// leaves a stale-high entry buried above the minimum where no lookup
/// will re-examine it, so every path that shrinks a node's load
/// (instance teardown, crash reclamation) must `touch` the node —
/// [`Cluster::mark_failed`] drops the entry outright so a dead node can
/// never win a placement regardless of what its entry said. The
/// porter's mutators all follow this contract, and `check` builds
/// cross-check every lookup against a full scan.
#[derive(Debug, Default)]
struct LoadIndex {
    /// `(load, index)` — the minimum is the least-loaded node, ties
    /// resolving to the lowest index, exactly the documented tie-break.
    entries: BTreeSet<(u64, usize)>,
    /// Last load written into `entries` per node.
    cached: Vec<u64>,
    /// Whether `entries` currently holds a pair for the node.
    present: Vec<bool>,
}

impl LoadIndex {
    /// Grows per-node bookkeeping to cover `n` nodes.
    fn grow(&mut self, n: usize) {
        while self.cached.len() < n {
            self.cached.push(0);
            self.present.push(false);
        }
    }

    /// Replaces the node's entry with `load`.
    fn update(&mut self, node: usize, load: u64) {
        self.grow(node + 1);
        if self.present[node] {
            self.entries.remove(&(self.cached[node], node));
        }
        self.entries.insert((load, node));
        self.cached[node] = load;
        self.present[node] = true;
    }

    /// Drops the node's entry (failed nodes take no placements).
    fn remove(&mut self, node: usize) {
        self.grow(node + 1);
        if self.present[node] {
            self.entries.remove(&(self.cached[node], node));
            self.present[node] = false;
        }
    }
}

/// A cluster of nodes sharing one CXL device and one root filesystem.
///
/// The evaluation platform is a two-node cluster (one VM per socket) with
/// a 16 GiB CXL device (§6.1); the builder accepts any geometry.
#[derive(Debug)]
pub struct Cluster {
    /// The compute nodes.
    pub nodes: Vec<Node>,
    /// The shared CXL memory device.
    pub device: Arc<CxlDevice>,
    /// The shared root filesystem.
    pub rootfs: Arc<SharedFs>,
    /// Per-node failure flags: a failed node takes no new placements.
    failed: Vec<bool>,
    /// Placement index (interior mutability: lookups lazily repair
    /// stale entries without requiring `&mut self`).
    index: RefCell<LoadIndex>,
}

impl Cluster {
    /// Builds a cluster of `node_count` nodes with `node_mem_mib` of local
    /// DRAM each and a `cxl_mib` CXL device.
    pub fn new(node_count: usize, node_mem_mib: u64, cxl_mib: u64, model: LatencyModel) -> Self {
        let device = Arc::new(CxlDevice::with_capacity_mib(cxl_mib));
        Cluster::with_device(node_count, node_mem_mib, device, model)
    }

    /// Builds a cluster over an **existing** CXL device. This is the
    /// failover path: fabric-attached memory outlives the coordinator
    /// that populated it, so a successor cluster attaches to the same
    /// device and recovers the durable state it finds there instead of
    /// starting from an empty device.
    pub fn with_device(
        node_count: usize,
        node_mem_mib: u64,
        device: Arc<CxlDevice>,
        model: LatencyModel,
    ) -> Self {
        let rootfs = Arc::new(SharedFs::new());
        let nodes = (0..node_count)
            .map(|i| {
                Node::with_rootfs(
                    NodeConfig::default()
                        .with_id(i as u32)
                        .with_local_mem_mib(node_mem_mib)
                        .with_model(model.clone()),
                    Arc::clone(&device),
                    Arc::clone(&rootfs),
                )
            })
            .collect();
        Cluster {
            failed: vec![false; node_count],
            nodes,
            device,
            rootfs,
            index: RefCell::new(LoadIndex::default()),
        }
    }

    /// The paper's platform: two nodes, 16 GiB CXL device.
    pub fn paper_platform(node_mem_mib: u64) -> Self {
        Cluster::new(2, node_mem_mib, 16 * 1024, LatencyModel::calibrated())
    }

    /// Utilization scaled to integers for exact comparison.
    fn scaled_load(&self, idx: usize) -> u64 {
        (self.nodes[idx].frames().utilization() * 1e9) as u64
    }

    /// Index of the live node with the most free local memory, or `None`
    /// when every node has failed.
    ///
    /// Ties break deterministically toward the **lowest node index**: the
    /// index is ordered by `(load, node)`, so an evenly loaded cluster
    /// always places on the first live node and repeated runs schedule
    /// identically.
    ///
    /// Backed by the incremental [`LoadIndex`]: callers that mutate node
    /// memory should [`touch`](Self::touch) the node to keep lookups
    /// O(log n). Entries left stale by untracked load *increases* are
    /// repaired here before any candidate is returned; untracked
    /// *decreases* require the `touch` (see [`LoadIndex`] for why the
    /// lazy repair cannot see them).
    pub fn least_loaded(&self) -> Option<usize> {
        let mut ix = self.index.borrow_mut();
        // Cover nodes the index has never seen (first call, or a cluster
        // built before any touch).
        ix.grow(self.nodes.len());
        for i in 0..self.nodes.len() {
            if !ix.present[i] && !self.failed[i] {
                let load = self.scaled_load(i);
                ix.update(i, load);
            }
        }
        loop {
            let &(cached, i) = ix.entries.iter().next()?;
            if self.is_failed(i) {
                ix.remove(i);
                continue;
            }
            let actual = self.scaled_load(i);
            if actual == cached {
                #[cfg(feature = "check")]
                debug_assert_eq!(
                    Some(i),
                    self.scan_least_loaded(),
                    "load index disagrees with full scan"
                );
                return Some(i);
            }
            // Stale entry (the node was mutated without a touch):
            // correct it and re-evaluate the minimum.
            ix.update(i, actual);
        }
    }

    /// Reference O(n) scan of every live node, used to cross-check the
    /// index in `check` builds.
    #[cfg(feature = "check")]
    fn scan_least_loaded(&self) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for i in self.live_nodes() {
            let load = self.scaled_load(i);
            let improves = match best {
                None => true,
                Some((_, incumbent)) => load < incumbent,
            };
            if improves {
                best = Some((i, load));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Refreshes the placement index entry for `idx` after its memory
    /// use changed. The scheduler calls this after every dispatch,
    /// restore, deployment or reclamation that touched the node.
    pub fn touch(&mut self, idx: usize) {
        let ix = self.index.get_mut();
        if self.failed.get(idx).copied().unwrap_or(true) {
            ix.remove(idx);
        } else {
            let load = (self.nodes[idx].frames().utilization() * 1e9) as u64;
            ix.update(idx, load);
        }
    }

    /// Marks a node as failed; it is skipped by placement from now on.
    pub fn mark_failed(&mut self, idx: usize) {
        self.failed[idx] = true;
        self.index.get_mut().remove(idx);
    }

    /// Whether `idx` has been marked failed.
    pub fn is_failed(&self, idx: usize) -> bool {
        self.failed.get(idx).copied().unwrap_or(true)
    }

    /// Indices of the nodes still live.
    pub fn live_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|&i| !self.failed[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_shares_device_and_rootfs() {
        let c = Cluster::new(3, 64, 128, LatencyModel::calibrated());
        assert_eq!(c.nodes.len(), 3);
        c.rootfs.create("/shared", 10, 1);
        for n in &c.nodes {
            assert!(n.rootfs().exists("/shared"));
            assert!(Arc::ptr_eq(n.device(), &c.device));
        }
    }

    #[test]
    fn least_loaded_prefers_free_node() {
        let mut c = Cluster::new(2, 64, 16, LatencyModel::calibrated());
        // Load node 0.
        for _ in 0..1000 {
            c.nodes[0].frames_mut().alloc_zeroed().unwrap();
        }
        assert_eq!(c.least_loaded(), Some(1));
    }

    #[test]
    fn least_loaded_skips_failed_nodes() {
        let mut c = Cluster::new(3, 64, 16, LatencyModel::calibrated());
        // Node 2 is the emptiest but dead; placement must skip it.
        for _ in 0..1000 {
            c.nodes[0].frames_mut().alloc_zeroed().unwrap();
        }
        for _ in 0..500 {
            c.nodes[1].frames_mut().alloc_zeroed().unwrap();
        }
        c.mark_failed(2);
        assert!(c.is_failed(2));
        assert_eq!(c.least_loaded(), Some(1));
        assert_eq!(c.live_nodes().collect::<Vec<_>>(), vec![0, 1]);
        // A fully failed cluster has nowhere to place.
        c.mark_failed(0);
        c.mark_failed(1);
        assert_eq!(c.least_loaded(), None);
    }

    #[test]
    fn least_loaded_breaks_ties_toward_lowest_index() {
        // An evenly loaded cluster always places on the first live node.
        let mut c = Cluster::new(4, 64, 16, LatencyModel::calibrated());
        assert_eq!(c.least_loaded(), Some(0), "all empty: lowest index wins");
        c.mark_failed(0);
        assert_eq!(c.least_loaded(), Some(1), "ties among live nodes only");
        // Load node 1: nodes 2 and 3 now tie for emptiest.
        for _ in 0..100 {
            c.nodes[1].frames_mut().alloc_zeroed().unwrap();
        }
        assert_eq!(c.least_loaded(), Some(2), "equal load: lowest index wins");
        // Strictly lighter nodes still beat index order.
        for i in 2..4 {
            for _ in 0..200 {
                c.nodes[i].frames_mut().alloc_zeroed().unwrap();
            }
        }
        assert_eq!(c.least_loaded(), Some(1), "strict improvement wins");
    }

    #[test]
    fn load_index_tracks_touches_and_self_repairs() {
        let mut c = Cluster::new(3, 64, 16, LatencyModel::calibrated());
        assert_eq!(c.least_loaded(), Some(0));
        // Scheduler-style mutation: allocate then touch.
        for _ in 0..300 {
            c.nodes[0].frames_mut().alloc_zeroed().unwrap();
        }
        c.touch(0);
        assert_eq!(c.least_loaded(), Some(1));
        // Untracked mutation (no touch): the lookup must still repair
        // the stale entry and agree with a full scan.
        for _ in 0..600 {
            c.nodes[1].frames_mut().alloc_zeroed().unwrap();
        }
        assert_eq!(c.least_loaded(), Some(2));
        // Freeing memory moves a node back to the front once touched.
        let freed: Vec<_> = (0..300).map(|_| ()).collect();
        drop(freed);
        c.touch(1);
        c.touch(2);
        assert_eq!(c.least_loaded(), Some(2));
        c.mark_failed(2);
        assert_eq!(c.least_loaded(), Some(0));
    }

    #[test]
    fn load_index_agrees_with_scan_over_a_seeded_64_node_trace() {
        // Test-local splitmix64: the trace must be deterministic but
        // must not perturb any simulation RNG stream.
        fn next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        // Reference brute-force scan, independent of the index (and of
        // the `check`-only `scan_least_loaded`).
        fn scan(c: &Cluster) -> Option<usize> {
            let mut best: Option<(usize, u64)> = None;
            for i in c.live_nodes() {
                let load = (c.nodes[i].frames().utilization() * 1e9) as u64;
                if best.is_none_or(|(_, incumbent)| load < incumbent) {
                    best = Some((i, load));
                }
            }
            best.map(|(i, _)| i)
        }

        const NODES: usize = 64;
        let mut c = Cluster::new(NODES, 16, 64, LatencyModel::calibrated());
        let mut held: Vec<Vec<node_os::Pfn>> = vec![Vec::new(); NODES];
        let mut rng = 0x5EED_u64;
        for step in 0..2000u32 {
            let op = next(&mut rng) % 100;
            let i = (next(&mut rng) % NODES as u64) as usize;
            if op < 50 {
                // Scheduler-style placement: allocate, then touch.
                if !c.is_failed(i) {
                    for _ in 0..=(next(&mut rng) % 32) {
                        if let Ok(pfn) = c.nodes[i].frames_mut().alloc_zeroed() {
                            held[i].push(pfn);
                        }
                    }
                    c.touch(i);
                }
            } else if op < 70 {
                // Instance teardown: free, then touch — untracked
                // decreases are exactly what the lazy repair cannot see.
                if !c.is_failed(i) {
                    for _ in 0..=(next(&mut rng) % 16) {
                        if let Some(pfn) = held[i].pop() {
                            c.nodes[i].frames_mut().dec_ref(pfn);
                        }
                    }
                    c.touch(i);
                }
            } else if op < 85 {
                // Untracked growth (tools and tests mutate nodes
                // directly): the lookup must self-repair.
                if !c.is_failed(i) {
                    if let Ok(pfn) = c.nodes[i].frames_mut().alloc_zeroed() {
                        held[i].push(pfn);
                    }
                }
            } else if op < 90 {
                // Crash teardown in the porter's order: reclaim the
                // node's memory, then mark it failed (which drops the
                // index entry — no touch on the way down).
                if !c.is_failed(i) && c.live_nodes().count() > 8 {
                    for pfn in held[i].drain(..) {
                        c.nodes[i].frames_mut().dec_ref(pfn);
                    }
                    c.mark_failed(i);
                }
            } else {
                // Fairness-deferral shape: repeated lookups with no
                // mutation in between must be stable.
                assert_eq!(c.least_loaded(), c.least_loaded(), "step {step}");
            }
            let got = c.least_loaded();
            assert_eq!(got, scan(&c), "index diverged from scan at step {step}");
            if let Some(winner) = got {
                assert!(
                    !c.is_failed(winner),
                    "crashed node {winner} won placement at step {step}"
                );
            }
        }
        assert!(
            c.live_nodes().count() >= 8,
            "trace should leave survivors to keep the assertions meaningful"
        );
    }

    #[test]
    fn paper_platform_geometry() {
        let c = Cluster::paper_platform(1024);
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.device.capacity_pages(), 16 * 1024 * 256);
    }
}
