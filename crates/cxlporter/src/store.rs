//! The checkpoint object store (§5).
//!
//! CXLporter "maintains a distributed object store in the CXL fabric that
//! associates unique tuples of `<user, function>` with checkpoint
//! identifiers (CIDs) of CXL-stored checkpoints". The store is queried
//! before every restore and written after every checkpoint; CXLporter is
//! also responsible for reclaiming checkpoints under CXL memory pressure.

use std::collections::BTreeMap;

use rfork::CheckpointId;
use simclock::SimTime;

/// A stored checkpoint with its identifier and bookkeeping.
#[derive(Debug)]
pub struct StoredCheckpoint<C> {
    /// The checkpoint identifier.
    pub cid: CheckpointId,
    /// The mechanism-specific checkpoint.
    pub checkpoint: C,
    /// When it was stored.
    pub stored_at: SimTime,
    /// Restores served from this checkpoint.
    pub restores: u64,
}

/// The `<function> → CID → checkpoint` object store.
///
/// Keys are `<user, function>` tuples in the paper; the evaluation uses a
/// single tenant, so the function name suffices.
#[derive(Debug)]
pub struct ObjectStore<C> {
    entries: BTreeMap<String, StoredCheckpoint<C>>,
    next_cid: u64,
}

impl<C> Default for ObjectStore<C> {
    fn default() -> Self {
        ObjectStore {
            entries: BTreeMap::new(),
            next_cid: 1,
        }
    }
}

impl<C> ObjectStore<C> {
    /// An empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Stores a checkpoint for `function`, returning its new CID. Replaces
    /// (and returns) any previous checkpoint for the function.
    pub fn put(
        &mut self,
        function: &str,
        checkpoint: C,
        now: SimTime,
    ) -> (CheckpointId, Option<C>) {
        let cid = CheckpointId(self.next_cid);
        self.next_cid += 1;
        let old = self.entries.insert(
            function.to_owned(),
            StoredCheckpoint {
                cid,
                checkpoint,
                stored_at: now,
                restores: 0,
            },
        );
        (cid, old.map(|s| s.checkpoint))
    }

    /// Queries the checkpoint for `function`.
    pub fn get(&self, function: &str) -> Option<&StoredCheckpoint<C>> {
        self.entries.get(function)
    }

    /// Queries and counts a restore.
    pub fn get_for_restore(&mut self, function: &str) -> Option<&StoredCheckpoint<C>> {
        let entry = self.entries.get_mut(function)?;
        entry.restores += 1;
        Some(entry)
    }

    /// `true` if a checkpoint exists for `function`.
    pub fn contains(&self, function: &str) -> bool {
        self.entries.contains_key(function)
    }

    /// Removes and returns the checkpoint for `function` (reclamation).
    pub fn remove(&mut self, function: &str) -> Option<C> {
        self.entries.remove(function).map(|s| s.checkpoint)
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(function, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StoredCheckpoint<C>)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The least-recently-restored function (reclamation victim).
    pub fn coldest(&self) -> Option<&str> {
        self.entries
            .iter()
            .min_by_key(|(_, s)| s.restores)
            .map(|(k, _)| k.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_with_fresh_cids() {
        let mut s: ObjectStore<&'static str> = ObjectStore::new();
        let (cid1, old) = s.put("bert", "ckpt-a", SimTime::ZERO);
        assert!(old.is_none());
        let (cid2, old) = s.put("bert", "ckpt-b", SimTime::ZERO);
        assert_eq!(old, Some("ckpt-a"));
        assert_ne!(cid1, cid2);
        assert_eq!(s.get("bert").unwrap().checkpoint, "ckpt-b");
        assert!(s.contains("bert"));
        assert!(!s.contains("rnn"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn restore_counting_and_coldest() {
        let mut s: ObjectStore<u32> = ObjectStore::new();
        s.put("a", 1, SimTime::ZERO);
        s.put("b", 2, SimTime::ZERO);
        s.get_for_restore("a");
        s.get_for_restore("a");
        s.get_for_restore("b");
        assert_eq!(s.get("a").unwrap().restores, 2);
        assert_eq!(s.coldest(), Some("b"));
        assert_eq!(s.remove("b"), Some(2));
        assert_eq!(s.coldest(), Some("a"));
        assert!(s.remove("b").is_none());
    }
}
