//! CXLporter: a horizontal autoscaler for serverless functions on CXL
//! fabrics (§5).
//!
//! CXLporter exploits a remote-fork mechanism (CXLfork by design; the
//! CRIU-CXL and Mitosis-CXL baselines for comparison, §7.2) to scale
//! function instances across a cluster: it checkpoints functions at the
//! right moment, stores checkpoints in a CXL-resident object store, clones
//! new instances into pre-provisioned *ghost containers*, steers CXLfork's
//! tiering policies from observed SLOs and memory pressure, and shrinks
//! keep-alive windows when nodes run hot.
//!
//! The crate is generic over [`rfork::RemoteFork`], so the Fig. 10
//! comparisons are literally the same autoscaler with a different
//! mechanism plugged in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod porter;
pub mod store;

pub use cluster::Cluster;
pub use porter::{CxlPorter, FairnessConfig, PorterConfig, PorterReport};
pub use store::{ObjectStore, StoredCheckpoint};

#[cfg(test)]
mod tests {
    use super::*;
    use cxlfork::CxlFork;
    use rfork::RemoteFork;
    use simclock::{LatencyModel, SimDuration};
    use trace_gen::{generate, Invocation, TraceConfig};

    fn small_trace(functions: &[&str], rps: f64, secs: f64, seed: u64) -> Vec<Invocation> {
        generate(&TraceConfig {
            duration_secs: secs,
            total_rps: rps,
            ..TraceConfig::paper_default(
                functions
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect(),
                seed,
            )
        })
    }

    fn porter_with(config: PorterConfig, node_mem_mib: u64) -> CxlPorter<CxlFork> {
        let cluster = Cluster::new(2, node_mem_mib, 8192, LatencyModel::calibrated());
        CxlPorter::new(cluster, CxlFork::new(), config)
    }

    /// A deterministic trace: one request to establish the function, a
    /// calm warm phase reaching the checkpoint threshold, then a burst of
    /// `burst` simultaneous requests.
    fn warm_then_burst(function: &str, checkpoint_after: u64, burst: usize) -> Vec<Invocation> {
        let mut trace = Vec::new();
        // Sequential phase: 1 s apart so each request finds the instance
        // idle again.
        for i in 0..=checkpoint_after {
            trace.push(Invocation {
                time: simclock::SimTime::from_nanos(i * 1_000_000_000),
                function: function.to_owned(),
                owner: 0,
            });
        }
        let burst_at = (checkpoint_after + 3) * 1_000_000_000;
        for i in 0..burst {
            trace.push(Invocation {
                time: simclock::SimTime::from_nanos(burst_at + i as u64),
                function: function.to_owned(),
                owner: 0,
            });
        }
        trace
    }

    #[test]
    fn first_request_is_cold_then_warm_hits_dominate() {
        let mut porter = porter_with(PorterConfig::cxlfork_dynamic(), 4096);
        let trace = small_trace(&["Float"], 5.0, 4.0, 1);
        let report = porter.run_trace(&trace);
        // The first request cold-starts; requests arriving during that
        // window also cold-start (the burst feed-on-itself effect, §7.2).
        assert!(report.full_cold >= 1);
        assert!(report.warm_hits > report.full_cold);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.overall.len(), trace.len());
    }

    #[test]
    fn checkpoint_enables_restores_on_bursts() {
        let mut porter = porter_with(
            PorterConfig {
                checkpoint_after: 4,
                ..PorterConfig::cxlfork_dynamic()
            },
            4096,
        );
        let trace = warm_then_burst("Json", 4, 8);
        let report = porter.run_trace(&trace);
        assert_eq!(report.checkpoints, 1);
        assert_eq!(porter.stored_checkpoints(), 1);
        assert_eq!(
            report.full_cold, 1,
            "only the very first deployment is cold"
        );
        // The burst finds one idle warm instance; the other 7 requests
        // restore from the checkpoint.
        assert_eq!(report.restores, 7, "{report:?}");
        assert_eq!(
            report.full_cold + report.dropped + report.warm_hits + report.restores,
            trace.len() as u64
        );
    }

    #[test]
    fn ghost_containers_bound_startup_latency() {
        let mut porter = porter_with(PorterConfig::cxlfork_dynamic(), 4096);
        let trace = small_trace(&["Pyaes"], 30.0, 3.0, 3);
        let report = porter.run_trace(&trace);
        // With ghosts + CXLfork, even tail restores avoid the 130 ms
        // container creation; overall P99 stays near a cold CXLfork
        // restore + execution.
        let mut overall = report.overall;
        let p99 = overall.p99();
        assert!(
            p99 < SimDuration::from_millis(700),
            "P99 {p99} should avoid full cold-start costs"
        );
    }

    #[test]
    fn criu_restores_pay_container_creation_cxlfork_does_not() {
        let trace = warm_then_burst("Json", 4, 8);

        let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
        let criu = criu_cxl::CriuCxl::new(std::sync::Arc::new(cxl_mem::CxlFs::new(
            std::sync::Arc::clone(&cluster.device),
        )));
        let mut criu_porter = CxlPorter::new(
            cluster,
            criu,
            PorterConfig {
                checkpoint_after: 4,
                ..PorterConfig::criu()
            },
        );
        let mut criu_report = criu_porter.run_trace(&trace);

        let mut fork_porter = porter_with(
            PorterConfig {
                checkpoint_after: 4,
                ..PorterConfig::cxlfork_dynamic()
            },
            4096,
        );
        let mut fork_report = fork_porter.run_trace(&trace);

        assert!(criu_report.restores > 0);
        assert!(fork_report.restores > 0);
        // CRIU restores pay container creation (no ghost support, §6.2):
        // every burst restore exceeds the 130 ms container cost. CXLfork
        // restores into ghost containers: only the single full cold start
        // exceeds it.
        let over_130 = |h: &mut simclock::stats::LatencyHistogram| {
            let mut count = 0;
            for q in 1..=100 {
                if h.percentile(q as f64 / 100.0) > SimDuration::from_millis(130) {
                    count += 1;
                }
            }
            count
        };
        assert!(
            over_130(&mut criu_report.overall) > 50,
            "CRIU bursts are slow"
        );
        assert!(
            over_130(&mut fork_report.overall) <= 10,
            "CXLfork bursts are fast"
        );
    }

    #[test]
    fn memory_pressure_triggers_recycling_not_collapse() {
        // Nodes too small to hold every instance the bursts want (CXLfork
        // instances are memory-frugal, so the nodes must be tiny).
        let mut porter = porter_with(
            PorterConfig {
                checkpoint_after: 4,
                ghost_pool_per_node: 4,
                ..PorterConfig::cxlfork_dynamic()
            },
            40,
        );
        let mut trace = warm_then_burst("Float", 4, 10);
        // A second wave of a *different* function: its cold deployment
        // needs the full footprint, forcing idle Float instances to be
        // reclaimed.
        let last = trace.last().unwrap().time;
        for i in 0..4 {
            trace.push(Invocation {
                time: last + SimDuration::from_secs(5) + SimDuration::from_nanos(i),
                function: "Json".into(),
                owner: 0,
            });
        }
        let report = porter.run_trace(&trace);
        assert!(
            report.recycles > 0,
            "constrained nodes must recycle: {report:?}"
        );
        // The system keeps serving: most requests complete.
        let served = report.warm_hits + report.restores + report.full_cold;
        assert!(
            served as f64 / trace.len() as f64 > 0.7,
            "served {served}/{}: {report:?}",
            trace.len()
        );
    }

    #[test]
    fn maintenance_resets_checkpoint_access_bits() {
        let mut porter = porter_with(
            PorterConfig {
                maintenance_interval: SimDuration::from_millis(500),
                ..PorterConfig::cxlfork_dynamic()
            },
            4096,
        );
        let trace = small_trace(&["Json"], 40.0, 4.0, 5);
        porter.run_trace(&trace);
        // After the run, maintenance has reset A bits at least once; the
        // checkpoint's current working set reflects only recent restores.
        // (Indirect check: the checkpoint exists and has bounded hot set.)
        assert_eq!(porter.stored_checkpoints(), 1);
    }

    #[test]
    fn per_function_keep_alive_overrides_the_global_window() {
        let mut config = PorterConfig::cxlfork_dynamic();
        config.checkpoint_after = 2;
        config
            .per_function_keep_alive
            .insert("Float".into(), SimDuration::from_secs(1));
        let mut porter = porter_with(config, 4096);
        // Two requests 0.5 s apart (inside the window), then one 10 s
        // later (outside it) — the last must cold-path again.
        let t = |s_ns: u64| Invocation {
            time: simclock::SimTime::from_nanos(s_ns),
            function: "Float".into(),
            owner: 0,
        };
        let trace = vec![t(0), t(1_000_000_000), t(1_600_000_000), t(12_000_000_000)];
        let report = porter.run_trace(&trace);
        // Request 2 and 3 hit warm; request 4 found the instance evicted.
        assert_eq!(report.warm_hits, 2, "{report:?}");
        assert_eq!(report.full_cold + report.restores, 2, "{report:?}");
    }

    #[test]
    fn cxl_pressure_reclaims_coldest_checkpoints() {
        // A CXL device barely big enough for one checkpoint: storing the
        // second function's checkpoint must evict the first.
        let cluster = Cluster::new(2, 2048, 40, LatencyModel::calibrated());
        let device = std::sync::Arc::clone(&cluster.device);
        let mut porter = CxlPorter::new(
            cluster,
            CxlFork::new(),
            PorterConfig {
                checkpoint_after: 2,
                cxl_reclaim_threshold: 0.7,
                ..PorterConfig::cxlfork_dynamic()
            },
        );
        let mut trace = warm_then_burst("Float", 2, 1);
        let offset = trace.last().unwrap().time + SimDuration::from_secs(3);
        for i in 0..4u64 {
            trace.push(Invocation {
                time: offset + SimDuration::from_secs(i),
                function: "Json".into(),
                owner: 0,
            });
        }
        let report = porter.run_trace(&trace);
        assert_eq!(report.checkpoints, 2);
        assert!(
            report.checkpoint_reclaims >= 1,
            "pressure must reclaim: {report:?}"
        );
        assert_eq!(porter.stored_checkpoints(), 1, "only the newest survives");
        assert!(device.utilization() <= 0.75, "device pressure relieved");
    }

    #[test]
    fn out_of_order_trace_is_rejected_with_typed_error() {
        let mut porter = porter_with(PorterConfig::cxlfork_dynamic(), 4096);
        let t = |ns: u64| Invocation {
            time: simclock::SimTime::from_nanos(ns),
            function: "Float".into(),
            owner: 0,
        };
        let trace = vec![t(5), t(3)];
        let err = porter.try_run_trace(&trace).unwrap_err();
        assert!(matches!(
            err,
            trace_gen::TraceError::OutOfOrder { index: 1, .. }
        ));
        // Nothing was dispatched.
        assert_eq!(porter.live_instances(), 0);
    }

    #[test]
    fn custom_catalog_resolves_micro_functions() {
        let catalog =
            faas::Catalog::from_specs((0..3).map(|i| faas::micro(&format!("m{i}"), 4, 64, 3)));
        let cluster = Cluster::new(2, 256, 2048, LatencyModel::calibrated());
        let mut porter = CxlPorter::new(cluster, CxlFork::new(), PorterConfig::cxlfork_dynamic())
            .with_catalog(catalog);
        let t = |ns: u64, f: &str| Invocation {
            time: simclock::SimTime::from_nanos(ns),
            function: f.into(),
            owner: 0,
        };
        let trace = vec![
            t(0, "m0"),
            t(1_000_000_000, "M1"), // case-insensitive, like by_name
            t(2_000_000_000, "m2"),
            t(3_000_000_000, "Float"), // not in this catalog: ignored
        ];
        let report = porter.run_trace(&trace);
        assert_eq!(report.full_cold, 3, "{report:?}");
        assert_eq!(report.overall.len(), 3, "unknown function is skipped");
    }

    #[test]
    fn fairness_quota_defers_and_drops_over_quota_arrivals() {
        // One owner hammering one function with quota 1: simultaneous
        // arrivals must serialize behind the single busy instance.
        let mut porter = porter_with(
            PorterConfig {
                fairness: Some(FairnessConfig {
                    max_inflight_per_owner: 1,
                    max_deferrals: 32,
                }),
                ..PorterConfig::cxlfork_dynamic()
            },
            4096,
        );
        let t = |ns: u64| Invocation {
            time: simclock::SimTime::from_nanos(ns),
            function: "Float".into(),
            owner: 7,
        };
        let trace = vec![t(0), t(1), t(2), t(3)];
        let report = porter.run_trace(&trace);
        assert!(report.fair_deferrals >= 3, "{report:?}");
        assert_eq!(report.fair_drops, 0, "{report:?}");
        assert_eq!(
            report.warm_hits + report.restores + report.full_cold,
            4,
            "all four eventually served: {report:?}"
        );
        assert_eq!(report.per_owner_served.get(&7), Some(&4));
        // With the budget cut to zero deferrals, over-quota arrivals drop.
        let mut strict = porter_with(
            PorterConfig {
                fairness: Some(FairnessConfig {
                    max_inflight_per_owner: 1,
                    max_deferrals: 0,
                }),
                ..PorterConfig::cxlfork_dynamic()
            },
            4096,
        );
        let report = strict.run_trace(&[t(0), t(1), t(2), t(3)]);
        assert_eq!(report.fair_drops, 3, "{report:?}");
        assert_eq!(report.per_owner_served.get(&7), Some(&1));
    }

    #[test]
    fn fairness_off_reports_no_fairness_activity() {
        let mut porter = porter_with(PorterConfig::cxlfork_dynamic(), 4096);
        let report = porter.run_trace(&small_trace(&["Float"], 20.0, 2.0, 9));
        assert_eq!(report.fair_deferrals, 0);
        assert_eq!(report.fair_drops, 0);
    }

    #[test]
    fn state_machines_account_phases() {
        let mut porter = porter_with(
            PorterConfig {
                checkpoint_after: 4,
                ..PorterConfig::cxlfork_dynamic()
            },
            4096,
        );
        let trace = warm_then_burst("Json", 4, 8);
        let report = porter.run_trace(&trace);
        let machines = porter.machines();
        use cxl_sim::NodePhase;
        assert_eq!(
            machines.phase_entries_total(NodePhase::ColdDeploying),
            report.full_cold
        );
        assert_eq!(
            machines.phase_entries_total(NodePhase::Restoring),
            report.restores
        );
        assert_eq!(
            machines.phase_entries_total(NodePhase::Dispatching),
            report.warm_hits
        );
        assert_eq!(machines.crashed_count(), 0);
        assert!(report.engine_events >= trace.len() as u64);
    }

    #[test]
    fn mechanism_is_pluggable() {
        let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
        let mut porter = CxlPorter::new(
            cluster,
            mitosis_cxl::MitosisCxl::new(),
            PorterConfig::mitosis(),
        );
        assert_eq!(porter.mechanism().name(), "Mitosis-CXL");
        let trace = small_trace(&["Pyaes"], 20.0, 2.0, 6);
        let report = porter.run_trace(&trace);
        assert!(!report.overall.is_empty());
        assert_eq!(report.dropped, 0);
    }
}
