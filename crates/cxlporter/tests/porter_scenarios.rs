//! Deterministic autoscaler scenarios: ghost-pool accounting, dynamic
//! hybrid promotion, measurement-window boundaries, and cross-node
//! balancing.

use cxlfork::CxlFork;
use cxlporter::{Cluster, CxlPorter, PorterConfig};
use rfork::RemoteFork;
use simclock::{LatencyModel, SimDuration, SimTime};
use trace_gen::Invocation;

fn at(ns: u64, function: &str) -> Invocation {
    Invocation {
        time: SimTime::from_nanos(ns),
        function: function.to_owned(),
        owner: 0,
    }
}

const SEC: u64 = 1_000_000_000;

fn porter(config: PorterConfig, mem_mib: u64) -> CxlPorter<CxlFork> {
    let cluster = Cluster::new(2, mem_mib, 8192, LatencyModel::calibrated());
    CxlPorter::new(cluster, CxlFork::new(), config)
}

/// Sequential warm phase reaching `n` invocations of `f`.
fn warm_phase(f: &str, n: u64) -> Vec<Invocation> {
    (0..n).map(|i| at(i * SEC, f)).collect()
}

#[test]
fn burst_concurrency_equals_instance_count() {
    // After a checkpoint exists, a k-wide simultaneous burst is served by
    // exactly 1 warm instance + (k-1) restores, and afterwards k
    // instances are live.
    let mut p = porter(
        PorterConfig {
            checkpoint_after: 3,
            ..PorterConfig::cxlfork_dynamic()
        },
        4096,
    );
    let mut trace = warm_phase("Json", 4);
    for i in 0..6 {
        trace.push(at(6 * SEC + i, "Json"));
    }
    let report = p.run_trace(&trace);
    assert_eq!(report.full_cold, 1);
    assert_eq!(report.restores, 5);
    assert_eq!(p.live_instances(), 6);
}

#[test]
fn dynamic_tiering_promotes_thrashing_functions_to_hybrid() {
    // BFS restored under MoW runs warm invocations far above its local
    // speed; after enough SLO breaches, new restores switch to hybrid.
    let mut p = porter(
        PorterConfig {
            checkpoint_after: 2,
            keep_alive: SimDuration::from_secs(3),
            ..PorterConfig::cxlfork_dynamic()
        },
        8192,
    );
    let mut trace = warm_phase("BFS", 3);
    // Alternate: bursts (forcing restores) then warm hits on the restored
    // (slow) instances, repeatedly, so breaches accumulate.
    let mut t = 5 * SEC;
    for _ in 0..6 {
        trace.push(at(t, "BFS"));
        trace.push(at(t + 1, "BFS"));
        t += SEC; // warm re-use of the restored instances
        trace.push(at(t, "BFS"));
        trace.push(at(t + 1, "BFS"));
        t += 4 * SEC; // beyond keep-alive: instances evicted
    }
    let report = p.run_trace(&trace);
    assert!(report.restores >= 4, "{report:?}");
    assert!(
        report.hybrid_restores > 0,
        "SLO breaches must promote BFS to hybrid: {report:?}"
    );
}

#[test]
fn measurement_window_is_half_open() {
    let mut p = porter(PorterConfig::cxlfork_dynamic(), 4096);
    p.set_measure_from(SimTime::from_nanos(2 * SEC));
    // One request exactly at the boundary (measured), one before (not).
    let trace = vec![at(SEC, "Float"), at(2 * SEC, "Float")];
    let report = p.run_trace(&trace);
    assert_eq!(report.overall.len(), 1);
}

#[test]
fn cold_starts_balance_across_nodes() {
    // Simultaneous cold deployments of two functions land on different
    // nodes (least-loaded placement).
    let mut p = porter(PorterConfig::cxlfork_dynamic(), 4096);
    let trace = vec![at(0, "Float"), at(1, "Json")];
    let report = p.run_trace(&trace);
    assert_eq!(report.full_cold, 2);
    let peaks = &report.peak_local_pages;
    assert!(peaks.iter().all(|p| *p > 0), "both nodes used: {peaks:?}");
}

#[test]
fn report_accounting_is_conserved() {
    let mut p = porter(
        PorterConfig {
            checkpoint_after: 2,
            ..PorterConfig::cxlfork_dynamic()
        },
        4096,
    );
    let mut trace = warm_phase("Pyaes", 3);
    for i in 0..4 {
        trace.push(at(5 * SEC + i, "Pyaes"));
    }
    trace.push(at(8 * SEC, "Pyaes"));
    let report = p.run_trace(&trace);
    assert_eq!(
        report.warm_hits + report.restores + report.full_cold + report.dropped,
        trace.len() as u64
    );
    assert_eq!(
        report.overall.len() as u64,
        trace.len() as u64 - report.dropped
    );
    assert_eq!(report.checkpoints, 1);
    assert!(report.final_cxl_pages > 0);
}

/// A porter whose mechanism routes checkpoint data pages through a
/// content-addressed image store shared with the porter itself.
fn store_porter(config: PorterConfig, mem_mib: u64) -> CxlPorter<CxlFork> {
    use std::sync::Arc;
    let cluster = Cluster::new(2, mem_mib, 8192, LatencyModel::calibrated());
    let store = Arc::new(cxl_store::Store::new(Arc::clone(&cluster.device)));
    CxlPorter::new(cluster, CxlFork::with_store(Arc::clone(&store)), config).with_image_store(store)
}

#[test]
fn shared_templates_dedup_device_pages_below_the_private_baseline() {
    // Two functions whose runtime layouts share half their library pages
    // (template_overlap = 0.5) checkpoint identical page content; the
    // content-addressed store resolves those to one device page each,
    // so the device ends the run measurably lighter than the private
    // no-store baseline on the identical trace.
    let config = || PorterConfig {
        checkpoint_after: 2,
        template_overlap: 0.5,
        ..PorterConfig::cxlfork_dynamic()
    };
    let mut trace = Vec::new();
    for i in 0..3 {
        trace.push(at(2 * i * SEC, "Float"));
        trace.push(at((2 * i + 1) * SEC, "Json"));
    }

    let mut plain = porter(config(), 4096);
    let plain_report = plain.run_trace(&trace);
    let plain_used = plain.cluster.device.used_pages();

    let mut deduped = store_porter(config(), 4096);
    let store_report = deduped.run_trace(&trace);
    let store_used = deduped.cluster.device.used_pages();

    assert_eq!(plain_report.checkpoints, 2);
    assert_eq!(store_report.checkpoints, 2);
    assert_eq!(plain_report.overall.len(), store_report.overall.len());
    assert!(store_report.store_deduped_pages > 0, "{store_report:?}");
    assert_eq!(plain_report.store_deduped_pages, 0);
    assert!(
        store_used < plain_used,
        "store must shrink the device footprint: {store_used} vs {plain_used}"
    );
}

#[test]
fn evicted_image_turns_the_next_restore_into_a_cold_redeploy() {
    use std::sync::Arc;
    let mut p = store_porter(
        PorterConfig {
            checkpoint_after: 2,
            keep_alive: SimDuration::from_secs(3),
            ..PorterConfig::cxlfork_dynamic()
        },
        4096,
    );
    let warm = warm_phase("Json", 4);
    let report = p.run_trace(&warm);
    assert_eq!(report.checkpoints, 1);
    assert_eq!(p.stored_checkpoints(), 1);

    // Evict the image behind the porter's back (as the capacity GC
    // would after its owner node crashed): strip the owner lease, then
    // sweep with a lease table that considers every holder dead.
    let istore = Arc::clone(p.image_store().expect("attached above"));
    let entry = p.store().get("Json").expect("just checkpointed");
    let image = cxl_store::ImageId(
        p.mechanism()
            .image_id(&entry.checkpoint)
            .expect("store-backed checkpoints carry an image"),
    );
    istore
        .set_lease(image, None)
        .expect("published image is committed");
    let dead_leases = cxl_fault::LeaseTable::new(SimDuration::from_secs(1));
    let evicted = istore.evict_for(u64::MAX, &dead_leases, SimTime::from_nanos(100 * SEC));
    assert_eq!(evicted.images, 1);
    assert!(!istore.is_live(image));

    // Long after keep-alive expiry no warm instance survives, so the
    // next request goes to cold start, detects the miss, drops the
    // stale checkpoint, and re-deploys cold instead of failing.
    let report = p.run_trace(&[at(100 * SEC, "Json")]);
    assert_eq!(report.image_misses, 1);
    assert_eq!(report.full_cold, 1);
    assert_eq!(report.restores, 0);
    assert_eq!(report.dropped, 0);
    assert_eq!(p.stored_checkpoints(), 0);
}

#[test]
fn fabric_pool_routes_checkpoints_by_placement_policy() {
    use std::sync::Arc;

    use cxl_fabric::{DevicePool, FabricConfig, FabricTopology, PlacementPolicy};
    use cxl_mem::CxlDevice;

    let pool = |load_permille: u32| {
        let topology = Arc::new(FabricTopology::new(FabricConfig {
            devices: 2,
            background_load_permille: load_permille,
            ..FabricConfig::default()
        }));
        let devices = (0..2).map(|_| Arc::new(CxlDevice::new(64))).collect();
        Arc::new(DevicePool::attach(topology, devices))
    };
    let config = |placement| PorterConfig {
        checkpoint_after: 2,
        placement,
        ..PorterConfig::cxlfork_dynamic()
    };
    let two_fn_trace = || {
        (0..3)
            .flat_map(|i| [at(i * SEC, "Json"), at(i * SEC + 1, "Float")])
            .collect::<Vec<_>>()
    };

    // Without a pool the placement machinery stays cold.
    let mut bare = porter(config(PlacementPolicy::Locality), 4096);
    let bare_report = bare.run_trace(&two_fn_trace());
    assert_eq!(bare_report.checkpoints, 2);
    assert!(bare_report.fabric_placements.is_empty());

    // Stripe places every function's first image on device 0 (nth = 0).
    let mut striped = porter(config(PlacementPolicy::Stripe), 4096).with_device_pool(pool(0));
    let striped_report = striped.run_trace(&two_fn_trace());
    assert_eq!(striped_report.checkpoints, 2);
    assert_eq!(
        striped_report.fabric_placements,
        [(0, 2)].into_iter().collect()
    );

    // Locality hashes the function name; every checkpoint lands
    // somewhere, and the routing is deterministic run to run.
    let run_locality = || {
        let mut p = porter(config(PlacementPolicy::Locality), 4096).with_device_pool(pool(0));
        p.run_trace(&two_fn_trace())
    };
    let first = run_locality();
    assert_eq!(first.fabric_placements.values().sum::<u64>(), 2);
    assert_eq!(first, run_locality());

    // Heavy background load on the switch shows up in checkpoint cost:
    // the loaded run can only be slower than the idle-fabric run.
    let mut loaded = porter(config(PlacementPolicy::Locality), 4096).with_device_pool(pool(900));
    let loaded_report = loaded.run_trace(&two_fn_trace());
    assert_eq!(loaded_report.checkpoints, 2);
    assert!(
        loaded_report.overall.mean() >= first.overall.mean(),
        "background fabric load must not make runs faster: {:?} < {:?}",
        loaded_report.overall.mean(),
        first.overall.mean()
    );
}
