//! Property-based tests for the checkpoint object store: CID uniqueness,
//! replace semantics, and coldest-victim selection.

use cxlporter::ObjectStore;
use proptest::prelude::*;
use simclock::SimTime;

proptest! {
    #[test]
    fn cids_are_unique_and_monotonic(
        ops in prop::collection::vec(("[a-f]", any::<u32>()), 1..100)
    ) {
        let mut store: ObjectStore<u32> = ObjectStore::new();
        let mut last_cid = 0u64;
        for (name, value) in ops {
            let (cid, _) = store.put(&name, value, SimTime::ZERO);
            prop_assert!(cid.0 > last_cid, "cid {cid} not monotonic");
            last_cid = cid.0;
            prop_assert_eq!(store.get(&name).unwrap().checkpoint, value);
        }
        prop_assert!(store.len() <= 6, "at most one entry per function name");
    }

    #[test]
    fn replace_returns_the_old_checkpoint(values in prop::collection::vec(any::<u32>(), 2..20)) {
        let mut store: ObjectStore<u32> = ObjectStore::new();
        let mut previous: Option<u32> = None;
        for v in values {
            let (_, old) = store.put("f", v, SimTime::ZERO);
            prop_assert_eq!(old, previous);
            previous = Some(v);
        }
        prop_assert_eq!(store.len(), 1);
    }

    #[test]
    fn coldest_is_the_least_restored(
        restores in prop::collection::vec(0usize..5, 2..6)
    ) {
        let mut store: ObjectStore<usize> = ObjectStore::new();
        for (i, _) in restores.iter().enumerate() {
            store.put(&format!("f{i}"), i, SimTime::ZERO);
        }
        for (i, n) in restores.iter().enumerate() {
            for _ in 0..*n {
                store.get_for_restore(&format!("f{i}"));
            }
        }
        let min = restores.iter().min().copied().unwrap();
        let coldest = store.coldest().unwrap().to_owned();
        let idx: usize = coldest[1..].parse().unwrap();
        prop_assert_eq!(restores[idx], min, "victim {} has {} restores", coldest, restores[idx]);
    }
}
