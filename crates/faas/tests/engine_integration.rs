//! Integration tests for the FaaS engine on a single node: multi-function
//! cohabitation, page-cache sharing between instances of the same
//! function, deployment rollback, and determinism.

use std::sync::Arc;

use cxl_mem::CxlDevice;
use node_os::{Node, NodeConfig};

fn node(mem_mib: u64) -> Node {
    Node::new(
        NodeConfig::default().with_local_mem_mib(mem_mib),
        Arc::new(CxlDevice::with_capacity_mib(64)),
    )
}

#[test]
fn two_functions_cohabit_one_node() {
    let mut n = node(512);
    let float = faas::by_name("Float").unwrap();
    let json = faas::by_name("Json").unwrap();
    let (p1, _) = faas::deploy_cold(&mut n, &float).unwrap();
    let (p2, _) = faas::deploy_cold(&mut n, &json).unwrap();
    let r1 = faas::run_invocation(&mut n, p1, &float, 0).unwrap();
    let r2 = faas::run_invocation(&mut n, p2, &json, 0).unwrap();
    assert!(r1.total > simclock::SimDuration::ZERO);
    assert!(r2.total > simclock::SimDuration::ZERO);
    // Teardown returns everything except the shared page cache.
    n.kill(p1).unwrap();
    n.kill(p2).unwrap();
    let cached = n.page_cache().len() as u64;
    assert_eq!(n.frames().used(), cached);
}

#[test]
fn second_instance_of_same_function_shares_libraries() {
    let mut n = node(512);
    let spec = faas::by_name("Pyaes").unwrap();
    let (p1, init1) = faas::deploy_cold(&mut n, &spec).unwrap();
    let used_after_first = n.frames().used();
    let (p2, init2) = faas::deploy_cold(&mut n, &spec).unwrap();
    // The second deployment's library pages come from the page cache:
    // cheaper init and fewer new frames than a full second footprint.
    assert!(init2.total < init1.total);
    let second_cost = n.frames().used() - used_after_first;
    let anon_pages = spec.init_anon_pages() + spec.ro_pages() + spec.rw_pages();
    assert_eq!(second_cost, anon_pages, "only anonymous pages are new");
    let _ = (p1, p2);
}

#[test]
fn failed_deploy_rolls_back_completely() {
    // Node big enough for the libraries but not the whole footprint.
    let mut n = node(16);
    let spec = faas::by_name("Float").unwrap(); // 24 MiB
    let before = n.frames().used();
    assert!(faas::deploy_cold(&mut n, &spec).is_err());
    // Process gone; only page-cache frames (clean, reclaimable) remain.
    assert_eq!(n.process_count(), 0);
    let cached = n.page_cache().len() as u64;
    assert_eq!(n.frames().used(), before + cached);
    n.drop_page_cache();
    assert_eq!(n.frames().used(), before);
}

#[test]
fn invocations_are_deterministic_given_identical_state() {
    let run = || {
        let mut n = node(512);
        let spec = faas::by_name("Json").unwrap();
        let (pid, init) = faas::deploy_cold(&mut n, &spec).unwrap();
        let mut totals = vec![init.total];
        for i in 0..5 {
            totals.push(faas::run_invocation(&mut n, pid, &spec, i).unwrap().total);
        }
        (totals, n.now())
    };
    assert_eq!(run(), run(), "bit-identical replays");
}

#[test]
fn profiler_classification_is_stable_across_runs() {
    let mut breakdowns = Vec::new();
    for _ in 0..2 {
        let mut n = node(512);
        let spec = faas::by_name("Float").unwrap();
        let (pid, _) = faas::deploy_cold(&mut n, &spec).unwrap();
        breakdowns.push(faas::profile_footprint(&mut n, pid, &spec, 8).unwrap());
    }
    assert_eq!(breakdowns[0], breakdowns[1]);
}

#[test]
fn warm_for_checkpoint_cycles_the_whole_rw_band() {
    let mut n = node(512);
    let spec = faas::by_name("Json").unwrap();
    let (pid, _) = faas::deploy_cold(&mut n, &spec).unwrap();
    faas::warm_for_checkpoint(&mut n, pid, &spec, 15).unwrap();
    // After 16 invocations cycling rw_pages_per_invocation pages each,
    // the whole R/W band (430 pages for Json) has been re-dirtied since
    // the post-first-invocation A/D clear.
    let p = n.process(pid).unwrap();
    let dirty =
        p.mm.page_table
            .iter_populated()
            .iter()
            .filter(|(_, pte)| pte.is_dirty())
            .count() as u64;
    assert!(
        dirty >= spec.rw_pages(),
        "dirty {dirty} covers the R/W band {}",
        spec.rw_pages()
    );
    // And it is far smaller than the footprint (what makes MoW prefetch
    // cheap).
    assert!(dirty < spec.footprint_pages() / 4);
}
