//! Property-based tests for workload-layout invariants over arbitrary
//! (valid) function specs: every generated access must land inside a
//! mapped VMA of the right band, and the partitions must never overlap.

use faas::{FunctionLayout, FunctionSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = FunctionSpec> {
    (
        8u64..512,     // footprint MiB
        0.40f64..0.85, // init fraction
        0.05f64..0.40, // ro fraction (clamped below)
        0.0f64..0.45,  // file share of footprint (clamped below)
        1u64..20_000,  // ws pages (clamped below)
        1u32..4,       // passes
        10u64..200,    // compute ms
        200u64..500,   // init compute ms
    )
        .prop_map(
            |(mib, init, ro_raw, file_raw, ws_raw, passes, compute, init_ms)| {
                let ro = ro_raw.min(0.95 - init);
                let rw = 1.0 - init - ro;
                let file = file_raw.min(init * 0.9);
                let spec = FunctionSpec {
                    name: "prop".into(),
                    footprint_mib: mib,
                    init_fraction: init,
                    readonly_fraction: ro,
                    readwrite_fraction: rw,
                    file_fraction: file,
                    ws_pages: 1,
                    ws_passes: passes,
                    rw_pages_per_invocation: 1,
                    compute_ms: compute,
                    init_compute_ms: init_ms,
                    template_overlap: 0.0,
                };
                // Clamp derived quantities into their valid ranges.
                let max_ws = spec.ro_pages() + spec.init_anon_pages();
                let max_rw = spec.rw_pages().max(1);
                FunctionSpec {
                    ws_pages: ws_raw.clamp(1, max_ws.max(1)),
                    rw_pages_per_invocation: (ws_raw % max_rw).max(1),
                    ..spec
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitions_never_overlap_and_cover_the_footprint(spec in arb_spec()) {
        spec.validate();
        let l = FunctionLayout::for_spec(&spec);
        // Bands are ordered and disjoint.
        prop_assert!(l.file_start <= l.file_end);
        prop_assert!(l.file_end <= l.init_start);
        prop_assert!(l.init_end <= l.ro_start);
        prop_assert!(l.ro_end <= l.rw_start);
        // Total never exceeds the footprint, loses at most rounding.
        let total = l.total_pages();
        prop_assert!(total <= spec.footprint_pages());
        prop_assert!(spec.footprint_pages() - total < 8);
    }

    #[test]
    fn working_set_pages_stay_in_readable_bands(spec in arb_spec()) {
        let l = FunctionLayout::for_spec(&spec);
        for vpn in l.working_set(&spec) {
            let in_file = vpn.0 >= l.file_start && vpn.0 < l.file_end;
            let in_init = vpn.0 >= l.init_start && vpn.0 < l.init_end;
            let in_ro = vpn.0 >= l.ro_start && vpn.0 < l.ro_end;
            prop_assert!(in_file || in_init || in_ro, "ws page {vpn} out of band");
        }
    }

    #[test]
    fn write_sets_stay_in_rw_band_for_any_invocation(
        spec in arb_spec(),
        idx in 0u64..1000,
    ) {
        let l = FunctionLayout::for_spec(&spec);
        let ws = l.write_set(&spec, idx);
        prop_assert_eq!(ws.len() as u64, spec.rw_pages_per_invocation.min(spec.rw_pages()));
        for vpn in ws {
            prop_assert!(vpn.0 >= l.rw_start && vpn.0 < l.rw_end, "write {vpn} out of band");
        }
    }

    #[test]
    fn init_tails_stay_in_init_band_and_vary_by_salt(
        spec in arb_spec(),
        salt_a in any::<u64>(),
        salt_b in any::<u64>(),
        idx in 0u64..64,
    ) {
        let l = FunctionLayout::for_spec(&spec);
        let a = l.init_tail(salt_a, idx);
        for vpn in &a {
            prop_assert!(
                vpn.0 >= l.init_start && vpn.0 < l.init_end,
                "tail {vpn} out of band"
            );
        }
        // Same inputs ⇒ same tail (determinism).
        prop_assert_eq!(&a, &l.init_tail(salt_a, idx));
        // The tail length never exceeds the band.
        prop_assert!(a.len() as u64 <= (l.init_end - l.init_start).max(1));
        let _ = salt_b;
    }

    #[test]
    fn library_files_tile_the_file_band_exactly(spec in arb_spec()) {
        let l = FunctionLayout::for_spec(&spec);
        let total: u64 = l.library_files(&spec).iter().map(|(_, p)| p).sum();
        prop_assert_eq!(total, l.file_end - l.file_start);
        // Paths are unique.
        let mut paths: Vec<&String> = Vec::new();
        let files = l.library_files(&spec);
        for (p, _) in &files {
            prop_assert!(!paths.contains(&p), "duplicate lib path {p}");
            paths.push(p);
        }
    }
}
