//! The container model and ghost containers.
//!
//! §5 measures two components of a serverless cold start (Fig. 6): *state
//! initialization* (function-dependent, 250–500 ms — see
//! [`crate::engine::deploy_cold`]) and *container creation* (≈130 ms,
//! roughly constant across functions: network, namespaces, cgroups). A
//! bare container with no deployed function holds only **512 KiB** of
//! memory.
//!
//! CXLporter removes container creation from the critical path with
//! **ghost containers**: pre-provisioned, configured-but-empty containers
//! that wait for function-restoration requests on a control socket.
//! Waking one costs well under a millisecond and the function is cloned
//! *into* it (CXLfork restores directly into new namespaces, §4.2).

use node_os::addr::{Pfn, Pid};
use node_os::{Node, OsError};
use simclock::SimDuration;

/// Memory footprint of a bare container (§5: 512 KiB).
pub const BARE_CONTAINER_PAGES: u64 = 512 * 1024 / 4096;

/// A container on one node.
#[derive(Debug)]
pub struct Container {
    /// Per-node container id.
    pub id: u64,
    /// The function deployed inside, if any.
    pub function: Option<String>,
    /// The process running inside, if any.
    pub pid: Option<Pid>,
    frames: Vec<Pfn>,
}

impl Container {
    /// Creates a container from scratch, charging the ≈130 ms creation
    /// cost and allocating its bare 512 KiB footprint.
    ///
    /// # Errors
    ///
    /// [`OsError::OutOfMemory`] if the node cannot hold even the bare
    /// footprint.
    pub fn create(node: &mut Node, id: u64) -> Result<(Container, SimDuration), OsError> {
        let mut frames = Vec::with_capacity(BARE_CONTAINER_PAGES as usize);
        for _ in 0..BARE_CONTAINER_PAGES {
            match node.frames_mut().alloc_zeroed() {
                Ok(pfn) => frames.push(pfn),
                Err(e) => {
                    // Roll back partial allocation.
                    for pfn in frames {
                        node.frames_mut().dec_ref(pfn);
                    }
                    return Err(e);
                }
            }
        }
        let cost = node.model().container_create();
        node.clock_mut().advance(cost);
        node.counters_note("container_create");
        Ok((
            Container {
                id,
                function: None,
                pid: None,
                frames,
            },
            cost,
        ))
    }

    /// The bare-footprint frames this container pins outside any process
    /// (declared to `cxl-check` audits as external references).
    pub fn pinned_frames(&self) -> &[Pfn] {
        &self.frames
    }

    /// `true` if the container is an empty ghost awaiting a restore.
    pub fn is_ghost(&self) -> bool {
        self.pid.is_none()
    }

    /// Wakes a ghost container via its control socket so it can issue a
    /// restore request (§5). Charges the trigger cost and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the container already hosts a process.
    pub fn trigger(&self, node: &mut Node) -> SimDuration {
        assert!(self.is_ghost(), "container {} is already occupied", self.id);
        let cost = node.model().ghost_trigger();
        node.clock_mut().advance(cost);
        node.counters_note("ghost_trigger");
        cost
    }

    /// Binds a restored process into the container.
    pub fn attach_process(&mut self, function: &str, pid: Pid) {
        self.function = Some(function.to_owned());
        self.pid = Some(pid);
    }

    /// Kills the inner process (if any) and empties the container back to
    /// ghost state. Returns the freed process's pid.
    ///
    /// # Errors
    ///
    /// Propagates [`OsError::NoSuchProcess`] if the tracked pid is stale.
    pub fn recycle(&mut self, node: &mut Node) -> Result<Option<Pid>, OsError> {
        if let Some(pid) = self.pid.take() {
            node.kill(pid)?;
            self.function = None;
            Ok(Some(pid))
        } else {
            Ok(None)
        }
    }

    /// Destroys the container, returning its bare frames to the node.
    ///
    /// # Errors
    ///
    /// Propagates errors from killing a still-running inner process.
    pub fn destroy(mut self, node: &mut Node) -> Result<(), OsError> {
        self.recycle(node)?;
        for pfn in self.frames.drain(..) {
            node.frames_mut().dec_ref(pfn);
        }
        Ok(())
    }

    /// The container's bare memory footprint in pages.
    pub fn bare_pages(&self) -> u64 {
        self.frames.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_mem::CxlDevice;
    use node_os::NodeConfig;
    use std::sync::Arc;

    fn node() -> Node {
        Node::new(
            NodeConfig::default().with_local_mem_mib(64),
            Arc::new(CxlDevice::with_capacity_mib(16)),
        )
    }

    #[test]
    fn create_charges_130ms_and_512kib() {
        let mut n = node();
        let (c, cost) = Container::create(&mut n, 1).unwrap();
        assert_eq!(cost.as_millis(), 130);
        assert_eq!(c.bare_pages(), 128);
        assert_eq!(n.frames().used(), 128);
        assert!(c.is_ghost());
        c.destroy(&mut n).unwrap();
        assert_eq!(n.frames().used(), 0);
    }

    #[test]
    fn trigger_is_cheap_compared_to_creation() {
        let mut n = node();
        let (c, create_cost) = Container::create(&mut n, 1).unwrap();
        let trigger_cost = c.trigger(&mut n);
        assert!(trigger_cost * 100 < create_cost);
        c.destroy(&mut n).unwrap();
    }

    #[test]
    fn attach_and_recycle_lifecycle() {
        let mut n = node();
        let (mut c, _) = Container::create(&mut n, 1).unwrap();
        let pid = n.spawn("fn").unwrap();
        c.attach_process("fn", pid);
        assert!(!c.is_ghost());
        assert_eq!(c.function.as_deref(), Some("fn"));
        let freed = c.recycle(&mut n).unwrap();
        assert_eq!(freed, Some(pid));
        assert!(c.is_ghost());
        assert!(n.process(pid).is_err(), "inner process killed");
        // Recycling a ghost is a no-op.
        assert_eq!(c.recycle(&mut n).unwrap(), None);
        c.destroy(&mut n).unwrap();
    }

    #[test]
    fn create_rolls_back_on_oom() {
        let mut n = Node::new(
            NodeConfig::default().with_local_mem_mib(0),
            Arc::new(CxlDevice::with_capacity_mib(1)),
        );
        assert!(matches!(
            Container::create(&mut n, 1),
            Err(OsError::OutOfMemory { .. })
        ));
        assert_eq!(n.frames().used(), 0);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn trigger_on_occupied_container_panics() {
        let mut n = node();
        let (mut c, _) = Container::create(&mut n, 1).unwrap();
        let pid = n.spawn("fn").unwrap();
        c.attach_process("fn", pid);
        c.trigger(&mut n);
    }
}
