//! The serverless function suite (Table 1) and its access-pattern
//! calibration.
//!
//! The paper evaluates the CPU and memory functions from FunctionBench
//! plus three real-world functions (HTML, BFS, Bert). The fork mechanisms
//! never execute Python: what they observe is an address space with a
//! footprint, a segment structure and an access pattern. Each
//! [`FunctionSpec`] therefore captures:
//!
//! * the **footprint** from Table 1 (24–630 MB);
//! * the **composition** measured in Fig. 1 — on average 72.2 % *Init*
//!   data (touched during initialization, rarely afterwards), 23 %
//!   *Read-only* and 4.8 % *Read/Write*;
//! * the **per-invocation working set**, which determines whether warm
//!   runs fit the 64 MB LLC (BFS and Bert deliberately exceed it — the
//!   property behind Fig. 8b and Fig. 9a);
//! * initialization compute time (Fig. 6 measures 250–500 ms) and
//!   per-invocation compute time.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Pages per MiB (4 KiB pages).
const PAGES_PER_MIB: u64 = 256;

/// A synthetic serverless function calibrated to the paper's suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Function name (Table 1).
    pub name: String,
    /// Total memory footprint in MiB (Table 1).
    pub footprint_mib: u64,
    /// Fraction of the footprint that is initialization data (Fig. 1).
    pub init_fraction: f64,
    /// Fraction that is read-only during execution (Fig. 1).
    pub readonly_fraction: f64,
    /// Fraction that is read/written during execution (Fig. 1).
    pub readwrite_fraction: f64,
    /// Fraction of the footprint backed by private file mappings
    /// (libraries, runtime modules) — a subset of the Init share.
    pub file_fraction: f64,
    /// Pages read per working-set pass during one invocation.
    pub ws_pages: u64,
    /// Number of passes over the working set per invocation (BFS-style
    /// algorithms sweep their data repeatedly).
    pub ws_passes: u32,
    /// Pages written per invocation (cycled through the R/W region).
    pub rw_pages_per_invocation: u64,
    /// Pure compute time per invocation, in milliseconds.
    pub compute_ms: u64,
    /// Pure compute portion of state initialization, in milliseconds
    /// (faults add the rest; Fig. 6 measures 250–500 ms totals).
    pub init_compute_ms: u64,
    /// Fraction of the library (runtime) pages drawn from a pool of
    /// shared runtime images instead of per-function libraries. Distinct
    /// functions with the same overlap share those pages byte-for-byte —
    /// the ground truth for cross-image deduplication experiments
    /// (`cxl-store`). `0.0` (the default) reproduces the historical
    /// fully-private layout exactly.
    #[serde(default)]
    pub template_overlap: f64,
}

impl FunctionSpec {
    /// Total footprint in pages.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_mib * PAGES_PER_MIB
    }

    /// Pages of private file mappings (libraries).
    pub fn file_pages(&self) -> u64 {
        (self.footprint_pages() as f64 * self.file_fraction) as u64
    }

    /// Anonymous initialization pages (init share minus file mappings).
    pub fn init_anon_pages(&self) -> u64 {
        let init = (self.footprint_pages() as f64 * self.init_fraction) as u64;
        init.saturating_sub(self.file_pages())
    }

    /// Read-only data pages.
    pub fn ro_pages(&self) -> u64 {
        (self.footprint_pages() as f64 * self.readonly_fraction) as u64
    }

    /// Read/write data pages.
    pub fn rw_pages(&self) -> u64 {
        (self.footprint_pages() as f64 * self.readwrite_fraction) as u64
    }

    /// Validates the composition invariants.
    ///
    /// # Panics
    ///
    /// Panics if the fractions do not sum to ≈1, the file share exceeds
    /// the init share, or the working set exceeds the readable footprint.
    pub fn validate(&self) {
        let sum = self.init_fraction + self.readonly_fraction + self.readwrite_fraction;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "{}: composition sums to {sum}",
            self.name
        );
        assert!(
            self.file_fraction <= self.init_fraction + 1e-9,
            "{}: file share exceeds init share",
            self.name
        );
        assert!(
            self.ws_pages <= self.ro_pages() + self.init_anon_pages(),
            "{}: working set larger than readable data",
            self.name
        );
        assert!(
            self.rw_pages_per_invocation <= self.rw_pages().max(1),
            "{}: writes more pages than the R/W region holds",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.template_overlap),
            "{}: template overlap {} outside [0, 1]",
            self.name,
            self.template_overlap
        );
    }

    /// Returns the spec with its runtime-sharing fraction replaced.
    #[must_use]
    pub fn with_template_overlap(mut self, overlap: f64) -> Self {
        self.template_overlap = overlap;
        self
    }
}

/// Builds the paper's ten-function suite (Table 1).
///
/// Footprints are Table 1's; compositions follow Fig. 1 (72.2 / 23 /
/// 4.8 % on average, per-function varied); BFS and Bert get working sets
/// that exceed the 64 MB LLC, reproducing their sensitivity to CXL
/// latency (Fig. 8b, Fig. 9a).
pub fn suite() -> Vec<FunctionSpec> {
    let f = |name: &str,
             footprint_mib: u64,
             init: f64,
             ro: f64,
             rw: f64,
             file: f64,
             ws_pages: u64,
             ws_passes: u32,
             rw_inv: u64,
             compute_ms: u64,
             init_compute_ms: u64| FunctionSpec {
        name: name.to_owned(),
        footprint_mib,
        init_fraction: init,
        readonly_fraction: ro,
        readwrite_fraction: rw,
        file_fraction: file,
        ws_pages,
        ws_passes,
        rw_pages_per_invocation: rw_inv,
        compute_ms,
        init_compute_ms,
        template_overlap: 0.0,
    };
    let suite = vec![
        // name      MB   init   ro    rw    file  ws     p  rw/inv cms  initms
        f("Float", 24, 0.74, 0.20, 0.06, 0.40, 1_100, 1, 90, 14, 240),
        f(
            "Linpack", 33, 0.70, 0.22, 0.08, 0.32, 1_800, 2, 420, 26, 250,
        ),
        f("Json", 24, 0.72, 0.21, 0.07, 0.40, 1_200, 1, 260, 9, 230),
        f("Pyaes", 24, 0.75, 0.20, 0.05, 0.42, 900, 1, 120, 13, 235),
        f(
            "Chameleon",
            27,
            0.73,
            0.21,
            0.06,
            0.38,
            1_400,
            1,
            280,
            16,
            245,
        ),
        f("HTML", 256, 0.82, 0.15, 0.03, 0.18, 3_000, 1, 450, 24, 320),
        f("Cnn", 265, 0.76, 0.21, 0.03, 0.16, 9_000, 2, 550, 70, 380),
        f("Rnn", 190, 0.86, 0.11, 0.03, 0.20, 2_400, 1, 380, 95, 430),
        f(
            "BFS", 125, 0.46, 0.44, 0.10, 0.12, 21_000, 8, 1_400, 22, 290,
        ),
        f(
            "Bert", 630, 0.73, 0.245, 0.025, 0.10, 33_000, 6, 1_900, 130, 480,
        ),
    ];
    for s in &suite {
        s.validate();
    }
    suite
}

/// Looks up a function by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<FunctionSpec> {
    suite()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Builds a synthetic micro-function: a small, fast spec for
/// cluster-scale experiments where the Table 1 suite's hundred-MiB
/// footprints would dominate runtime. Composition follows the Fig. 1
/// averages; the working set and write set scale with the footprint.
///
/// # Panics
///
/// Panics if the derived spec violates [`FunctionSpec::validate`]
/// (e.g. `ws_pages` larger than the readable share of `footprint_mib`).
pub fn micro(name: &str, footprint_mib: u64, ws_pages: u64, compute_ms: u64) -> FunctionSpec {
    let spec = FunctionSpec {
        name: name.to_owned(),
        footprint_mib,
        init_fraction: 0.70,
        readonly_fraction: 0.24,
        readwrite_fraction: 0.06,
        file_fraction: 0.30,
        ws_pages,
        ws_passes: 1,
        rw_pages_per_invocation: (footprint_mib * PAGES_PER_MIB / 32).max(1),
        compute_ms,
        init_compute_ms: 40,
        template_overlap: 0.0,
    };
    spec.validate();
    spec
}

/// A registry of function specs, keyed by case-insensitive name.
///
/// The porter historically resolved every invocation against the fixed
/// Table 1 [`suite`]; a catalog makes the namespace explicit so
/// cluster-scale scenarios can register hundreds of synthetic
/// per-tenant functions while the default stays byte-identical to the
/// old [`by_name`] behaviour.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    by_lower: BTreeMap<String, FunctionSpec>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The paper's Table 1 suite — the porter's default namespace.
    pub fn table1() -> Self {
        let mut c = Catalog::new();
        for spec in suite() {
            c.insert(spec);
        }
        c
    }

    /// A catalog over the given specs.
    ///
    /// # Panics
    ///
    /// Panics on names that collide case-insensitively.
    pub fn from_specs(specs: impl IntoIterator<Item = FunctionSpec>) -> Self {
        let mut c = Catalog::new();
        for spec in specs {
            c.insert(spec);
        }
        c
    }

    /// Registers a spec.
    ///
    /// # Panics
    ///
    /// Panics if a different function already claims the name
    /// (case-insensitive).
    pub fn insert(&mut self, spec: FunctionSpec) {
        spec.validate();
        let key = spec.name.to_ascii_lowercase();
        if let Some(existing) = self.by_lower.get(&key) {
            assert_eq!(
                existing, &spec,
                "catalog name collision: {:?} registered twice with different specs",
                spec.name
            );
            return;
        }
        self.by_lower.insert(key, spec);
    }

    /// Looks up a function by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&FunctionSpec> {
        self.by_lower.get(&name.to_ascii_lowercase())
    }

    /// Registered function names, in case-normalised order.
    pub fn names(&self) -> Vec<String> {
        self.by_lower.values().map(|s| s.name.clone()).collect()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.by_lower.len()
    }

    /// `true` when no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.by_lower.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1_footprints() {
        let expected = [
            ("Float", 24),
            ("Linpack", 33),
            ("Json", 24),
            ("Pyaes", 24),
            ("Chameleon", 27),
            ("HTML", 256),
            ("Cnn", 265),
            ("Rnn", 190),
            ("BFS", 125),
            ("Bert", 630),
        ];
        let suite = suite();
        assert_eq!(suite.len(), 10);
        for (name, mib) in expected {
            let s = suite.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.footprint_mib, mib, "{name}");
        }
    }

    #[test]
    fn composition_averages_match_fig1() {
        let suite = suite();
        let n = suite.len() as f64;
        let init: f64 = suite.iter().map(|s| s.init_fraction).sum::<f64>() / n;
        let ro: f64 = suite.iter().map(|s| s.readonly_fraction).sum::<f64>() / n;
        let rw: f64 = suite.iter().map(|s| s.readwrite_fraction).sum::<f64>() / n;
        // Fig. 1: 72.2 / 23 / 4.8 % on average.
        assert!((init - 0.722).abs() < 0.03, "init avg {init}");
        assert!((ro - 0.23).abs() < 0.03, "ro avg {ro}");
        assert!((rw - 0.048) < 0.03, "rw avg {rw}");
    }

    #[test]
    fn page_partitions_cover_the_footprint() {
        for s in suite() {
            let total = s.file_pages() + s.init_anon_pages() + s.ro_pages() + s.rw_pages();
            let footprint = s.footprint_pages();
            // Rounding can lose a few pages, never gain.
            assert!(total <= footprint, "{}: {total} > {footprint}", s.name);
            assert!(
                footprint - total < 8,
                "{}: partition loses {} pages",
                s.name,
                footprint - total
            );
        }
    }

    #[test]
    fn bfs_and_bert_exceed_the_llc_others_fit() {
        let llc_pages = 64 * 1024 * 1024 / 4096;
        for s in suite() {
            let exceeds = s.ws_pages > llc_pages;
            if s.name == "BFS" || s.name == "Bert" {
                assert!(exceeds, "{} must thrash the LLC", s.name);
            } else {
                assert!(!exceeds, "{} must fit the LLC", s.name);
            }
        }
    }

    #[test]
    fn init_times_land_in_fig6_band() {
        for s in suite() {
            assert!(
                (200..=500).contains(&s.init_compute_ms),
                "{}: init compute {} ms",
                s.name,
                s.init_compute_ms
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("bert").is_some());
        assert!(by_name("BERT").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn catalog_matches_by_name_semantics() {
        let c = Catalog::table1();
        assert_eq!(c.len(), 10);
        for name in ["bert", "BERT", "Float"] {
            assert_eq!(c.get(name), by_name(name).as_ref(), "{name}");
        }
        assert!(c.get("nope").is_none());
    }

    #[test]
    fn catalog_accepts_micro_functions() {
        let mut c = Catalog::new();
        for i in 0..4 {
            c.insert(micro(&format!("t000-f{i}"), 4, 96, 5));
        }
        assert_eq!(c.len(), 4);
        assert!(c.get("T000-F2").is_some());
        // Idempotent re-registration of an identical spec is fine.
        c.insert(micro("t000-f0", 4, 96, 5));
        assert_eq!(c.len(), 4);
    }

    #[test]
    #[should_panic(expected = "name collision")]
    fn catalog_rejects_conflicting_redefinition() {
        let mut c = Catalog::new();
        c.insert(micro("dup", 4, 96, 5));
        c.insert(micro("DUP", 8, 96, 5));
    }

    #[test]
    fn micro_specs_validate_across_sizes() {
        for mib in [2, 4, 6, 8] {
            let s = micro("m", mib, 48, 3);
            s.validate();
            assert!(s.footprint_pages() >= 512);
        }
    }
}
