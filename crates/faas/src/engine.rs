//! The invocation engine: drives function memory behaviour through the
//! simulated OS.
//!
//! An invocation is modelled as the memory traffic the fork mechanisms
//! actually observe (§6.2): a read sweep over the function's working set
//! (possibly multiple passes), a write burst into the R/W region, and pure
//! compute time. A cold deployment additionally performs *state
//! initialization* — faulting in every library page and writing every
//! anonymous page — which is exactly the work remote forks exist to avoid
//! (Fig. 6).
//!
//! All costs flow through [`Node::access`], so faults, LLC behaviour and
//! memory-tier latencies are charged by the same machinery for every fork
//! mechanism.

use node_os::addr::Pid;
use node_os::mm::Access;
use node_os::{Node, OsError};
use simclock::SimDuration;

use crate::functions::FunctionSpec;
use crate::layout::FunctionLayout;

/// Cost breakdown of one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvocationResult {
    /// End-to-end invocation time.
    pub total: SimDuration,
    /// Pure compute portion.
    pub compute: SimDuration,
    /// Memory-access portion (cache hits/misses, tier latency).
    pub memory: SimDuration,
    /// Page-fault portion.
    pub fault: SimDuration,
    /// Number of faults taken.
    pub faults: u64,
}

/// Cost breakdown of a cold deployment's state initialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InitReport {
    /// End-to-end initialization time.
    pub total: SimDuration,
    /// Pure compute portion (runtime startup, model parsing, JIT, …).
    pub compute: SimDuration,
    /// Page-fault portion (first-touch of the whole footprint).
    pub fault: SimDuration,
    /// Pages touched during initialization.
    pub pages_touched: u64,
}

/// Deploys a function cold on `node`: creates the process, maps its
/// address space and runs state initialization.
///
/// Returns the new pid and the initialization cost (already charged to
/// the node's clock).
///
/// # Errors
///
/// Propagates OS errors; [`OsError::OutOfMemory`] if the node cannot hold
/// the footprint.
pub fn deploy_cold(node: &mut Node, spec: &FunctionSpec) -> Result<(Pid, InitReport), OsError> {
    let t0 = node.now();
    let layout = FunctionLayout::for_spec(spec);
    layout.install_files(spec, node.rootfs());
    let pid = node.spawn(&spec.name)?;
    match deploy_cold_inner(node, spec, &layout, pid) {
        Ok(report) => {
            if cxl_telemetry::is_armed() {
                let track = node.id().0;
                cxl_telemetry::record_span(
                    "faas.deploy_cold",
                    track,
                    t0,
                    node.now(),
                    &[("pages_touched", report.pages_touched)],
                );
                cxl_telemetry::timer_record(
                    "faas",
                    "deploy_cold.latency",
                    Some(track),
                    report.total,
                );
            }
            Ok((pid, report))
        }
        Err(e) => {
            // Roll back the half-built process so its frames return to the
            // node (the memory-constrained autoscaler runs rely on this).
            let _ = node.kill(pid);
            Err(e)
        }
    }
}

fn deploy_cold_inner(
    node: &mut Node,
    spec: &FunctionSpec,
    layout: &FunctionLayout,
    pid: Pid,
) -> Result<InitReport, OsError> {
    layout.map_into(spec, node, pid)?;
    // Open the runtime's primary library as an fd (global state for the
    // fork mechanisms to checkpoint).
    if let Some((path, _)) = layout.library_files(spec).first() {
        node.process_mut(pid)?
            .task
            .fds
            .open(node_os::process::FileDescriptor {
                path: path.clone(),
                offset: 0,
                writable: false,
            });
    }

    let mut report = InitReport::default();
    // Fault in every library page (reads from the root fs).
    for vpn in layout.file_start..layout.file_end {
        let o = node.access(pid, vpn, Access::Read)?;
        report.fault += o.fault_cost;
        report.pages_touched += 1;
        report.total += o.cost;
    }
    // Build all anonymous state (init, ro and rw data are all *written*
    // during initialization — that is what makes them checkpointable).
    for (start, end) in [
        (layout.init_start, layout.init_end),
        (layout.ro_start, layout.ro_end),
        (layout.rw_start, layout.rw_end),
    ] {
        for vpn in start..end {
            let o = node.access(pid, vpn, Access::Write)?;
            report.fault += o.fault_cost;
            report.pages_touched += 1;
            report.total += o.cost;
        }
    }
    // Runtime startup / model parsing compute.
    let compute = SimDuration::from_millis(spec.init_compute_ms);
    node.clock_mut().advance(compute);
    report.compute = compute;
    report.total += compute;
    Ok(report)
}

/// Runs one invocation of `spec` in process `pid`.
///
/// `invocation_idx` selects which R/W pages this request dirties (the
/// engine cycles through the R/W band, modelling varied inputs).
///
/// # Errors
///
/// Propagates OS errors, notably [`OsError::OutOfMemory`] on
/// memory-constrained nodes.
pub fn run_invocation(
    node: &mut Node,
    pid: Pid,
    spec: &FunctionSpec,
    invocation_idx: u64,
) -> Result<InvocationResult, OsError> {
    let t0 = node.now();
    let layout = FunctionLayout::for_spec(spec);
    let mut r = InvocationResult::default();

    // Read sweep(s) over the working set.
    let ws = layout.working_set(spec);
    for _pass in 0..spec.ws_passes {
        for vpn in &ws {
            let o = node.access(pid, vpn.0, Access::Read)?;
            r.memory += o.cost - o.fault_cost;
            r.fault += o.fault_cost;
            if o.fault.is_some() {
                r.faults += 1;
            }
            r.total += o.cost;
        }
    }

    // Input-dependent read tail over the init data (which slice depends
    // on the request; different instances — distinguished cluster-wide by
    // (node, pid) — see different input streams).
    let salt = ((node.id().0 as u64) << 32) | pid.0;
    for vpn in layout.init_tail(salt, invocation_idx) {
        let o = node.access(pid, vpn.0, Access::Read)?;
        r.memory += o.cost - o.fault_cost;
        r.fault += o.fault_cost;
        if o.fault.is_some() {
            r.faults += 1;
        }
        r.total += o.cost;
    }

    // Write burst into the R/W band.
    for vpn in layout.write_set(spec, invocation_idx) {
        let o = node.access(pid, vpn.0, Access::Write)?;
        r.memory += o.cost - o.fault_cost;
        r.fault += o.fault_cost;
        if o.fault.is_some() {
            r.faults += 1;
        }
        r.total += o.cost;
    }

    // Compute.
    let compute = SimDuration::from_millis(spec.compute_ms);
    node.clock_mut().advance(compute);
    r.compute = compute;
    r.total += compute;
    if cxl_telemetry::is_armed() {
        let track = node.id().0;
        cxl_telemetry::record_span(
            "faas.invocation",
            track,
            t0,
            node.now(),
            &[("faults", r.faults)],
        );
        cxl_telemetry::timer_record("faas", "invocation.latency", Some(track), r.total);
    }
    Ok(r)
}

/// Clears the process's A/D bits (CXLporter does this after the first
/// invocation so checkpointed bits capture the steady state, §5).
///
/// # Errors
///
/// [`OsError::NoSuchProcess`] if `pid` is not live.
pub fn clear_ad_bits(node: &mut Node, pid: Pid) -> Result<(), OsError> {
    node.with_process_ctx(pid, |p, _| p.mm.page_table.clear_ad_bits())
}

/// Warms a freshly deployed function to checkpoint-readiness: runs the
/// first invocation, clears the A/D bits (§5), then runs
/// `steady_invocations` more so the bits record the steady-state pattern.
/// The paper checkpoints after the 16th invocation.
///
/// # Errors
///
/// Propagates invocation errors.
pub fn warm_for_checkpoint(
    node: &mut Node,
    pid: Pid,
    spec: &FunctionSpec,
    steady_invocations: u64,
) -> Result<(), OsError> {
    run_invocation(node, pid, spec, 0)?;
    clear_ad_bits(node, pid)?;
    for i in 1..=steady_invocations {
        run_invocation(node, pid, spec, i)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::by_name;
    use cxl_mem::CxlDevice;
    use node_os::NodeConfig;
    use std::sync::Arc;

    fn node() -> Node {
        Node::new(
            NodeConfig::default().with_local_mem_mib(512),
            Arc::new(CxlDevice::with_capacity_mib(64)),
        )
    }

    #[test]
    fn cold_deploy_touches_whole_footprint() {
        let mut n = node();
        let spec = by_name("Float").unwrap();
        let (pid, report) = deploy_cold(&mut n, &spec).unwrap();
        let expected =
            spec.file_pages() + spec.init_anon_pages() + spec.ro_pages() + spec.rw_pages();
        assert_eq!(report.pages_touched, expected);
        assert_eq!(n.frames().used(), expected);
        // Fig. 6 band: state init of a small function within 200–600 ms.
        let ms = report.total.as_millis();
        assert!((200..=600).contains(&ms), "Float init {ms} ms");
        assert!(report.fault > SimDuration::ZERO);
        assert_eq!(n.process(pid).unwrap().task.fds.open_count(), 1);
    }

    #[test]
    fn warm_invocations_are_fault_free_and_faster() {
        let mut n = node();
        let spec = by_name("Json").unwrap();
        let (pid, _) = deploy_cold(&mut n, &spec).unwrap();
        let first = run_invocation(&mut n, pid, &spec, 0).unwrap();
        // Warm up the cache with a couple more runs.
        run_invocation(&mut n, pid, &spec, 1).unwrap();
        let warm = run_invocation(&mut n, pid, &spec, 2).unwrap();
        assert_eq!(warm.faults, 0, "steady state takes no faults");
        assert!(warm.total <= first.total);
        assert!(warm.compute == SimDuration::from_millis(spec.compute_ms));
    }

    #[test]
    fn working_set_fitting_llc_hits_cache_when_warm() {
        let mut n = node();
        let spec = by_name("Pyaes").unwrap();
        let (pid, _) = deploy_cold(&mut n, &spec).unwrap();
        run_invocation(&mut n, pid, &spec, 0).unwrap();
        n.reset_counters();
        run_invocation(&mut n, pid, &spec, 1).unwrap();
        let hits = n.counters().get("llc_hit");
        let misses = n.counters().get("llc_miss");
        assert!(
            hits as f64 / (hits + misses) as f64 > 0.9,
            "warm Pyaes should hit the LLC: {hits} hits / {misses} misses"
        );
    }

    #[test]
    fn warm_for_checkpoint_sets_steady_state_ad_bits() {
        let mut n = node();
        let spec = by_name("Json").unwrap();
        let (pid, _) = deploy_cold(&mut n, &spec).unwrap();
        warm_for_checkpoint(&mut n, pid, &spec, 15).unwrap();
        // After warm-up, A bits cover roughly the working set, not the
        // whole footprint (init pages were cleared and not re-read).
        let layout = FunctionLayout::for_spec(&spec);
        let p = n.process(pid).unwrap();
        let mut accessed = 0u64;
        let mut total = 0u64;
        for (vpn, pte) in p.mm.page_table.iter_populated() {
            if pte.is_present() {
                total += 1;
                if p.mm.page_table.is_accessed(vpn) {
                    accessed += 1;
                }
            }
        }
        assert!(total >= layout.total_pages() - 8);
        assert!(
            accessed < total / 2,
            "steady-state A bits ({accessed}) should not cover init data ({total})"
        );
        assert!(accessed >= spec.ws_pages, "working set is marked");
    }

    #[test]
    fn oom_during_invocation_propagates() {
        let mut n = Node::new(
            NodeConfig::default().with_local_mem_mib(8),
            Arc::new(CxlDevice::with_capacity_mib(16)),
        );
        let spec = by_name("Float").unwrap(); // 24 MiB > 8 MiB node
        assert!(matches!(
            deploy_cold(&mut n, &spec),
            Err(OsError::OutOfMemory { .. })
        ));
    }
}
