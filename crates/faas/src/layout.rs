//! Address-space layout of a deployed function.
//!
//! Serverless address spaces contain hundreds of VMAs, mostly private
//! library mappings (§4.2.1). The layout generator reproduces that
//! structure: the file share of the footprint is split into per-library
//! VMAs of up to 512 pages, and the anonymous init / read-only /
//! read-write shares into heap-segment VMAs of up to 2048 pages, placed in
//! disjoint, well-known address bands.

use node_os::addr::{Pid, VirtPageNum};
use node_os::fs::SharedFs;
use node_os::vma::Protection;
use node_os::{Node, OsError};

use crate::functions::FunctionSpec;

/// First page of the library band.
const FILE_BASE: u64 = 0x0001_0000;
/// First page of the anonymous-init band.
const INIT_BASE: u64 = 0x0010_0000;
/// First page of the read-only band.
const RO_BASE: u64 = 0x0020_0000;
/// First page of the read-write band.
const RW_BASE: u64 = 0x0030_0000;

/// Pages per library VMA.
const LIB_VMA_PAGES: u64 = 512;
/// Pages per anonymous segment VMA.
const ANON_VMA_PAGES: u64 = 2048;

/// Path prefix of the shared runtime images carved out of the library
/// band when `template_overlap > 0`. Every function maps the same
/// `/opt/faas/shared/rt{i}.so` files, so their pages are byte-identical
/// across functions — the ground truth for cross-image dedup.
const SHARED_RT_PREFIX: &str = "/opt/faas/shared/";
/// Content seed of the shared runtime images (function-independent).
const SHARED_RT_SEED: u64 = 0x5348_4152_4544_5254; // "SHAREDRT"

/// The page-range layout of a deployed function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionLayout {
    /// Library pages `[FILE_BASE, file_end)`.
    pub file_start: u64,
    /// One past the last library page.
    pub file_end: u64,
    /// Anonymous init pages.
    pub init_start: u64,
    /// One past the last init page.
    pub init_end: u64,
    /// Read-only data pages.
    pub ro_start: u64,
    /// One past the last read-only page.
    pub ro_end: u64,
    /// Read/write data pages.
    pub rw_start: u64,
    /// One past the last read/write page.
    pub rw_end: u64,
}

impl FunctionLayout {
    /// Derives the layout for a spec (deterministic).
    pub fn for_spec(spec: &FunctionSpec) -> Self {
        FunctionLayout {
            file_start: FILE_BASE,
            file_end: FILE_BASE + spec.file_pages(),
            init_start: INIT_BASE,
            init_end: INIT_BASE + spec.init_anon_pages(),
            ro_start: RO_BASE,
            ro_end: RO_BASE + spec.ro_pages(),
            rw_start: RW_BASE,
            rw_end: RW_BASE + spec.rw_pages(),
        }
    }

    /// Total pages across all bands.
    pub fn total_pages(&self) -> u64 {
        (self.file_end - self.file_start)
            + (self.init_end - self.init_start)
            + (self.ro_end - self.ro_start)
            + (self.rw_end - self.rw_start)
    }

    /// The library file paths this layout maps, with page counts and
    /// content seeds. When `spec.template_overlap > 0`, a prefix of the
    /// band is backed by shared runtime images (`/opt/faas/shared/…`,
    /// full `LIB_VMA_PAGES` chunks, function-independent seeds); the
    /// remainder stays per-function. Overlap 0 reproduces the historical
    /// fully-private paths and seeds exactly.
    fn library_file_specs(&self, spec: &FunctionSpec) -> Vec<(String, u64, u64)> {
        let file_pages = self.file_end - self.file_start;
        // Whole shared chunks only, so every function creates the shared
        // files with identical lengths and seeds.
        let shared = ((file_pages as f64 * spec.template_overlap) as u64) / LIB_VMA_PAGES;
        let mut out = Vec::new();
        for i in 0..shared {
            out.push((
                format!("{SHARED_RT_PREFIX}rt{i}.so"),
                LIB_VMA_PAGES,
                SHARED_RT_SEED ^ i << 32,
            ));
        }
        let mut remaining = file_pages - shared * LIB_VMA_PAGES;
        let mut idx = 0u64;
        while remaining > 0 {
            let pages = remaining.min(LIB_VMA_PAGES);
            out.push((
                format!("/opt/faas/{}/lib{idx}.so", spec.name.to_lowercase()),
                pages,
                spec_seed(spec) ^ idx << 32,
            ));
            remaining -= pages;
            idx += 1;
        }
        out
    }

    /// The library file paths this layout maps, with their page counts.
    pub fn library_files(&self, spec: &FunctionSpec) -> Vec<(String, u64)> {
        self.library_file_specs(spec)
            .into_iter()
            .map(|(path, pages, _)| (path, pages))
            .collect()
    }

    /// Registers the function's library files on the shared root
    /// filesystem (idempotent; all nodes see the same paths, §4.1).
    /// Shared runtime images get the same length and seed no matter
    /// which function installs them.
    pub fn install_files(&self, spec: &FunctionSpec, rootfs: &SharedFs) {
        for (path, pages, seed) in self.library_file_specs(spec) {
            rootfs.create(&path, pages * node_os::PAGE_SIZE, seed);
        }
    }

    /// Maps the function's VMAs into process `pid` on `node`.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (overlap should be impossible for a
    /// fresh process).
    pub fn map_into(&self, spec: &FunctionSpec, node: &mut Node, pid: Pid) -> Result<(), OsError> {
        let libs = self.library_files(spec);
        let process = node.process_mut(pid)?;
        // Library VMAs: r-x private file mappings.
        let mut base = self.file_start;
        for (path, pages) in &libs {
            process
                .mm
                .map_file(base, *pages, Protection::read_exec(), path, 0)?;
            base += pages;
        }
        // Anonymous segments.
        for (start, end, prot, label) in [
            (
                self.init_start,
                self.init_end,
                Protection::read_write(),
                "init",
            ),
            (
                self.ro_start,
                self.ro_end,
                Protection::read_write(),
                "rodata",
            ),
            (
                self.rw_start,
                self.rw_end,
                Protection::read_write(),
                "rwdata",
            ),
        ] {
            let mut seg = start;
            while seg < end {
                let pages = (end - seg).min(ANON_VMA_PAGES);
                process.mm.map_anonymous(seg, pages, prot, label)?;
                seg += pages;
            }
        }
        Ok(())
    }

    /// Library pages executed on every invocation (the code working set):
    /// a fixed prefix of the library band. These are the pages a CRIU
    /// restore must re-fault from the filesystem on the target node, since
    /// CRIU does not checkpoint clean file pages, whereas CXLfork attaches
    /// them straight from the checkpoint (§4.1, §7.1).
    pub fn code_working_set(&self) -> u64 {
        ((self.file_end - self.file_start) * 15 / 100).min(2048)
    }

    /// Enumerates the working-set pages for one invocation: the code
    /// working set first, then read-only data pages, spilling into the
    /// init band for functions (like BFS) whose sweeps cover
    /// initialization data too.
    pub fn working_set(&self, spec: &FunctionSpec) -> Vec<VirtPageNum> {
        let mut out = Vec::with_capacity((spec.ws_pages + self.code_working_set()) as usize);
        for i in 0..self.code_working_set() {
            out.push(VirtPageNum(self.file_start + i));
        }
        let ro_len = self.ro_end - self.ro_start;
        for i in 0..spec.ws_pages.min(ro_len) {
            out.push(VirtPageNum(self.ro_start + i));
        }
        let spill = spec.ws_pages.saturating_sub(ro_len);
        for i in 0..spill.min(self.init_end - self.init_start) {
            out.push(VirtPageNum(self.init_start + i));
        }
        out
    }

    /// The input-dependent read tail of one invocation: a small,
    /// per-request slice of the initialization data ("data that are used
    /// for function initialization and are **rarely** accessed during
    /// function execution", §2.2 — rarely, not never). Which slice a
    /// request touches depends on its input, modelled by hashing
    /// `(salt, invocation_idx)`; different instances (different salts)
    /// touch different slices. This varying tail is what separates hybrid
    /// tiering from migrate-on-access: pages whose checkpointed A bit is
    /// clear are *mapped* from CXL and read directly under HT, while MoA
    /// pulls a local copy of every one it touches (§4.3).
    pub fn init_tail(&self, salt: u64, invocation_idx: u64) -> Vec<VirtPageNum> {
        const SLICES: u64 = 64;
        let init_len = self.init_end - self.init_start;
        if init_len == 0 {
            return Vec::new();
        }
        let tail_len = (init_len / SLICES).clamp(8, 2048).min(init_len);
        let mut h = salt ^ invocation_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let slice = h % SLICES;
        (0..tail_len)
            .map(|i| VirtPageNum(self.init_start + (slice * tail_len + i) % init_len))
            .collect()
    }

    /// The pages written by invocation `invocation_idx` (cycling through
    /// the R/W band).
    pub fn write_set(&self, spec: &FunctionSpec, invocation_idx: u64) -> Vec<VirtPageNum> {
        let rw_len = self.rw_end - self.rw_start;
        if rw_len == 0 {
            return Vec::new();
        }
        let n = spec.rw_pages_per_invocation.min(rw_len);
        let offset = (invocation_idx * n) % rw_len;
        (0..n)
            .map(|i| VirtPageNum(self.rw_start + (offset + i) % rw_len))
            .collect()
    }
}

fn spec_seed(spec: &FunctionSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in spec.name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::suite;

    #[test]
    fn layouts_cover_footprints_without_overlap() {
        for spec in suite() {
            let l = FunctionLayout::for_spec(&spec);
            assert!(l.file_end <= INIT_BASE, "{}", spec.name);
            assert!(l.init_end <= RO_BASE, "{}", spec.name);
            assert!(l.ro_end <= RW_BASE, "{}", spec.name);
            let expected =
                spec.file_pages() + spec.init_anon_pages() + spec.ro_pages() + spec.rw_pages();
            assert_eq!(l.total_pages(), expected, "{}", spec.name);
        }
    }

    #[test]
    fn serverless_address_spaces_have_many_vmas() {
        // §4.2.1: VMA counts in the order of hundreds for big functions.
        let bert = crate::functions::by_name("Bert").unwrap();
        let l = FunctionLayout::for_spec(&bert);
        let vma_count = l.library_files(&bert).len()
            + ((l.init_end - l.init_start).div_ceil(ANON_VMA_PAGES)
                + (l.ro_end - l.ro_start).div_ceil(ANON_VMA_PAGES)
                + (l.rw_end - l.rw_start).div_ceil(ANON_VMA_PAGES)) as usize;
        assert!(vma_count > 100, "Bert VMA count {vma_count}");
    }

    #[test]
    fn working_set_spills_into_init_for_bfs() {
        let bfs = crate::functions::by_name("BFS").unwrap();
        let l = FunctionLayout::for_spec(&bfs);
        let ws = l.working_set(&bfs);
        assert_eq!(ws.len() as u64, bfs.ws_pages + l.code_working_set());
        assert!(ws.iter().any(|v| v.0 >= l.init_start && v.0 < l.init_end));
        assert!(
            ws.iter().any(|v| v.0 >= l.file_start && v.0 < l.file_end),
            "code working set included"
        );
    }

    #[test]
    fn write_set_cycles_through_rw_band() {
        let spec = crate::functions::by_name("Json").unwrap();
        let l = FunctionLayout::for_spec(&spec);
        let w0 = l.write_set(&spec, 0);
        let w1 = l.write_set(&spec, 1);
        assert_eq!(w0.len() as u64, spec.rw_pages_per_invocation);
        assert_ne!(w0, w1, "consecutive invocations touch different pages");
        for v in w0.iter().chain(&w1) {
            assert!(v.0 >= l.rw_start && v.0 < l.rw_end);
        }
    }

    #[test]
    fn map_into_creates_the_full_address_space() {
        let device = std::sync::Arc::new(cxl_mem::CxlDevice::with_capacity_mib(16));
        let mut node = Node::new(node_os::NodeConfig::default(), device);
        let spec = crate::functions::by_name("Float").unwrap();
        let layout = FunctionLayout::for_spec(&spec);
        layout.install_files(&spec, node.rootfs());
        let pid = node.spawn("float").unwrap();
        layout.map_into(&spec, &mut node, pid).unwrap();
        let mm = &node.process(pid).unwrap().mm;
        assert_eq!(mm.vmas.total_pages(), layout.total_pages());
        assert!(mm.vmas.vma_count() >= 7);
        // Every library path exists on the root fs.
        for (path, _) in layout.library_files(&spec) {
            assert!(node.rootfs().exists(&path), "{path}");
        }
    }

    #[test]
    fn zero_overlap_reproduces_the_private_layout() {
        // The historical layout: every file private, seeded by
        // spec_seed ^ index << 32. Overlap 0 must not disturb it.
        let spec = crate::functions::by_name("Float").unwrap();
        assert_eq!(spec.template_overlap, 0.0);
        let l = FunctionLayout::for_spec(&spec);
        for (i, (path, pages, seed)) in l.library_file_specs(&spec).into_iter().enumerate() {
            assert!(path.starts_with("/opt/faas/float/lib"), "{path}");
            assert_eq!(seed, spec_seed(&spec) ^ (i as u64) << 32);
            assert!(pages <= LIB_VMA_PAGES);
        }
    }

    #[test]
    fn overlapping_functions_share_runtime_files_byte_for_byte() {
        let a = crate::functions::by_name("Float")
            .unwrap()
            .with_template_overlap(0.5);
        let b = crate::functions::by_name("Json")
            .unwrap()
            .with_template_overlap(0.5);
        let la = FunctionLayout::for_spec(&a);
        let lb = FunctionLayout::for_spec(&b);
        let shared_a: Vec<_> = la
            .library_file_specs(&a)
            .into_iter()
            .filter(|(p, _, _)| p.starts_with(SHARED_RT_PREFIX))
            .collect();
        let shared_b: Vec<_> = lb
            .library_file_specs(&b)
            .into_iter()
            .filter(|(p, _, _)| p.starts_with(SHARED_RT_PREFIX))
            .collect();
        assert!(!shared_a.is_empty(), "overlap 0.5 carves shared chunks");
        // Same paths, lengths, and seeds regardless of which function
        // installs them: the pages are byte-identical across functions.
        let common = shared_a.len().min(shared_b.len());
        assert_eq!(shared_a[..common], shared_b[..common]);
        // The shared prefix covers roughly the requested fraction
        // (rounded down to whole chunks).
        let shared_pages: u64 = shared_a.iter().map(|(_, p, _)| p).sum();
        let file_pages = la.file_end - la.file_start;
        assert!(shared_pages <= file_pages / 2);
        assert!(shared_pages + LIB_VMA_PAGES > file_pages / 2);
        // Installing both onto one rootfs is consistent: same file, one
        // entry, and the private tails stay disjoint.
        let fs = SharedFs::new();
        la.install_files(&a, &fs);
        let after_a = fs.file_count();
        lb.install_files(&b, &fs);
        let both: Vec<_> = la
            .library_files(&a)
            .into_iter()
            .chain(lb.library_files(&b))
            .collect();
        let distinct: std::collections::BTreeSet<_> = both.iter().map(|(p, _)| p.clone()).collect();
        assert_eq!(fs.file_count(), distinct.len());
        assert!(fs.file_count() > after_a, "Json adds private tails");
        // Band sizes are unchanged by the knob.
        assert_eq!(
            la.total_pages(),
            FunctionLayout::for_spec(&crate::functions::by_name("Float").unwrap()).total_pages()
        );
    }

    #[test]
    fn install_files_is_idempotent() {
        let fs = SharedFs::new();
        let spec = crate::functions::by_name("Pyaes").unwrap();
        let l = FunctionLayout::for_spec(&spec);
        l.install_files(&spec, &fs);
        let count = fs.file_count();
        l.install_files(&spec, &fs);
        assert_eq!(fs.file_count(), count);
    }
}
