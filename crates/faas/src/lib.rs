//! Serverless substrate for the CXLfork evaluation.
//!
//! The paper's workloads are Function-as-a-Service functions (Table 1,
//! FunctionBench + three real-world functions) deployed in Docker
//! containers under an OpenWhisk-based runtime (§5, §6). This crate
//! provides the pieces of that stack the evaluation depends on:
//!
//! * [`functions`] — the ten-function suite with Table 1 footprints and
//!   Fig. 1 compositions;
//! * [`layout`] — realistic address-space layouts (hundreds of VMAs,
//!   per-library file mappings);
//! * [`engine`] — cold deployment (state initialization) and the
//!   per-invocation memory/compute behaviour all fork mechanisms are
//!   measured under;
//! * [`container`] — the container model: ≈130 ms creation, 512 KiB bare
//!   footprint, and CXLporter's *ghost containers*;
//! * [`profile`] — the Fig. 1 footprint profiler, built on the simulated
//!   A/D bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod engine;
pub mod functions;
pub mod layout;
pub mod profile;

pub use container::{Container, BARE_CONTAINER_PAGES};
pub use engine::{deploy_cold, run_invocation, warm_for_checkpoint, InitReport, InvocationResult};
pub use functions::{by_name, micro, suite, Catalog, FunctionSpec};
pub use layout::FunctionLayout;
pub use profile::{profile_footprint, FootprintBreakdown};
