//! Footprint profiling (Figure 1).
//!
//! §2.2 profiles each function by invoking it 128 times and classifying
//! its footprint into *Init* (touched during initialization, rarely
//! afterwards), *Read-only* (only read during execution) and *Read/Write*
//! (written during execution). The profiler reproduces that methodology
//! with the real A/D machinery: it clears the process's Accessed/Dirty
//! bits after initialization, drives the requested invocations, and then
//! classifies each present page from its bits — dirty ⇒ Read/Write,
//! accessed-but-clean ⇒ Read-only, untouched ⇒ Init.

use std::collections::{BTreeMap, BTreeSet};

use node_os::addr::Pid;
use node_os::{Node, OsError};

use crate::engine;
use crate::functions::FunctionSpec;

/// The measured footprint composition of one function.
///
/// Classification is frequency-based, matching the paper's definition of
/// *Init* as data "rarely accessed during function execution" (§2.2): the
/// profiler harvests and resets the A bits after every invocation
/// (DAMON-style idle tracking), so a page counts as Read-only only if it
/// is read in at least a quarter of the invocations; pages written at any
/// point count as Read/Write; everything else is Init.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FootprintBreakdown {
    /// Pages only touched during initialization.
    pub init_pages: u64,
    /// Pages read (never written) during execution.
    pub readonly_pages: u64,
    /// Pages written during execution.
    pub readwrite_pages: u64,
}

impl FootprintBreakdown {
    /// Total classified pages.
    pub fn total(&self) -> u64 {
        self.init_pages + self.readonly_pages + self.readwrite_pages
    }

    /// `(init, read-only, read/write)` fractions; zeros for an empty
    /// footprint.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.init_pages as f64 / t,
            self.readonly_pages as f64 / t,
            self.readwrite_pages as f64 / t,
        )
    }
}

/// Profiles an already-initialized function process by running
/// `invocations` invocations and reading back the A/D bits.
///
/// # Errors
///
/// Propagates invocation errors.
pub fn profile_footprint(
    node: &mut Node,
    pid: Pid,
    spec: &FunctionSpec,
    invocations: u64,
) -> Result<FootprintBreakdown, OsError> {
    engine::clear_ad_bits(node, pid)?;
    let mut read_counts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut written: BTreeSet<u64> = BTreeSet::new();
    let mut total_pages = 0u64;
    for i in 0..invocations {
        engine::run_invocation(node, pid, spec, i)?;
        // Harvest this invocation's A/D bits, then reset them.
        let process = node.process(pid)?;
        total_pages = 0;
        for (vpn, pte) in process.mm.page_table.iter_populated() {
            if !pte.is_present() {
                continue;
            }
            total_pages += 1;
            if pte.is_dirty() {
                written.insert(vpn.0);
            }
            if process.mm.page_table.is_accessed(vpn) {
                *read_counts.entry(vpn.0).or_insert(0) += 1;
            }
        }
        engine::clear_ad_bits(node, pid)?;
    }

    // A page is Read-only if it is read in at least a quarter of the
    // invocations and never written; written pages are Read/Write; the
    // rest (touched rarely or only during initialization) are Init.
    let threshold = (invocations / 4).max(1);
    let mut b = FootprintBreakdown::default();
    b.readwrite_pages = written.len() as u64;
    b.readonly_pages = read_counts
        .iter()
        .filter(|(vpn, count)| !written.contains(vpn) && **count >= threshold)
        .count() as u64;
    b.init_pages = total_pages - b.readwrite_pages - b.readonly_pages;
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::by_name;
    use cxl_mem::CxlDevice;
    use node_os::NodeConfig;
    use std::sync::Arc;

    #[test]
    fn profile_reproduces_fig1_shape_for_float() {
        let mut n = Node::new(
            NodeConfig::default().with_local_mem_mib(256),
            Arc::new(CxlDevice::with_capacity_mib(16)),
        );
        let spec = by_name("Float").unwrap();
        let (pid, _) = engine::deploy_cold(&mut n, &spec).unwrap();
        // 128 invocations as in §2.2 (the classification converges after
        // far fewer; 16 keeps the test fast while cycling the R/W band).
        let b = profile_footprint(&mut n, pid, &spec, 16).unwrap();
        let (init, ro, rw) = b.fractions();
        // Init dominates, R/W is small (Fig. 1).
        assert!(init > 0.5, "init {init}");
        assert!(ro > 0.05, "ro {ro}");
        assert!(rw < 0.2, "rw {rw}");
        assert!(b.total() >= spec.footprint_pages() - 8);
        // The classification tracks the spec's calibration.
        assert!((init - spec.init_fraction).abs() < 0.15, "init {init}");
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        assert_eq!(FootprintBreakdown::default().fractions(), (0.0, 0.0, 0.0));
    }
}
