//! Property-based tests for the CRIU image formats: arbitrary process
//! state must round-trip byte-exactly, and corrupted images must never
//! decode into something valid.

use proptest::prelude::*;

use criu_cxl::images::{CoreImage, MmImage, PagemapEntry, PagemapImage};
use node_os::process::{FileDescriptor, Registers};
use node_os::vma::{Protection, Vma, VmaKind};

fn arb_registers() -> impl Strategy<Value = Registers> {
    (any::<[u64; 16]>(), any::<u64>(), any::<u64>()).prop_map(|(gpr, rip, rsp)| Registers {
        gpr,
        rip,
        rsp,
    })
}

fn arb_fd() -> impl Strategy<Value = FileDescriptor> {
    ("[a-z/._-]{1,40}", any::<u64>(), any::<bool>()).prop_map(|(path, offset, writable)| {
        FileDescriptor {
            path,
            offset,
            writable,
        }
    })
}

fn arb_vma() -> impl Strategy<Value = Vma> {
    (
        0u64..(1 << 30),
        1u64..4096,
        any::<(bool, bool)>(),
        prop::option::of(("[a-z/.]{1,30}", any::<u64>())),
    )
        .prop_map(|(start, len, (write, exec), file)| {
            let prot = Protection {
                read: true,
                write,
                exec,
            };
            let mut vma = Vma::anonymous(start, start + len, prot, "prop");
            if let Some((path, fsp)) = file {
                vma.kind = VmaKind::File {
                    path,
                    file_start_page: fsp,
                };
            }
            vma
        })
}

proptest! {
    #[test]
    fn core_image_roundtrips(
        comm in "[a-zA-Z0-9_-]{1,32}",
        regs in arb_registers(),
        fds in prop::collection::vec(arb_fd(), 0..12),
        pid_ns in any::<u64>(),
        mount_ns in any::<u64>(),
    ) {
        let img = CoreImage {
            comm,
            regs,
            fds,
            pid_ns,
            mount_ns,
        };
        prop_assert_eq!(CoreImage::decode(&img.encode().unwrap()).unwrap(), img);
    }

    #[test]
    fn mm_image_roundtrips(vmas in prop::collection::vec(arb_vma(), 0..24)) {
        // Disjointness is the tree's invariant, not the image's — the
        // codec must round-trip anything.
        let img = MmImage { vmas };
        prop_assert_eq!(MmImage::decode(&img.encode().unwrap()).unwrap(), img);
    }

    #[test]
    fn pagemap_roundtrips(
        entries in prop::collection::vec(
            (any::<u64>(), any::<bool>(), any::<u64>()),
            0..200
        )
    ) {
        let img = PagemapImage {
            entries: entries
                .into_iter()
                .map(|(vpn, dirty, page_index)| PagemapEntry {
                    vpn,
                    dirty,
                    page_index,
                })
                .collect(),
        };
        prop_assert_eq!(PagemapImage::decode(&img.encode()).unwrap(), img);
    }

    /// Truncating an image anywhere must produce an error, never a
    /// silently wrong decode.
    #[test]
    fn truncated_core_images_never_decode(
        comm in "[a-z]{1,16}",
        cut in any::<prop::sample::Index>(),
    ) {
        let img = CoreImage {
            comm,
            regs: Registers::default(),
            fds: vec![FileDescriptor {
                path: "/x".into(),
                offset: 0,
                writable: false,
            }],
            pid_ns: 1,
            mount_ns: 2,
        };
        let bytes = img.encode().unwrap();
        let cut = cut.index(bytes.len().max(2) - 1);
        if cut < bytes.len() {
            if let Ok(decoded) = CoreImage::decode(&bytes[..cut]) {
                prop_assert!(
                    false,
                    "decoded a truncated image ({} of {} bytes) into {:?}",
                    cut,
                    bytes.len(),
                    decoded
                );
            }
        }
    }

    /// Flipping the magic always fails decoding.
    #[test]
    fn magic_flips_are_rejected(byte in 0usize..4, xor in 1u8..=255) {
        let img = MmImage { vmas: vec![] };
        let mut bytes = img.encode().unwrap();
        bytes[byte] ^= xor;
        prop_assert!(MmImage::decode(&bytes).is_err());
    }
}
