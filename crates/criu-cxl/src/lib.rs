//! CRIU-CXL: the state-of-practice remote-fork baseline.
//!
//! CRIU (Checkpoint and Restore In Userspace) "serializes process state to
//! files, including the entire process memory footprint, as well as the
//! OS-maintained process state. It then transfers and deserializes this
//! checkpointed state on the remote node that clones the process" (§1).
//! The paper's evaluation adapts it to CXL by placing the image files on an
//! in-CXL-memory shared filesystem (§6.2), which removes the network copy
//! but keeps both serialization costs and the full local-memory copy on
//! restore — the two properties that make it slow (Fig. 7a) and
//! memory-hungry (Fig. 7b).
//!
//! This crate implements that baseline faithfully:
//!
//! * **Checkpoint** encodes the task (`core.img`), the VMA list
//!   (`mm.img`) and the page index (`pagemap.img`) with the binary image
//!   format in [`imgfmt`], stores them on the shared [`CxlFs`], and copies
//!   every captured page into a dedicated device region (the `pages.img`
//!   payload). Clean private-file pages are *not* captured — real CRIU
//!   re-faults them from the file system, which is why CRIU restores
//!   occasionally show a smaller footprint than Cold (§7.1).
//! * **Restore** reads the images back, rebuilds the task, fd table and
//!   VMA tree, and **copies every page to node-local memory**, charging
//!   per-byte deserialization plus per-page CXL copies. Nothing is shared:
//!   "parent and child processes in different nodes share no state"
//!   (§2.3.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod images;
pub mod imgfmt;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cxl_mem::{CxlFs, CxlPageId, PageData, RegionId, PAGE_SIZE};
use node_os::addr::{PhysAddr, Pid, VirtPageNum};
use node_os::pte::PteFlags;
use node_os::Node;
use rfork::{CheckpointMeta, RemoteFork, RestoreOptions, Restored, RforkError};
use simclock::SimDuration;

use crate::images::{CoreImage, MmImage, PagemapEntry, PagemapImage};

/// The CRIU-CXL mechanism.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cxl_mem::{CxlDevice, CxlFs};
/// use criu_cxl::CriuCxl;
/// use node_os::{Node, NodeConfig, fs::SharedFs, vma::Protection, mm::Access};
/// use rfork::RemoteFork;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let device = Arc::new(CxlDevice::with_capacity_mib(64));
/// let rootfs = Arc::new(SharedFs::new());
/// let mut src = Node::with_rootfs(NodeConfig::default().with_id(0), Arc::clone(&device), Arc::clone(&rootfs));
/// let mut dst = Node::with_rootfs(NodeConfig::default().with_id(1), Arc::clone(&device), rootfs);
///
/// let pid = src.spawn("fn")?;
/// src.process_mut(pid)?.mm.map_anonymous(0, 8, Protection::read_write(), "heap")?;
/// src.access(pid, 0, Access::Write)?;
///
/// let criu = CriuCxl::new(Arc::new(CxlFs::new(device)));
/// let ckpt = criu.checkpoint(&mut src, pid)?;
/// let restored = criu.restore(&ckpt, &mut dst)?;
/// assert!(restored.restore_latency > simclock::SimDuration::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CriuCxl {
    fs: Arc<CxlFs>,
    next_id: AtomicU64,
}

/// A CRIU checkpoint: image files on the shared filesystem plus a device
/// region holding the page payload.
#[derive(Debug)]
pub struct CriuCheckpoint {
    meta: CheckpointMeta,
    /// Image directory on the shared filesystem.
    pub dir: String,
    /// Device region holding the page payload.
    pub pages_region: RegionId,
    pages: Vec<CxlPageId>,
}

impl CriuCheckpoint {
    /// Number of captured pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

impl CriuCxl {
    /// Creates the mechanism over a shared CXL filesystem.
    pub fn new(fs: Arc<CxlFs>) -> Self {
        CriuCxl {
            fs,
            next_id: AtomicU64::new(1),
        }
    }

    /// The shared filesystem the images live on.
    pub fn fs(&self) -> &Arc<CxlFs> {
        &self.fs
    }

    /// Deletes a checkpoint: removes its images and frees its device
    /// region.
    ///
    /// # Errors
    ///
    /// [`RforkError::Cxl`] if the region or files are already gone.
    pub fn release(&self, checkpoint: CriuCheckpoint, node: &Node) -> Result<(), RforkError> {
        self.fs.remove_prefix(&checkpoint.dir)?;
        node.device().destroy_region(checkpoint.pages_region)?;
        Ok(())
    }
}

impl RemoteFork for CriuCxl {
    type Checkpoint = CriuCheckpoint;

    fn name(&self) -> &'static str {
        "CRIU-CXL"
    }

    fn checkpoint(&self, node: &mut Node, pid: Pid) -> Result<CriuCheckpoint, RforkError> {
        let node_id = node.id();
        let model = node.model().clone();

        // ---- Walk the process (read-only) and capture state. ----
        let (core, mm_img, captured, footprint_pages) = {
            let process = node.process(pid)?;
            let core = CoreImage::capture(&process.task);
            let mm_img = MmImage {
                vmas: process.mm.vmas.iter().cloned().collect(),
            };
            let mut captured: Vec<(VirtPageNum, bool, PageData)> = Vec::new();
            let mut footprint_pages = 0u64;
            for (vpn, pte) in process.mm.page_table.iter_populated() {
                if !pte.is_present() {
                    continue;
                }
                footprint_pages += 1;
                // CRIU skips clean private-file pages: they are re-faulted
                // from the (identical) root fs on the restore side.
                if pte.flags().contains(PteFlags::FILE) && !pte.is_dirty() {
                    continue;
                }
                let data = match pte.target().expect("present pte") {
                    PhysAddr::Local(pfn) => node.frames().data(pfn).clone(),
                    PhysAddr::Cxl(page) => node.device().read_page(page, node_id)?,
                };
                captured.push((vpn, pte.is_dirty(), data));
            }
            (core, mm_img, captured, footprint_pages)
        };

        // ---- Store the page payload in a device region. ----
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let dir = format!("ckpt/{}-{}/", core.comm, id);
        let device = Arc::clone(node.device());
        let guard = device.create_region_guarded(&format!("criu:{}{}", core.comm, id));
        let region = guard.id();
        let page_ids = node.device().alloc_pages(region, captured.len() as u64)?;
        let mut pagemap = PagemapImage::default();
        for (i, ((vpn, dirty, data), page)) in captured.into_iter().zip(&page_ids).enumerate() {
            node.device().write_page(*page, data, node_id)?;
            pagemap.entries.push(PagemapEntry {
                vpn: vpn.0,
                dirty,
                page_index: i as u64,
            });
        }

        // ---- Serialize the images onto the shared filesystem. ----
        let core_bytes = core.encode()?;
        let mm_bytes = mm_img.encode()?;
        let pagemap_bytes = pagemap.encode();
        let meta_bytes = (core_bytes.len() + mm_bytes.len() + pagemap_bytes.len()) as u64;
        self.fs
            .write_file(&format!("{dir}core.img"), &core_bytes, node_id)?;
        self.fs
            .write_file(&format!("{dir}mm.img"), &mm_bytes, node_id)?;
        self.fs
            .write_file(&format!("{dir}pagemap.img"), &pagemap_bytes, node_id)?;

        // ---- Cost: serialize everything + stream it into CXL. ----
        let payload_bytes = pagemap.entries.len() as u64 * PAGE_SIZE;
        let cost = model.serialize(meta_bytes + payload_bytes)
            + model.cxl_write_copy(meta_bytes + payload_bytes)
            + SimDuration::from_nanos(model.image_file_open_ns) * 3;
        node.clock_mut().advance(cost);
        node.counters_note("criu_checkpoint");

        let cxl_pages = page_ids.len() as u64 + meta_bytes.div_ceil(PAGE_SIZE);
        let region = guard.commit();
        Ok(CriuCheckpoint {
            meta: CheckpointMeta {
                comm: core.comm.clone(),
                footprint_pages,
                cxl_pages,
                created_at: node.now(),
                checkpoint_cost: cost,
                vma_count: mm_img.vmas.len(),
            },
            dir,
            pages_region: region,
            pages: page_ids,
        })
    }

    fn restore_with(
        &self,
        checkpoint: &CriuCheckpoint,
        node: &mut Node,
        _options: RestoreOptions,
    ) -> Result<Restored, RforkError> {
        let node_id = node.id();
        let model = node.model().clone();

        // ---- Read and deserialize the images. ----
        let core_bytes = self
            .fs
            .read_file(&format!("{}core.img", checkpoint.dir), node_id)?;
        let mm_bytes = self
            .fs
            .read_file(&format!("{}mm.img", checkpoint.dir), node_id)?;
        let pagemap_bytes = self
            .fs
            .read_file(&format!("{}pagemap.img", checkpoint.dir), node_id)?;
        let core = CoreImage::decode(&core_bytes)?;
        let mm_img = MmImage::decode(&mm_bytes)?;
        let pagemap = PagemapImage::decode(&pagemap_bytes)?;
        if pagemap.entries.len() != checkpoint.pages.len() {
            return Err(RforkError::BadImage(format!(
                "pagemap has {} entries but payload region has {} pages",
                pagemap.entries.len(),
                checkpoint.pages.len()
            )));
        }

        let meta_bytes = (core_bytes.len() + mm_bytes.len() + pagemap_bytes.len()) as u64;
        let payload_bytes = pagemap.entries.len() as u64 * PAGE_SIZE;
        let mut cost = SimDuration::from_nanos(model.process_create_ns)
            + SimDuration::from_nanos(model.image_file_open_ns) * 3
            + model.deserialize(meta_bytes + payload_bytes);

        // ---- Rebuild the process. ----
        let pid = node.spawn(&core.comm)?;
        if let Err(e) =
            Self::populate_restored(checkpoint, node, pid, &core, &mm_img, &pagemap, &mut cost)
        {
            // Roll back the half-restored process so its frames return to
            // the node.
            let _ = node.kill(pid);
            return Err(e);
        }

        node.clock_mut().advance(cost);
        node.counters_note("criu_restore");
        Ok(Restored {
            pid,
            restore_latency: cost,
        })
    }

    fn meta<'c>(&self, checkpoint: &'c CriuCheckpoint) -> &'c CheckpointMeta {
        &checkpoint.meta
    }

    fn release_checkpoint(
        &self,
        checkpoint: CriuCheckpoint,
        node: &Node,
    ) -> Result<u64, RforkError> {
        let pages = checkpoint.pages.len() as u64;
        self.release(checkpoint, node)?;
        Ok(pages)
    }
}

impl CriuCxl {
    fn populate_restored(
        checkpoint: &CriuCheckpoint,
        node: &mut Node,
        pid: Pid,
        core: &CoreImage,
        mm_img: &MmImage,
        pagemap: &PagemapImage,
        cost: &mut SimDuration,
    ) -> Result<(), RforkError> {
        let node_id = node.id();
        let model = node.model().clone();
        {
            let process = node.process_mut(pid)?;
            process.task.comm = core.comm.clone();
            process.task.regs = core.regs;
            process.task.fds = core.restore_fds();
            process.task.ns.pid_ns = core.pid_ns;
            process.task.ns.mount_ns = core.mount_ns;
        }
        *cost += SimDuration::from_nanos(model.file_reopen_ns) * core.fds.len() as u64;

        // VMAs.
        *cost += SimDuration::from_nanos(model.fork_vma_copy_ns) * mm_img.vmas.len() as u64;
        node.with_process_ctx(pid, |p, _| -> Result<(), RforkError> {
            for vma in &mm_img.vmas {
                p.mm.vmas.insert(vma.clone()).map_err(RforkError::from)?;
            }
            Ok(())
        })??;

        // ---- Copy every page to local memory. ----
        let payload_bytes = pagemap.entries.len() as u64 * PAGE_SIZE;
        *cost += model.cxl_copy(payload_bytes);
        *cost += SimDuration::from_nanos(model.fork_pte_copy_ns) * pagemap.entries.len() as u64;
        for entry in &pagemap.entries {
            let data = node
                .device()
                .read_page(checkpoint.pages[entry.page_index as usize], node_id)?;
            node.with_process_ctx(pid, |p, ctx| -> Result<(), RforkError> {
                let pfn = ctx.frames.alloc(data).map_err(RforkError::from)?;
                let vpn = VirtPageNum(entry.vpn);
                let writable = p.mm.vmas.find(vpn).map(|v| v.prot.write).unwrap_or(false);
                let mut flags = PteFlags::PRESENT;
                if writable {
                    flags |= PteFlags::WRITABLE;
                }
                if entry.dirty {
                    flags |= PteFlags::DIRTY;
                }
                p.mm.install_mapping(vpn, PhysAddr::Local(pfn), flags, true);
                Ok(())
            })??;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_mem::CxlDevice;
    use node_os::fs::SharedFs;
    use node_os::mm::Access;
    use node_os::vma::Protection;
    use node_os::NodeConfig;

    struct Cluster {
        device: Arc<CxlDevice>,
        src: Node,
        dst: Node,
        criu: CriuCxl,
    }

    fn cluster() -> Cluster {
        let device = Arc::new(CxlDevice::with_capacity_mib(128));
        let rootfs = Arc::new(SharedFs::new());
        rootfs.create("/lib/librt.so", 32 * PAGE_SIZE, 5);
        let src = Node::with_rootfs(
            NodeConfig::default().with_id(0).with_local_mem_mib(64),
            Arc::clone(&device),
            Arc::clone(&rootfs),
        );
        let dst = Node::with_rootfs(
            NodeConfig::default().with_id(1).with_local_mem_mib(64),
            Arc::clone(&device),
            rootfs,
        );
        let criu = CriuCxl::new(Arc::new(CxlFs::new(Arc::clone(&device))));
        Cluster {
            device,
            src,
            dst,
            criu,
        }
    }

    /// Builds a test process: 16 anon pages written, 8 file pages read.
    fn build_process(node: &mut Node) -> Pid {
        let pid = node.spawn("victim").unwrap();
        {
            let p = node.process_mut(pid).unwrap();
            p.task.regs = node_os::process::Registers::seeded(0xFEED);
            p.mm.map_anonymous(0, 16, Protection::read_write(), "heap")
                .unwrap();
            p.mm.map_file(1000, 8, Protection::read_exec(), "/lib/librt.so", 0)
                .unwrap();
            p.task.fds.open(node_os::process::FileDescriptor {
                path: "/lib/librt.so".into(),
                offset: 64,
                writable: false,
            });
        }
        for i in 0..16 {
            node.access(pid, i, Access::Write).unwrap();
        }
        for i in 1000..1008 {
            node.access(pid, i, Access::Read).unwrap();
        }
        pid
    }

    #[test]
    fn checkpoint_captures_dirty_but_skips_clean_file_pages() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let ckpt = c.criu.checkpoint(&mut c.src, pid).unwrap();
        // 16 anon dirty pages captured; 8 clean file pages skipped.
        assert_eq!(ckpt.page_count(), 16);
        assert_eq!(c.criu.meta(&ckpt).footprint_pages, 24);
        assert_eq!(c.criu.meta(&ckpt).vma_count, 2);
        assert!(c.criu.meta(&ckpt).checkpoint_cost > SimDuration::ZERO);
        // Images exist on the shared fs.
        assert_eq!(c.criu.fs().list(&ckpt.dir).len(), 3);
    }

    #[test]
    fn restore_reproduces_memory_and_registers() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        // Scribble a recognizable byte into page 3.
        let pte = c.src.process(pid).unwrap().mm.translate(VirtPageNum(3));
        let Some(PhysAddr::Local(pfn)) = pte.target() else {
            panic!()
        };
        c.src
            .with_process_ctx(pid, |_, ctx| ctx.frames.data_mut(pfn).write(7, &[0xCD]))
            .unwrap();

        let ckpt = c.criu.checkpoint(&mut c.src, pid).unwrap();
        let restored = c.criu.restore(&ckpt, &mut c.dst).unwrap();

        let child = c.dst.process(restored.pid).unwrap();
        assert_eq!(child.task.regs, node_os::process::Registers::seeded(0xFEED));
        assert_eq!(child.task.comm, "victim");
        assert_eq!(child.task.fds.open_count(), 1);
        // Child's page 3 holds the parent's byte, copied to LOCAL memory.
        let cpte = child.mm.translate(VirtPageNum(3));
        let Some(PhysAddr::Local(cpfn)) = cpte.target() else {
            panic!("CRIU restores to local memory")
        };
        assert_eq!(c.dst.frames().data(cpfn).byte_at(7), 0xCD);
        // All 16 captured pages are local: memory consumption ≈ footprint.
        assert_eq!(child.mm.private_local_pages(), 16);
        assert_eq!(child.mm.mapped_cxl_pages(), 0);
    }

    #[test]
    fn restored_child_is_isolated_from_checkpoint() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let ckpt = c.criu.checkpoint(&mut c.src, pid).unwrap();
        let r1 = c.criu.restore(&ckpt, &mut c.dst).unwrap();
        // Child writes; a second restore must still see original data.
        c.dst.access(r1.pid, 0, Access::Write).unwrap();
        let fp_before = c.device.fingerprint(ckpt.pages[0]).unwrap();
        let r2 = c.criu.restore(&ckpt, &mut c.dst).unwrap();
        assert_ne!(r1.pid, r2.pid);
        assert_eq!(c.device.fingerprint(ckpt.pages[0]).unwrap(), fp_before);
    }

    #[test]
    fn restore_latency_scales_with_footprint() {
        let mut c = cluster();
        let small = {
            let pid = c.src.spawn("small").unwrap();
            c.src
                .process_mut(pid)
                .unwrap()
                .mm
                .map_anonymous(0, 64, Protection::read_write(), "heap")
                .unwrap();
            for i in 0..64 {
                c.src.access(pid, i, Access::Write).unwrap();
            }
            pid
        };
        let large = {
            let pid = c.src.spawn("large").unwrap();
            c.src
                .process_mut(pid)
                .unwrap()
                .mm
                .map_anonymous(1 << 20, 2048, Protection::read_write(), "heap")
                .unwrap();
            for i in 0..2048 {
                c.src.access(pid, (1 << 20) + i, Access::Write).unwrap();
            }
            pid
        };
        let ck_s = c.criu.checkpoint(&mut c.src, small).unwrap();
        let ck_l = c.criu.checkpoint(&mut c.src, large).unwrap();
        let r_s = c.criu.restore(&ck_s, &mut c.dst).unwrap();
        let r_l = c.criu.restore(&ck_l, &mut c.dst).unwrap();
        assert!(
            r_l.restore_latency > r_s.restore_latency * 4,
            "restore is dominated by per-byte work: {} vs {}",
            r_l.restore_latency,
            r_s.restore_latency
        );
    }

    #[test]
    fn file_pages_fault_major_on_restore_node() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let ckpt = c.criu.checkpoint(&mut c.src, pid).unwrap();
        let restored = c.criu.restore(&ckpt, &mut c.dst).unwrap();
        // Clean file page was not restored: faults from the root fs.
        let o = c.dst.access(restored.pid, 1000, Access::Read).unwrap();
        assert_eq!(o.fault, Some(node_os::mm::FaultKind::FileMajor));
    }

    #[test]
    fn release_frees_device_space() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let used_before = c.device.used_pages();
        let ckpt = c.criu.checkpoint(&mut c.src, pid).unwrap();
        assert!(c.device.used_pages() > used_before);
        c.criu.release(ckpt, &c.src).unwrap();
        assert_eq!(c.device.used_pages(), used_before);
    }

    #[test]
    fn missing_images_error() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let ckpt = c.criu.checkpoint(&mut c.src, pid).unwrap();
        c.criu.fs().remove(&format!("{}mm.img", ckpt.dir)).unwrap();
        assert!(matches!(
            c.criu.restore(&ckpt, &mut c.dst),
            Err(RforkError::Cxl(_))
        ));
    }
}
