//! The binary image format of the CRIU baseline.
//!
//! Real CRIU serializes each category of process state into a dedicated
//! image file using Protocol Buffers (§2.3.1). The reproduction's
//! equivalent encoder/decoder lives in [`rfork::wire`] (it is shared with
//! the Mitosis baseline's OS-state descriptor); this module pins down the
//! CRIU-specific image type magics.

pub use rfork::wire::{ImageReader, ImageWriter};

/// Magic of a `core.img` (task state) image.
pub const CORE_MAGIC: u32 = 0xC1A0_0001;
/// Magic of an `mm.img` (VMA list) image.
pub const MM_MAGIC: u32 = 0xC1A0_0002;
/// Magic of a `pagemap.img` (page index) image.
pub const PAGEMAP_MAGIC: u32 = 0xC1A0_0003;

#[cfg(test)]
mod tests {
    use super::*;
    use rfork::RforkError;

    #[test]
    fn image_types_are_distinguished_by_magic() {
        let core = ImageWriter::new(CORE_MAGIC).into_bytes();
        assert!(ImageReader::new(&core, CORE_MAGIC).is_ok());
        assert!(matches!(
            ImageReader::new(&core, MM_MAGIC),
            Err(RforkError::BadImage(_))
        ));
        assert!(matches!(
            ImageReader::new(&core, PAGEMAP_MAGIC),
            Err(RforkError::BadImage(_))
        ));
    }
}
