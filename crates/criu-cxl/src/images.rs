//! Typed CRIU images: task core, VMA list, pagemap.

use node_os::process::{FdTable, FileDescriptor, Registers, Task};
use node_os::vma::{Protection, Vma, VmaKind};
use rfork::RforkError;

use crate::imgfmt::{ImageReader, ImageWriter, CORE_MAGIC, MM_MAGIC, PAGEMAP_MAGIC};

/// The serialized task state (`core.img`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreImage {
    /// Command name.
    pub comm: String,
    /// CPU context.
    pub regs: Registers,
    /// Open file descriptors (paths + offsets).
    pub fds: Vec<FileDescriptor>,
    /// Checkpointed PID namespace.
    pub pid_ns: u64,
    /// Checkpointed mount namespace.
    pub mount_ns: u64,
}

impl CoreImage {
    /// Captures a task.
    pub fn capture(task: &Task) -> Self {
        CoreImage {
            comm: task.comm.clone(),
            regs: task.regs,
            fds: task.fds.iter().map(|(_, d)| d.clone()).collect(),
            pid_ns: task.ns.pid_ns,
            mount_ns: task.ns.mount_ns,
        }
    }

    /// Encodes to image bytes.
    ///
    /// # Errors
    ///
    /// [`RforkError::OversizedRecord`] if a string field exceeds the wire
    /// format's length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, RforkError> {
        let mut w = ImageWriter::new(CORE_MAGIC);
        w.put_str(&self.comm)?;
        for r in self.regs.gpr {
            w.put_u64(r);
        }
        w.put_u64(self.regs.rip);
        w.put_u64(self.regs.rsp);
        w.put_u64(self.pid_ns);
        w.put_u64(self.mount_ns);
        w.put_u32(self.fds.len() as u32);
        for fd in &self.fds {
            w.put_str(&fd.path)?;
            w.put_u64(fd.offset);
            w.put_bool(fd.writable);
        }
        Ok(w.into_bytes())
    }

    /// Decodes from image bytes.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on magic mismatch or truncation.
    pub fn decode(bytes: &[u8]) -> Result<Self, RforkError> {
        let mut r = ImageReader::new(bytes, CORE_MAGIC)?;
        let comm = r.get_str()?.to_owned();
        let mut gpr = [0u64; 16];
        for g in &mut gpr {
            *g = r.get_u64()?;
        }
        let rip = r.get_u64()?;
        let rsp = r.get_u64()?;
        let pid_ns = r.get_u64()?;
        let mount_ns = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut fds = Vec::with_capacity(n);
        for _ in 0..n {
            fds.push(FileDescriptor {
                path: r.get_str()?.to_owned(),
                offset: r.get_u64()?,
                writable: r.get_bool()?,
            });
        }
        Ok(CoreImage {
            comm,
            regs: Registers { gpr, rip, rsp },
            fds,
            pid_ns,
            mount_ns,
        })
    }

    /// Rebuilds an fd table from the image.
    pub fn restore_fds(&self) -> FdTable {
        let mut fds = FdTable::new();
        for d in &self.fds {
            fds.open(d.clone());
        }
        fds
    }
}

/// The serialized VMA list (`mm.img`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MmImage {
    /// All VMAs in address order.
    pub vmas: Vec<Vma>,
}

impl MmImage {
    /// Encodes to image bytes.
    ///
    /// # Errors
    ///
    /// [`RforkError::OversizedRecord`] if a string field exceeds the wire
    /// format's length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, RforkError> {
        let mut w = ImageWriter::new(MM_MAGIC);
        w.put_u32(self.vmas.len() as u32);
        for v in &self.vmas {
            w.put_u64(v.start);
            w.put_u64(v.end);
            w.put_bool(v.prot.read);
            w.put_bool(v.prot.write);
            w.put_bool(v.prot.exec);
            w.put_str(&v.label)?;
            match &v.kind {
                VmaKind::Anonymous => w.put_u16(0),
                VmaKind::SharedAnonymous => w.put_u16(2),
                VmaKind::File {
                    path,
                    file_start_page,
                } => {
                    w.put_u16(1);
                    w.put_str(path)?;
                    w.put_u64(*file_start_page);
                }
            }
        }
        Ok(w.into_bytes())
    }

    /// Decodes from image bytes.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on magic mismatch, truncation or an
    /// unknown VMA kind tag.
    pub fn decode(bytes: &[u8]) -> Result<Self, RforkError> {
        let mut r = ImageReader::new(bytes, MM_MAGIC)?;
        let n = r.get_u32()? as usize;
        let mut vmas = Vec::with_capacity(n);
        for _ in 0..n {
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            let prot = Protection {
                read: r.get_bool()?,
                write: r.get_bool()?,
                exec: r.get_bool()?,
            };
            let label = r.get_str()?.to_owned();
            let kind = match r.get_u16()? {
                0 => VmaKind::Anonymous,
                2 => VmaKind::SharedAnonymous,
                1 => VmaKind::File {
                    path: r.get_str()?.to_owned(),
                    file_start_page: r.get_u64()?,
                },
                t => return Err(RforkError::BadImage(format!("unknown vma kind tag {t}"))),
            };
            let mut vma = Vma::anonymous(start, end, prot, &label);
            vma.kind = kind;
            vmas.push(vma);
        }
        Ok(MmImage { vmas })
    }
}

/// One pagemap record: a virtual page, its properties, and the CXL device
/// page its serialized contents occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagemapEntry {
    /// Virtual page number.
    pub vpn: u64,
    /// `true` if the page was dirty at checkpoint time.
    pub dirty: bool,
    /// Index into the checkpoint's device-page array.
    pub page_index: u64,
}

/// The serialized pagemap (`pagemap.img`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PagemapImage {
    /// All captured pages.
    pub entries: Vec<PagemapEntry>,
}

impl PagemapImage {
    /// Encodes to image bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ImageWriter::new(PAGEMAP_MAGIC);
        w.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            w.put_u64(e.vpn);
            w.put_bool(e.dirty);
            w.put_u64(e.page_index);
        }
        w.into_bytes()
    }

    /// Decodes from image bytes.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on magic mismatch or truncation.
    pub fn decode(bytes: &[u8]) -> Result<Self, RforkError> {
        let mut r = ImageReader::new(bytes, PAGEMAP_MAGIC)?;
        let n = r.get_u64()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(PagemapEntry {
                vpn: r.get_u64()?,
                dirty: r.get_bool()?,
                page_index: r.get_u64()?,
            });
        }
        Ok(PagemapImage { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use node_os::addr::Pid;

    #[test]
    fn core_image_roundtrip() {
        let mut task = Task::new(Pid(3), "bert");
        task.regs = Registers::seeded(9);
        task.ns.pid_ns = 4;
        task.ns.mount_ns = 5;
        task.fds.open(FileDescriptor {
            path: "/tmp/x".into(),
            offset: 12,
            writable: true,
        });
        let img = CoreImage::capture(&task);
        let decoded = CoreImage::decode(&img.encode().unwrap()).unwrap();
        assert_eq!(decoded, img);
        assert_eq!(decoded.regs, Registers::seeded(9));
        assert_eq!(decoded.restore_fds().open_count(), 1);
    }

    #[test]
    fn mm_image_roundtrip_mixed_kinds() {
        let img = MmImage {
            vmas: vec![
                Vma::anonymous(0, 10, Protection::read_write(), "heap"),
                Vma::file(100, 120, Protection::read_exec(), "/lib/a.so", 3),
            ],
        };
        let decoded = MmImage::decode(&img.encode().unwrap()).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn pagemap_roundtrip() {
        let img = PagemapImage {
            entries: vec![
                PagemapEntry {
                    vpn: 1,
                    dirty: true,
                    page_index: 0,
                },
                PagemapEntry {
                    vpn: 9,
                    dirty: false,
                    page_index: 1,
                },
            ],
        };
        assert_eq!(PagemapImage::decode(&img.encode()).unwrap(), img);
    }

    #[test]
    fn unknown_vma_tag_rejected() {
        let mut w = ImageWriter::new(MM_MAGIC);
        w.put_u32(1);
        w.put_u64(0);
        w.put_u64(1);
        w.put_bool(true);
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("x").unwrap();
        w.put_u16(9); // bogus kind
        assert!(matches!(
            MmImage::decode(&w.into_bytes()),
            Err(RforkError::BadImage(_))
        ));
    }

    #[test]
    fn cross_image_decode_fails() {
        let core = CoreImage {
            comm: "x".into(),
            regs: Registers::default(),
            fds: vec![],
            pid_ns: 0,
            mount_ns: 0,
        };
        assert!(MmImage::decode(&core.encode().unwrap()).is_err());
    }
}
