//! Property-based tests for the event queue's total ordering.

use cxl_sim::{run, EventQueue, Scheduled, Simulation};
use proptest::prelude::*;
use simclock::SimTime;

proptest! {
    /// The `(time, seq)` key is total: no two scheduled events ever
    /// collide, even when many share a firing time.
    #[test]
    fn ordering_keys_never_collide(times in prop::collection::vec(0u64..100, 1..300)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(*t), i);
        }
        let mut keys = Vec::new();
        while let Some(s) = q.pop() {
            keys.push((s.at, s.seq));
        }
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), keys.len(), "duplicate (time, seq) key");
        prop_assert_eq!(sorted, keys, "pop order disagrees with (time, seq) order");
    }

    /// Pops come out sorted by time, and equal-time events preserve
    /// insertion (FIFO) order regardless of the push permutation.
    #[test]
    fn equal_times_are_fifo(times in prop::collection::vec(0u64..10, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(*t), i);
        }
        let mut prev: Option<(SimTime, u64)> = None;
        while let Some(Scheduled { at, seq, event }) = q.pop() {
            prop_assert_eq!(event as u64, seq, "seq assigned in push order");
            if let Some((pt, ps)) = prev {
                prop_assert!(at > pt || (at == pt && seq > ps));
            }
            prev = Some((at, seq));
        }
    }

    /// Two identical schedules drained through the engine produce the
    /// same dispatch sequence — bit-reproducibility of the loop itself.
    #[test]
    fn identical_schedules_dispatch_identically(
        times in prop::collection::vec(0u64..50, 1..150)
    ) {
        struct Trace {
            order: Vec<(u64, usize)>,
        }
        impl Simulation for Trace {
            type Event = usize;
            fn dispatch(&mut self, ev: Scheduled<usize>, _q: &mut EventQueue<usize>) {
                self.order.push((ev.at.as_nanos(), ev.event));
            }
        }
        let drive = |times: &[u64]| {
            let mut sim = Trace { order: Vec::new() };
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let report = run(&mut sim, &mut q);
            (sim.order, report)
        };
        let (a, ra) = drive(&times);
        let (b, rb) = drive(&times);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ra, rb);
    }
}
