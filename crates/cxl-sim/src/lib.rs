//! Deterministic discrete-event simulation engine for cluster-scale
//! experiments.
//!
//! The straight-line trace replay the porter shipped with walks one
//! invocation at a time, which cannot express a cluster where crashes,
//! deferred dispatches and maintenance interleave across hundreds of
//! nodes. This crate provides the engine that replaces it:
//!
//! * [`EventQueue`] — a binary-heap priority queue of typed events keyed
//!   by `(virtual time, sequence number)`. The sequence number is
//!   assigned at insertion, so the ordering is **total**: no two events
//!   ever compare equal, ties in virtual time resolve to insertion
//!   order, and a run is bit-reproducible regardless of heap internals.
//! * [`Simulation`] + [`run`] — the dispatch loop. A simulation handles
//!   one event at a time and may schedule further events; the engine
//!   enforces that virtual time never runs backwards.
//! * [`NodeMachine`] / [`ClusterMachines`] — per-node state machines
//!   (dispatch, restore, cold-deploy, maintenance, crash) with legality
//!   checking and transition accounting, so cluster runs can report how
//!   often each node entered each phase and a crashed node can never be
//!   driven again.
//!
//! Everything here is pure virtual time: no wall clock, no ambient
//! randomness, no iteration over unordered containers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod machine;
mod queue;

pub use engine::{run, EngineReport, Simulation};
pub use machine::{ClusterMachines, NodeMachine, NodePhase, PHASES};
pub use queue::{EventQueue, Scheduled};
