//! The `(time, seq)`-keyed event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use simclock::SimTime;

/// An event scheduled at a virtual instant.
///
/// `seq` is the queue-assigned insertion sequence number. Together with
/// `at` it forms the queue's **total** ordering key: events fire in
/// `(at, seq)` order, so two events never tie and equal-time events fire
/// in the order they were scheduled (FIFO among ties).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Virtual firing time.
    pub at: SimTime,
    /// Insertion sequence number — unique per queue, monotonically
    /// increasing, never reused.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

/// Internal heap entry. Ordering deliberately ignores the payload: only
/// `(at, seq)` participate, and `seq` uniqueness makes the order total,
/// so `BinaryHeap`'s unstable internals can never leak into results.
#[derive(Debug)]
struct Entry<E>(Scheduled<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest
        // `(at, seq)` on top.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A deterministic virtual-time priority queue of typed events.
///
/// # Example
///
/// ```
/// use cxl_sim::EventQueue;
/// use simclock::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `at` and returns its sequence number.
    ///
    /// Sequence numbers increase with every push, so among events
    /// scheduled for the same instant, the earlier push fires first.
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Scheduled { at, seq, event }));
        seq
    }

    /// Removes and returns the earliest `(at, seq)` event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop().map(|e| e.0);
        if entry.is_some() {
            self.popped += 1;
        }
        entry
    }

    /// Firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Events still queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events scheduled over the queue's lifetime (equals the largest
    /// assigned sequence number plus one, or zero).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Events dispatched (popped) over the queue's lifetime.
    pub fn dispatched_total(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3u32);
        q.push(t(10), 1);
        q.push(t(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(t(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_numbers_are_unique_and_monotonic() {
        let mut q = EventQueue::new();
        let a = q.push(t(5), ());
        let b = q.push(t(1), ());
        let c = q.push(t(5), ());
        assert!(a < b && b < c);
        assert_eq!(q.scheduled_total(), 3);
        // Popping does not recycle sequence numbers.
        let _ = q.pop();
        let d = q.push(t(0), ());
        assert_eq!(d, 3);
        assert_eq!(q.dispatched_total(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_total_order() {
        // Events pushed *during* dispatch (at or after the current pop
        // time) must still come out in (time, seq) order.
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(30), "d");
        let first = q.pop().unwrap();
        assert_eq!(first.event, "a");
        q.push(first.at + SimDuration::from_nanos(5), "b");
        q.push(t(30), "e"); // same instant as "d", pushed later
        q.push(t(20), "c");
        let rest: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(rest, vec!["b", "c", "d", "e"]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(42), ());
        q.push(t(17), ());
        assert_eq!(q.peek_time(), Some(t(17)));
        let popped = q.pop().unwrap();
        assert_eq!(popped.at, t(17));
        assert_eq!(q.peek_time(), Some(t(42)));
    }
}
