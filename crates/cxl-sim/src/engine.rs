//! The dispatch loop.

use simclock::SimTime;

use crate::queue::{EventQueue, Scheduled};

/// A discrete-event simulation: one handler invoked per event, in strict
/// `(time, seq)` order.
///
/// The handler may push further events into the queue; scheduling into
/// the past of the event being dispatched is a logic error the engine
/// catches (see [`run`]).
pub trait Simulation {
    /// The event alphabet.
    type Event;

    /// Handles one event. `queue` accepts follow-up events.
    fn dispatch(&mut self, event: Scheduled<Self::Event>, queue: &mut EventQueue<Self::Event>);
}

/// What a finished [`run`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineReport {
    /// Events dispatched by this run.
    pub dispatched: u64,
    /// Firing time of the last event dispatched (the simulation
    /// horizon), or [`SimTime::ZERO`] for an empty run.
    pub horizon: SimTime,
}

/// Drains `queue` to completion against `sim`, enforcing monotonic
/// virtual time, and reports how far the run reached.
///
/// # Panics
///
/// Panics if dispatch order would run backwards — either a queue
/// invariant breach (impossible with [`EventQueue`]'s total `(time,
/// seq)` key; guarded anyway) or a handler scheduling an event in the
/// past, which would make results depend on dispatch interleaving.
///
/// # Example
///
/// ```
/// use cxl_sim::{run, EventQueue, Scheduled, Simulation};
/// use simclock::{SimDuration, SimTime};
///
/// struct Counter {
///     fired: Vec<u32>,
/// }
/// impl Simulation for Counter {
///     type Event = u32;
///     fn dispatch(&mut self, ev: Scheduled<u32>, q: &mut EventQueue<u32>) {
///         if ev.event < 3 {
///             // Follow-up event one microsecond later.
///             q.push(ev.at + SimDuration::from_micros(1), ev.event + 1);
///         }
///         self.fired.push(ev.event);
///     }
/// }
///
/// let mut sim = Counter { fired: Vec::new() };
/// let mut q = EventQueue::new();
/// q.push(SimTime::ZERO, 0);
/// let report = run(&mut sim, &mut q);
/// assert_eq!(sim.fired, vec![0, 1, 2, 3]);
/// assert_eq!(report.dispatched, 4);
/// ```
pub fn run<S: Simulation>(sim: &mut S, queue: &mut EventQueue<S::Event>) -> EngineReport {
    let mut report = EngineReport::default();
    let mut now = SimTime::ZERO;
    while let Some(event) = queue.pop() {
        assert!(
            event.at >= now,
            "event queue dispatched backwards: {} after {}",
            event.at.as_nanos(),
            now.as_nanos()
        );
        now = event.at;
        report.horizon = now;
        report.dispatched += 1;
        sim.dispatch(event, queue);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;

    struct Recorder {
        seen: Vec<(u64, &'static str)>,
    }

    impl Simulation for Recorder {
        type Event = &'static str;
        fn dispatch(&mut self, ev: Scheduled<&'static str>, q: &mut EventQueue<&'static str>) {
            self.seen.push((ev.at.as_nanos(), ev.event));
            if ev.event == "spawner" {
                q.push(ev.at + SimDuration::from_nanos(1), "child");
            }
        }
    }

    #[test]
    fn runs_to_exhaustion_in_order() {
        let mut sim = Recorder { seen: Vec::new() };
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(50), "last");
        q.push(SimTime::from_nanos(10), "spawner");
        let report = run(&mut sim, &mut q);
        assert_eq!(sim.seen, vec![(10, "spawner"), (11, "child"), (50, "last")]);
        assert_eq!(report.dispatched, 3);
        assert_eq!(report.horizon, SimTime::from_nanos(50));
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_reports_zero() {
        let mut sim = Recorder { seen: Vec::new() };
        let mut q = EventQueue::new();
        let report = run(&mut sim, &mut q);
        assert_eq!(report, EngineReport::default());
    }
}
