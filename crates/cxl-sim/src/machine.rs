//! Per-node state machines.
//!
//! Every node a cluster simulation drives is modelled as a small state
//! machine: it sits [`NodePhase::Idle`] between activities, enters a
//! working phase (dispatch, restore, cold-deploy, maintenance) and
//! returns to idle, or crashes — and [`NodePhase::Crashed`] is
//! absorbing. The machine checks legality of every transition and
//! counts phase entries, so a cluster run can report how often each
//! node restored, cold-deployed or ran maintenance without threading
//! ad-hoc counters through the scheduler.

use simclock::SimTime;

/// A node's activity phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodePhase {
    /// Ready for work; the only phase other phases may be entered from.
    Idle,
    /// Dispatching an invocation to a warm instance.
    Dispatching,
    /// Restoring an instance from a checkpoint image.
    Restoring,
    /// Deploying a function cold (no usable image).
    ColdDeploying,
    /// Running periodic maintenance (lease renewal, reclamation, GC).
    Maintenance,
    /// Crashed. Absorbing: no transition leaves this phase.
    Crashed,
}

/// All phases, in declaration order. Index with [`NodePhase::index`].
pub const PHASES: [NodePhase; 6] = [
    NodePhase::Idle,
    NodePhase::Dispatching,
    NodePhase::Restoring,
    NodePhase::ColdDeploying,
    NodePhase::Maintenance,
    NodePhase::Crashed,
];

impl NodePhase {
    /// Position of this phase in [`PHASES`].
    pub fn index(self) -> usize {
        match self {
            NodePhase::Idle => 0,
            NodePhase::Dispatching => 1,
            NodePhase::Restoring => 2,
            NodePhase::ColdDeploying => 3,
            NodePhase::Maintenance => 4,
            NodePhase::Crashed => 5,
        }
    }

    /// Short lowercase label, for reports.
    pub fn label(self) -> &'static str {
        match self {
            NodePhase::Idle => "idle",
            NodePhase::Dispatching => "dispatching",
            NodePhase::Restoring => "restoring",
            NodePhase::ColdDeploying => "cold_deploying",
            NodePhase::Maintenance => "maintenance",
            NodePhase::Crashed => "crashed",
        }
    }

    /// Whether a node in this phase may enter `next`.
    ///
    /// Legal moves: working phases and `Crashed` are entered from
    /// `Idle`; working phases return to `Idle`; any live phase may
    /// crash; `Crashed` is absorbing. Self-transitions are illegal —
    /// re-entering a phase the node is already in indicates the driver
    /// lost track of the node.
    pub fn can_enter(self, next: NodePhase) -> bool {
        if self == NodePhase::Crashed {
            return false;
        }
        if next == NodePhase::Crashed {
            return true;
        }
        match (self, next) {
            (NodePhase::Idle, NodePhase::Idle) => false,
            (NodePhase::Idle, _) => true,
            (_, NodePhase::Idle) => true,
            _ => false,
        }
    }
}

/// One node's state machine: current phase plus entry accounting.
#[derive(Debug, Clone)]
pub struct NodeMachine {
    phase: NodePhase,
    entered_at: SimTime,
    entries: [u64; PHASES.len()],
    transitions: u64,
}

impl Default for NodeMachine {
    fn default() -> Self {
        NodeMachine::new()
    }
}

impl NodeMachine {
    /// A node starting [`NodePhase::Idle`] at time zero.
    pub fn new() -> Self {
        NodeMachine {
            phase: NodePhase::Idle,
            entered_at: SimTime::ZERO,
            entries: [0; PHASES.len()],
            transitions: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> NodePhase {
        self.phase
    }

    /// Virtual time the current phase was entered.
    pub fn entered_at(&self) -> SimTime {
        self.entered_at
    }

    /// Moves to `next` at virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics on an illegal transition (see [`NodePhase::can_enter`]),
    /// including any attempt to leave [`NodePhase::Crashed`].
    pub fn enter(&mut self, next: NodePhase, at: SimTime) {
        assert!(
            self.phase.can_enter(next),
            "illegal node transition {} -> {} at t={}ns",
            self.phase.label(),
            next.label(),
            at.as_nanos()
        );
        self.phase = next;
        self.entered_at = at;
        self.entries[next.index()] += 1;
        self.transitions += 1;
    }

    /// Times `phase` has been entered (the initial idle phase is not
    /// counted as an entry).
    pub fn entries(&self, phase: NodePhase) -> u64 {
        self.entries[phase.index()]
    }

    /// Total transitions taken.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Whether this node has crashed.
    pub fn is_crashed(&self) -> bool {
        self.phase == NodePhase::Crashed
    }
}

/// State machines for a whole cluster, indexed by node id.
#[derive(Debug, Clone, Default)]
pub struct ClusterMachines {
    nodes: Vec<NodeMachine>,
}

impl ClusterMachines {
    /// Machines for `nodes` nodes, all idle at time zero.
    pub fn new(nodes: usize) -> Self {
        ClusterMachines {
            nodes: vec![NodeMachine::new(); nodes],
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when tracking no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The machine for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: usize) -> &NodeMachine {
        &self.nodes[node]
    }

    /// Drives `node` into `next` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the transition is illegal.
    pub fn enter(&mut self, node: usize, next: NodePhase, at: SimTime) {
        self.nodes[node].enter(next, at);
    }

    /// Convenience: enter a working phase and return to idle at the
    /// same instant. Cluster drivers use this to account a complete
    /// activity without holding the machine open across events.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or either transition is
    /// illegal (e.g. the node has crashed).
    pub fn pulse(&mut self, node: usize, phase: NodePhase, at: SimTime) {
        self.nodes[node].enter(phase, at);
        self.nodes[node].enter(NodePhase::Idle, at);
    }

    /// Total entries into `phase` across all nodes.
    pub fn phase_entries_total(&self, phase: NodePhase) -> u64 {
        self.nodes.iter().map(|n| n.entries(phase)).sum()
    }

    /// Total transitions across all nodes.
    pub fn transitions_total(&self) -> u64 {
        self.nodes.iter().map(NodeMachine::transitions).sum()
    }

    /// Nodes currently crashed.
    pub fn crashed_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_crashed()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn working_phases_round_trip_through_idle() {
        let mut m = NodeMachine::new();
        for phase in [
            NodePhase::Dispatching,
            NodePhase::Restoring,
            NodePhase::ColdDeploying,
            NodePhase::Maintenance,
        ] {
            m.enter(phase, t(10));
            assert_eq!(m.phase(), phase);
            m.enter(NodePhase::Idle, t(20));
        }
        assert_eq!(m.transitions(), 8);
        assert_eq!(m.entries(NodePhase::Idle), 4);
        assert_eq!(m.entries(NodePhase::Restoring), 1);
    }

    #[test]
    fn crash_is_reachable_from_any_live_phase() {
        for phase in [
            NodePhase::Idle,
            NodePhase::Dispatching,
            NodePhase::Restoring,
            NodePhase::ColdDeploying,
            NodePhase::Maintenance,
        ] {
            let mut m = NodeMachine::new();
            if phase != NodePhase::Idle {
                m.enter(phase, t(1));
            }
            m.enter(NodePhase::Crashed, t(2));
            assert!(m.is_crashed());
        }
    }

    #[test]
    #[should_panic(expected = "illegal node transition")]
    fn crashed_is_absorbing() {
        let mut m = NodeMachine::new();
        m.enter(NodePhase::Crashed, t(1));
        m.enter(NodePhase::Idle, t(2));
    }

    #[test]
    #[should_panic(expected = "illegal node transition")]
    fn working_phases_do_not_chain() {
        let mut m = NodeMachine::new();
        m.enter(NodePhase::Dispatching, t(1));
        m.enter(NodePhase::Restoring, t(2));
    }

    #[test]
    #[should_panic(expected = "illegal node transition")]
    fn idle_does_not_reenter_idle() {
        let mut m = NodeMachine::new();
        m.enter(NodePhase::Idle, t(1));
    }

    #[test]
    fn cluster_accounting_sums_across_nodes() {
        let mut c = ClusterMachines::new(3);
        c.pulse(0, NodePhase::Restoring, t(5));
        c.pulse(1, NodePhase::Restoring, t(6));
        c.pulse(1, NodePhase::Dispatching, t(7));
        c.enter(2, NodePhase::Crashed, t(8));
        assert_eq!(c.phase_entries_total(NodePhase::Restoring), 2);
        assert_eq!(c.phase_entries_total(NodePhase::Dispatching), 1);
        assert_eq!(c.crashed_count(), 1);
        assert!(c.node(2).is_crashed());
        assert_eq!(c.transitions_total(), 7);
    }

    #[test]
    fn phases_array_matches_index() {
        for (i, phase) in PHASES.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }
}
