//! Telemetry-armed scenario drivers behind `BENCH_<scenario>.json`.
//!
//! Each builder arms a [`TelemetrySession`], replays one of the shared
//! [`scenarios`](crate::scenarios) with the paper's defaults, and folds
//! the collected telemetry into the stable [`BenchReport`] schema. The
//! `bench_report` binary writes the reports to `BENCH_<scenario>.json`
//! at the workspace root and re-checks them byte-for-byte in CI, so a
//! change that moves any virtual-time result shows up as file drift.
//!
//! All inputs are fixed (calibrated latency model, the Table-1 function
//! suite, the availability bench's seeds), so regenerating a report is
//! deterministic down to the byte.

use cxl_telemetry::{BenchReport, LatencySummary, TelemetryData, TelemetrySession};
use simclock::stats::LatencyHistogram;
use simclock::LatencyModel;

use crate::scenarios::{
    run_availability, run_capacity, run_cluster, run_cold_start, run_contention, run_pipeline,
    run_placement, run_tiering, Scenario, CONTENTION_LOADS, CONTENTION_PARALLELISM,
    CONTENTION_ROUND_TRIPS, DEFAULT_STEADY_INVOCATIONS, PIPELINE_PARALLELISM,
};

/// Functions the cold-start and tiering reports sweep: the same mix the
/// availability trace dispatches. The full Table-1 suite stays with the
/// interactive bench targets — BFS and Bert alone cost tens of seconds
/// per run, too slow for a CI drift gate that replays every scenario.
pub const REPORT_FUNCTIONS: [&str; 3] = ["Float", "Json", "Pyaes"];

/// Seeds the availability report sweeps (same as the `availability`
/// bench target).
pub const AVAILABILITY_SEEDS: [u64; 3] = [7, 1984, 4242];

/// Nodes crashed per availability run.
pub const AVAILABILITY_CRASHES: usize = 2;

/// One armed scenario run: the machine-readable report plus the raw
/// telemetry it was derived from (spans included, for trace export).
#[derive(Debug)]
pub struct ScenarioTelemetry {
    /// The `BENCH_<scenario>.json` payload.
    pub report: BenchReport,
    /// Everything the session recorded while the scenario ran.
    pub data: TelemetryData,
}

/// Checkpoint/restore phase buckets in Fig. 7a stack order. The values
/// come from the exact `core.phase.*` nanosecond counters the mechanism
/// charges, so the buckets sum to the instrumented checkpoint/restore
/// virtual time with no rounding.
pub const CORE_PHASES: [&str; 8] = [
    "checkpoint.copy_pages",
    "checkpoint.rebase",
    "checkpoint.serialize",
    "checkpoint.retry_backoff",
    "restore.global_redo",
    "restore.attach",
    "restore.prefetch",
    "restore.retry_backoff",
];

/// The latest virtual instant any span reached: every recorded span fits
/// in `[0, virtual_ns]`.
fn virtual_ns(data: &TelemetryData) -> u64 {
    data.spans
        .iter()
        .map(|s| s.end.as_nanos())
        .max()
        .unwrap_or(0)
}

/// Fills the fields every scenario shares: the core phase breakdown and
/// the full counter snapshot.
fn fill_common(report: &mut BenchReport, data: &TelemetryData) {
    for phase in CORE_PHASES {
        let ns = data
            .registry
            .counter("core", &format!("phase.{phase}"), None);
        report.phase(phase, ns);
    }
    // Durable stores charge a post-publish journal commit; scenarios
    // without one never create the counter, and their phase lists (and
    // committed reports) stay exactly as before.
    let commit_ns = data
        .registry
        .counter("core", "phase.checkpoint.commit_journal", None);
    if commit_ns > 0 {
        report.phase("checkpoint.commit_journal", commit_ns);
    }
    report.counters = data
        .registry
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
}

/// The [`REPORT_FUNCTIONS`] specs, resolved from the Table-1 suite.
fn report_suite() -> Vec<faas::FunctionSpec> {
    REPORT_FUNCTIONS
        .iter()
        .map(|name| faas::by_name(name).expect("report function exists in the suite"))
        .collect()
}

/// Runs the Fig. 7a grid — [`REPORT_FUNCTIONS`] under all five
/// cold-start scenarios — with telemetry armed, and summarizes it as
/// the `cold_start` report. `e2e` is the end-to-end cold-start
/// execution time over every (function, scenario) cell; per-scenario
/// distributions are reported alongside it.
pub fn cold_start_report(model: &LatencyModel) -> ScenarioTelemetry {
    let scenarios = [
        Scenario::Cold,
        Scenario::LocalFork,
        Scenario::Criu,
        Scenario::Mitosis,
        Scenario::cxlfork_default(),
    ];
    let session = TelemetrySession::start();
    let mut e2e = LatencyHistogram::new();
    let mut per_scenario: Vec<(String, LatencyHistogram)> = scenarios
        .iter()
        .map(|s| (s.label(), LatencyHistogram::new()))
        .collect();
    for spec in report_suite() {
        for (i, scenario) in scenarios.iter().enumerate() {
            let row = run_cold_start(&spec, *scenario, model, DEFAULT_STEADY_INVOCATIONS);
            e2e.record(row.total);
            per_scenario[i].1.record(row.total);
        }
    }
    let data = session.finish();

    let mut report = BenchReport::new("cold_start");
    report.virtual_ns = virtual_ns(&data);
    fill_common(&mut report, &data);
    report.latency(LatencySummary::from_histogram("e2e", &e2e));
    for (label, h) in &per_scenario {
        report.latency(LatencySummary::from_histogram(&format!("e2e.{label}"), h));
    }
    ScenarioTelemetry { report, data }
}

/// Runs the Fig. 8 tiering grid — [`REPORT_FUNCTIONS`] under MoW, MoA
/// and hybrid restore policies — with telemetry armed. `e2e` is the
/// cold execution time; the warm steady-state invocation is reported as
/// the `warm` distribution.
pub fn tiering_report(model: &LatencyModel) -> ScenarioTelemetry {
    let policies = [
        rfork::RestoreOptions::mow(),
        rfork::RestoreOptions::moa(),
        rfork::RestoreOptions::hybrid(),
    ];
    let session = TelemetrySession::start();
    let mut e2e = LatencyHistogram::new();
    let mut warm = LatencyHistogram::new();
    let mut per_policy: Vec<(String, LatencyHistogram)> = policies
        .iter()
        .map(|o| (o.policy.to_string(), LatencyHistogram::new()))
        .collect();
    for spec in report_suite() {
        for (i, options) in policies.iter().enumerate() {
            let row = run_tiering(&spec, *options, model, DEFAULT_STEADY_INVOCATIONS);
            e2e.record(row.cold);
            warm.record(row.warm);
            per_policy[i].1.record(row.cold);
        }
    }
    let data = session.finish();

    let mut report = BenchReport::new("tiering");
    report.virtual_ns = virtual_ns(&data);
    fill_common(&mut report, &data);
    report.latency(LatencySummary::from_histogram("e2e", &e2e));
    report.latency(LatencySummary::from_histogram("warm", &warm));
    for (label, h) in &per_policy {
        report.latency(LatencySummary::from_histogram(&format!("e2e.{label}"), h));
    }
    ScenarioTelemetry { report, data }
}

/// Runs the availability experiment over [`AVAILABILITY_SEEDS`] with
/// telemetry armed. `e2e` comes from the porter's own `cxlporter.e2e`
/// timer (request completion minus arrival, in virtual time), merged
/// across the seeds; per-function distributions ride along.
///
/// # Panics
///
/// If any seeded run leaks or double-executes a request (the same
/// exactly-once invariant the `availability` bench asserts).
pub fn availability_report(model: &LatencyModel) -> ScenarioTelemetry {
    let session = TelemetrySession::start();
    let mut recovered_images = 0u64;
    let mut journal_replay_ns = 0u64;
    let mut replay_pages_scanned = 0u64;
    for seed in AVAILABILITY_SEEDS {
        let outcome = run_availability(seed, AVAILABILITY_CRASHES, model);
        assert!(
            outcome.accounting_balances(),
            "seed {seed}: requests leaked or double-executed"
        );
        assert_eq!(
            outcome.recovery.fingerprint_mismatches, 0,
            "seed {seed}: journal replay failed the fingerprint cross-check"
        );
        recovered_images += outcome.successor.recovered_images;
        journal_replay_ns += outcome.successor.journal_replay_ns;
        replay_pages_scanned += outcome.recovery.pages_scanned;
    }
    let data = session.finish();

    let mut report = BenchReport::new("availability");
    report.virtual_ns = virtual_ns(&data);
    fill_common(&mut report, &data);
    // Coordinator-failover recovery metrics, summed over the seeds: how
    // many journaled images each successor adopted and the virtual time
    // its journal replay cost.
    report
        .counters
        .push(("availability.recovered_images".into(), recovered_images));
    report
        .counters
        .push(("availability.journal_replay_ns".into(), journal_replay_ns));
    report.counters.push((
        "availability.replay_pages_scanned".into(),
        replay_pages_scanned,
    ));
    let e2e = data.registry.timer_across_nodes("cxlporter", "e2e");
    report.latency(LatencySummary::from_histogram("e2e", &e2e));
    for (key, h) in data.registry.timers() {
        if key.layer == "cxlporter" && key.name.starts_with("e2e.") {
            report.latency(LatencySummary::from_histogram(&key.name, h));
        }
    }
    ScenarioTelemetry { report, data }
}

/// Runs the capacity experiment — [`REPORT_FUNCTIONS`] with half their
/// library pages shared across runtime templates, checkpointed privately
/// and through the content-addressed store, plus one pressured
/// watermark-eviction sweep — with telemetry armed. `e2e` is the
/// per-function checkpoint cost through the store (the path capacity
/// management sits on); the dedup ratio and eviction outcomes land in
/// `capacity.*` counters next to the store's own `cxlstore/*` counters.
///
/// # Panics
///
/// If the store-backed run does not end with fewer used device pages
/// than the private baseline on the identical workload.
pub fn capacity_report(model: &LatencyModel) -> ScenarioTelemetry {
    let session = TelemetrySession::start();
    let outcome = run_capacity(&report_suite(), model);
    let data = session.finish();

    assert!(
        outcome.store_cxl_pages < outcome.baseline_cxl_pages,
        "the store must beat the private baseline: {} vs {} pages",
        outcome.store_cxl_pages,
        outcome.baseline_cxl_pages,
    );

    let mut report = BenchReport::new("capacity");
    report.virtual_ns = virtual_ns(&data);
    fill_common(&mut report, &data);
    let mut e2e = LatencyHistogram::new();
    for (_, cost) in &outcome.checkpoint_costs {
        e2e.record(*cost);
    }
    report.latency(LatencySummary::from_histogram("e2e", &e2e));
    for (name, cost) in &outcome.checkpoint_costs {
        let mut h = LatencyHistogram::new();
        h.record(*cost);
        report.latency(LatencySummary::from_histogram(&format!("e2e.{name}"), &h));
    }
    for (name, value) in [
        ("capacity.baseline_cxl_pages", outcome.baseline_cxl_pages),
        ("capacity.store_cxl_pages", outcome.store_cxl_pages),
        ("capacity.deduped_pages", outcome.store_stats.deduped_pages),
        ("capacity.fresh_pages", outcome.store_stats.fresh_pages),
        ("capacity.zero_elided", outcome.store_stats.zero_elided),
        ("capacity.sweep_evicted_images", outcome.evicted_images),
        ("capacity.sweep_evicted_pages", outcome.evicted_pages),
        ("capacity.sweep_survivor_images", outcome.survivor_images),
    ] {
        report.counters.push((name.to_string(), value));
    }
    ScenarioTelemetry { report, data }
}

/// Seed the cluster report runs with (fixed, like
/// [`AVAILABILITY_SEEDS`], so the report is byte-reproducible).
pub const CLUSTER_SEED: u64 = 6502;

/// Cluster size the report runs at (the scale target the paper's
/// two-VM prototype could not reach).
pub const CLUSTER_NODES: usize = 64;

/// Runs the cluster-scale experiment — a ≥100k-invocation multi-tenant
/// diurnal trace over [`CLUSTER_NODES`] nodes on the discrete-event
/// engine — with telemetry armed. `e2e` is the porter's end-to-end
/// request timer; `queue.wait` is the per-node dispatch-queue wait
/// (`cxlporter.queue.latency` merged across nodes), whose p50/p99 are
/// the fairness quantities of interest. Throughput, fairness counters,
/// crash and eviction outcomes land in `cluster.*` counters.
///
/// # Panics
///
/// If the run leaks or double-executes a request (served +
/// memory-drops + fairness-drops must equal arrivals + crash
/// re-dispatches).
pub fn cluster_report(model: &LatencyModel) -> ScenarioTelemetry {
    let session = TelemetrySession::start();
    let outcome = run_cluster(CLUSTER_SEED, CLUSTER_NODES, model);
    let data = session.finish();

    assert!(
        outcome.accounting_balances(),
        "cluster run leaked or double-executed requests"
    );

    let mut report = BenchReport::new("cluster");
    report.virtual_ns = virtual_ns(&data);
    fill_common(&mut report, &data);
    let e2e = data.registry.timer_across_nodes("cxlporter", "e2e");
    report.latency(LatencySummary::from_histogram("e2e", &e2e));
    let queue = data
        .registry
        .timer_across_nodes("cxlporter", "queue.latency");
    report.latency(LatencySummary::from_histogram("queue.wait", &queue));

    let r = &outcome.report;
    let served = outcome.completed();
    let secs = outcome.duration.as_nanos() / 1_000_000_000;
    let per_owner: Vec<u64> = r.per_owner_served.values().copied().collect();
    for (name, value) in [
        ("cluster.nodes", CLUSTER_NODES as u64),
        ("cluster.tenants", u64::from(outcome.tenants)),
        ("cluster.functions", outcome.functions),
        ("cluster.trace_len", outcome.trace_len),
        ("cluster.served", served),
        // Milli-requests per virtual second: integer so the JSON stays
        // byte-stable.
        ("cluster.throughput_mrps", served * 1000 / secs),
        ("cluster.fair_deferrals", r.fair_deferrals),
        ("cluster.fair_drops", r.fair_drops),
        ("cluster.owners_served", per_owner.len() as u64),
        (
            "cluster.owner_served_min",
            per_owner.iter().copied().min().unwrap_or(0),
        ),
        (
            "cluster.owner_served_max",
            per_owner.iter().copied().max().unwrap_or(0),
        ),
        ("cluster.engine_events", r.engine_events),
        ("cluster.crashes_survived", r.crashes_survived),
        ("cluster.redispatched", r.redispatched),
        ("cluster.image_evictions", r.image_evictions),
        ("cluster.store_deduped_pages", r.store_deduped_pages),
        (
            "cluster.store_evicted_pages",
            outcome.store_stats.evicted_pages,
        ),
        ("cluster.device_retries", r.device_retries),
    ] {
        report.counters.push((name.to_string(), value));
    }
    ScenarioTelemetry { report, data }
}

/// Runs the pipeline ablation — the unit cold-start experiment over
/// [`REPORT_FUNCTIONS`] at every [`PIPELINE_PARALLELISM`] setting, with
/// serial CRIU-CXL and Mitosis-CXL checkpoints riding along as fixed
/// references. Each parallelism level runs under its own telemetry
/// session so the `checkpoint.copy_pages` phase can be reported per
/// level; the serial (`p = 1`) session anchors `virtual_ns` and the
/// common phase breakdown, which therefore match the serial model
/// exactly.
///
/// # Panics
///
/// If the copy phase is not monotonically non-increasing in `p`, has
/// not strictly shrunk by `p = 8` (the device's bank count), or if
/// either baseline's checkpoint cost moves with `p` — any of those
/// would mean the ablation stopped measuring what it claims to.
pub fn pipeline_report(model: &LatencyModel) -> ScenarioTelemetry {
    let mut anchor: Option<TelemetryData> = None;
    let mut e2e = LatencyHistogram::new();
    // Per level: (p, copy-phase ns, checkpoint ns, e2e distribution).
    let mut levels: Vec<(u32, u64, u64, LatencyHistogram)> = Vec::new();
    let mut criu_ns: Option<u64> = None;
    let mut mitosis_ns: Option<u64> = None;
    for p in PIPELINE_PARALLELISM {
        let session = TelemetrySession::start();
        let mut level_e2e = LatencyHistogram::new();
        let mut checkpoint_ns = 0u64;
        let mut level_criu = 0u64;
        let mut level_mitosis = 0u64;
        for spec in report_suite() {
            let row = run_pipeline(&spec, p, model, DEFAULT_STEADY_INVOCATIONS);
            e2e.record(row.total);
            level_e2e.record(row.total);
            checkpoint_ns += row.checkpoint_cost.as_nanos();
            level_criu += row.criu_checkpoint.as_nanos();
            level_mitosis += row.mitosis_checkpoint.as_nanos();
        }
        let data = session.finish();
        let copy_ns = data
            .registry
            .counter("core", "phase.checkpoint.copy_pages", None);
        assert_eq!(
            *criu_ns.get_or_insert(level_criu),
            level_criu,
            "CRIU-CXL baseline moved at p = {p}: the knob must not leak into it"
        );
        assert_eq!(
            *mitosis_ns.get_or_insert(level_mitosis),
            level_mitosis,
            "Mitosis-CXL baseline moved at p = {p}: the knob must not leak into it"
        );
        if let Some((_, prev_copy, _, _)) = levels.last() {
            assert!(
                copy_ns <= *prev_copy,
                "copy phase regressed at p = {p}: {copy_ns} > {prev_copy}"
            );
        }
        levels.push((p, copy_ns, checkpoint_ns, level_e2e));
        if p == 1 {
            anchor = Some(data);
        }
    }
    let serial_copy = levels[0].1;
    let p8_copy = levels
        .iter()
        .find(|(p, ..)| *p == 8)
        .expect("sweep includes p = 8")
        .1;
    assert!(
        p8_copy < serial_copy,
        "eight streams must beat the serial copy: {p8_copy} vs {serial_copy}"
    );

    let data = anchor.expect("sweep includes the serial level");
    let mut report = BenchReport::new("pipeline");
    report.virtual_ns = virtual_ns(&data);
    fill_common(&mut report, &data);
    for (p, copy_ns, checkpoint_ns, _) in &levels {
        report
            .counters
            .push((format!("pipeline.p{p}.copy_pages_ns"), *copy_ns));
        report
            .counters
            .push((format!("pipeline.p{p}.checkpoint_ns"), *checkpoint_ns));
    }
    report.counters.push((
        "pipeline.criu_checkpoint_ns".into(),
        criu_ns.expect("baseline ran"),
    ));
    report.counters.push((
        "pipeline.mitosis_checkpoint_ns".into(),
        mitosis_ns.expect("baseline ran"),
    ));
    report.latency(LatencySummary::from_histogram("e2e", &e2e));
    for (p, _, _, h) in &levels {
        report.latency(LatencySummary::from_histogram(&format!("e2e.p{p}"), h));
    }
    ScenarioTelemetry { report, data }
}

/// Images each placement-policy sweep checkpoints back to back.
pub const PLACEMENT_CHECKPOINTS: u64 = 4;

/// Runs the round-trip × offered-load contention surface (Float, p = 8)
/// plus the stripe-vs-locality placement sweep, and summarizes both as
/// the `contention` report. Two properties are enforced at generation
/// time, so a committed `BENCH_contention.json` always exhibits them:
/// within each round trip, end-to-end cost never decreases as the
/// background load rises (and strictly rises by the 900 ‰ cell), and
/// striping consecutive checkpoints across the two-device pool beats
/// pinning them all to one device.
pub fn contention_report(model: &LatencyModel) -> ScenarioTelemetry {
    let spec = faas::by_name("Float").expect("Float is in the suite");
    let session = TelemetrySession::start();
    let mut e2e = LatencyHistogram::new();
    let mut cells = Vec::new();
    for rt in CONTENTION_ROUND_TRIPS {
        let mut idle: Option<u64> = None;
        let mut prev: Option<u64> = None;
        for load in CONTENTION_LOADS {
            let row = run_contention(
                &spec,
                CONTENTION_PARALLELISM,
                rt,
                load,
                DEFAULT_STEADY_INVOCATIONS,
            );
            let total = row.total.as_nanos();
            if let Some(prev) = prev {
                assert!(
                    total >= prev,
                    "contention cost fell with load at rt = {rt}: {total} < {prev}"
                );
            }
            prev = Some(total);
            idle.get_or_insert(total);
            e2e.record(row.total);
            cells.push(row);
        }
        let idle = idle.expect("sweep includes load = 0");
        let loaded = prev.expect("sweep includes load = 900");
        assert!(
            loaded > idle,
            "900 ‰ background load must cost more than an idle fabric at rt = {rt}"
        );
    }
    let locality = run_placement(
        &spec,
        cxl_fabric::PlacementPolicy::Locality,
        PLACEMENT_CHECKPOINTS,
        model,
        DEFAULT_STEADY_INVOCATIONS,
    );
    let stripe = run_placement(
        &spec,
        cxl_fabric::PlacementPolicy::Stripe,
        PLACEMENT_CHECKPOINTS,
        model,
        DEFAULT_STEADY_INVOCATIONS,
    );
    assert!(
        stripe < locality,
        "striping must relieve the per-device backlog: {stripe:?} vs {locality:?}"
    );
    let data = session.finish();
    let mut report = BenchReport::new("contention");
    report.virtual_ns = virtual_ns(&data);
    fill_common(&mut report, &data);
    for row in &cells {
        let key = format!(
            "contention.rt{}.load{}",
            row.round_trip_ns, row.background_load_permille
        );
        report.counters.push((
            format!("{key}.checkpoint_ns"),
            row.checkpoint_cost.as_nanos(),
        ));
        report
            .counters
            .push((format!("{key}.restore_ns"), row.restore.as_nanos()));
        report
            .counters
            .push((format!("{key}.total_ns"), row.total.as_nanos()));
    }
    report.counters.push((
        "contention.placement.locality_ns".into(),
        locality.as_nanos(),
    ));
    report
        .counters
        .push(("contention.placement.stripe_ns".into(), stripe.as_nanos()));
    report.latency(LatencySummary::from_histogram("e2e", &e2e));
    ScenarioTelemetry { report, data }
}

/// All seven scenario reports in `(name, builder)` form, for the binary
/// and CI to iterate.
pub fn all_reports(model: &LatencyModel) -> Vec<ScenarioTelemetry> {
    vec![
        cold_start_report(model),
        tiering_report(model),
        availability_report(model),
        capacity_report(model),
        cluster_report(model),
        pipeline_report(model),
        contention_report(model),
    ]
}
