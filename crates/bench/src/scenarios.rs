//! Shared experiment scenarios.
//!
//! The evaluation's unit experiment (§6.2 "Performance of CXLfork") is:
//! deploy a function on a source node, invoke it until steady state
//! (checkpoint after the 16th invocation, §5), checkpoint it, then
//! remote-fork it to a *different* node to serve an incoming request and
//! measure the cold-start execution (restore + page faults + execution)
//! and the local memory the child consumes. Functions run unsandboxed
//! (no containers) in these scenarios, exactly as in §6.2.

use std::sync::Arc;

use criu_cxl::CriuCxl;
use cxl_mem::{CxlDevice, CxlFs, NodeId};
use cxlfork::{CxlFork, CxlForkConfig};
use faas::FunctionSpec;
use mitosis_cxl::MitosisCxl;
use node_os::fs::SharedFs;
use node_os::{Node, NodeConfig};
use rfork::{RemoteFork, RestoreOptions};
use simclock::{LatencyModel, SimDuration};

/// Steady-state invocations before checkpointing (the paper checkpoints
/// after the 16th invocation: 1 warm-up + 15 steady).
pub const DEFAULT_STEADY_INVOCATIONS: u64 = 15;

/// A cold-start scenario from Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Vanilla cold start on the target node.
    Cold,
    /// Local fork from a warm parent on the target node.
    LocalFork,
    /// CRIU adapted to a CXL shared filesystem.
    Criu,
    /// Mitosis adapted to CXL page copies.
    Mitosis,
    /// CXLfork with the given restore options.
    CxlFork(RestoreOptions),
}

impl Scenario {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            Scenario::Cold => "Cold".into(),
            Scenario::LocalFork => "LocalFork".into(),
            Scenario::Criu => "CRIU-CXL".into(),
            Scenario::Mitosis => "Mitosis-CXL".into(),
            Scenario::CxlFork(o) => format!("CXLfork-{}", o.policy),
        }
    }

    /// The default CXLfork scenario (MoW + dirty prefetch).
    pub fn cxlfork_default() -> Scenario {
        Scenario::CxlFork(RestoreOptions::mow())
    }
}

/// One row of the Fig. 7 experiments.
#[derive(Debug, Clone)]
pub struct ColdStartRow {
    /// Scenario label.
    pub scenario: String,
    /// Function name.
    pub function: String,
    /// Restore (or init/fork) phase latency.
    pub restore: SimDuration,
    /// Page-fault portion of the first invocation.
    pub faults: SimDuration,
    /// Remaining execution (memory + compute).
    pub execution: SimDuration,
    /// End-to-end cold-start execution time.
    pub total: SimDuration,
    /// Local frames the child added on the target node.
    pub local_pages: u64,
    /// Faults taken during the invocation.
    pub fault_count: u64,
    /// Checkpoint cost (zero for Cold/LocalFork).
    pub checkpoint_cost: SimDuration,
    /// CXL device pages the checkpoint occupies.
    pub checkpoint_cxl_pages: u64,
}

fn two_node_cluster(model: &LatencyModel) -> (Vec<Node>, Arc<CxlDevice>, Arc<SharedFs>) {
    let device = Arc::new(CxlDevice::with_capacity_mib(8192));
    let rootfs = Arc::new(SharedFs::new());
    let nodes = (0..2)
        .map(|i| {
            Node::with_rootfs(
                NodeConfig::default()
                    .with_id(i)
                    .with_local_mem_mib(4096)
                    .with_model(model.clone()),
                Arc::clone(&device),
                Arc::clone(&rootfs),
            )
        })
        .collect();
    (nodes, device, rootfs)
}

/// Post-condition under the `check` feature: after a scenario run, every
/// node's memory ledgers, the device's region books, and the global
/// lock-order graph must all be clean. Checkpoints may still be live;
/// the audit verifies consistency, not emptiness.
#[cfg(feature = "check")]
fn audit_scenario(nodes: &[&Node], device: &CxlDevice) {
    let mut violations = Vec::new();
    for node in nodes {
        violations.extend(cxl_check::audit_node(node));
    }
    violations.extend(cxl_check::audit_device(device));
    violations.extend(cxl_check::check_lock_order());
    assert!(
        violations.is_empty(),
        "scenario left cross-layer violations: {violations:?}"
    );
}

#[cfg(not(feature = "check"))]
fn audit_scenario(_nodes: &[&Node], _device: &CxlDevice) {}

/// Deploys + warms a parent on `node`, returning its pid.
fn warm_parent(node: &mut Node, spec: &FunctionSpec, steady: u64) -> node_os::Pid {
    let (pid, _) = faas::deploy_cold(node, spec).expect("parent deployment fits the node");
    faas::warm_for_checkpoint(node, pid, spec, steady).expect("warm-up fits the node");
    pid
}

/// Runs one Fig. 7 cold-start scenario for `spec` with `steady`
/// pre-checkpoint invocations, under `model`.
pub fn run_cold_start(
    spec: &FunctionSpec,
    scenario: Scenario,
    model: &LatencyModel,
    steady: u64,
) -> ColdStartRow {
    let (mut nodes, device, _rootfs) = two_node_cluster(model);
    let mut node1 = nodes.pop().expect("two nodes");
    let mut node0 = nodes.pop().expect("two nodes");

    let row = match scenario {
        Scenario::Cold => {
            let before = node1.frames().used();
            let (pid, init) = faas::deploy_cold(&mut node1, spec).expect("cold deploy fits");
            let r = faas::run_invocation(&mut node1, pid, spec, 0).expect("invocation");
            ColdStartRow {
                scenario: scenario.label(),
                function: spec.name.clone(),
                restore: init.total,
                faults: r.fault,
                execution: r.total - r.fault,
                total: init.total + r.total,
                local_pages: node1.frames().used() - before,
                fault_count: r.faults,
                checkpoint_cost: SimDuration::ZERO,
                checkpoint_cxl_pages: 0,
            }
        }
        Scenario::LocalFork => {
            let parent = warm_parent(&mut node1, spec, steady);
            let before = node1.frames().used();
            let (child, fork_cost) = node1.local_fork(parent).expect("fork");
            let r = faas::run_invocation(&mut node1, child, spec, 0).expect("invocation");
            ColdStartRow {
                scenario: scenario.label(),
                function: spec.name.clone(),
                restore: fork_cost,
                faults: r.fault,
                execution: r.total - r.fault,
                total: fork_cost + r.total,
                local_pages: node1.frames().used() - before,
                fault_count: r.faults,
                checkpoint_cost: SimDuration::ZERO,
                checkpoint_cxl_pages: 0,
            }
        }
        Scenario::Criu => {
            let parent = warm_parent(&mut node0, spec, steady);
            let criu = CriuCxl::new(Arc::new(CxlFs::new(Arc::clone(&device))));
            let ckpt = criu
                .checkpoint(&mut node0, parent)
                .expect("checkpoint fits CXL");
            finish_rfork(
                &criu,
                &ckpt,
                &mut node1,
                spec,
                scenario,
                RestoreOptions::default(),
            )
        }
        Scenario::Mitosis => {
            let parent = warm_parent(&mut node0, spec, steady);
            let mitosis = MitosisCxl::new();
            let ckpt = mitosis.checkpoint(&mut node0, parent).expect("checkpoint");
            finish_rfork(
                &mitosis,
                &ckpt,
                &mut node1,
                spec,
                scenario,
                RestoreOptions::default(),
            )
        }
        Scenario::CxlFork(options) => {
            let parent = warm_parent(&mut node0, spec, steady);
            let fork = CxlFork::new();
            let ckpt = fork
                .checkpoint(&mut node0, parent)
                .expect("checkpoint fits CXL");
            finish_rfork(&fork, &ckpt, &mut node1, spec, scenario, options)
        }
    };
    audit_scenario(&[&node0, &node1], &device);
    row
}

fn finish_rfork<M: RemoteFork>(
    mech: &M,
    ckpt: &M::Checkpoint,
    node1: &mut Node,
    spec: &FunctionSpec,
    scenario: Scenario,
    options: RestoreOptions,
) -> ColdStartRow {
    let before = node1.frames().used();
    let restored = mech
        .restore_with(ckpt, node1, options)
        .expect("restore fits");
    let r = faas::run_invocation(node1, restored.pid, spec, 0).expect("invocation");
    let meta = mech.meta(ckpt);
    ColdStartRow {
        scenario: scenario.label(),
        function: spec.name.clone(),
        restore: restored.restore_latency,
        faults: r.fault,
        execution: r.total - r.fault,
        total: restored.restore_latency + r.total,
        local_pages: node1.frames().used() - before,
        fault_count: r.faults,
        checkpoint_cost: meta.checkpoint_cost,
        checkpoint_cxl_pages: meta.cxl_pages,
    }
}

/// Stream counts the pipeline ablation sweeps (`BENCH_pipeline.json`).
/// `1` is the serial model; the device defaults to eight banks, so the
/// curve is expected to flatten at `p = 8`.
pub const PIPELINE_PARALLELISM: [u32; 5] = [1, 2, 4, 8, 16];

/// One row of the pipeline ablation: the unit cold-start experiment with
/// CXLfork's transfer parallelism set to `parallelism`, next to serial
/// CRIU-CXL and Mitosis-CXL checkpoints of the *same* warmed function so
/// the speedup stays attributable to the pipeline and not to a baseline
/// drift.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Shard-stream parallelism the CXLfork run used.
    pub parallelism: u32,
    /// Function name.
    pub function: String,
    /// CXLfork checkpoint cost at this parallelism.
    pub checkpoint_cost: SimDuration,
    /// CXLfork restore latency (pipelined prefetch path).
    pub restore: SimDuration,
    /// End-to-end checkpoint + cold start (checkpoint + restore + first
    /// invocation) — the full path the pipeline overlaps, so this is the
    /// quantity expected to shrink with `parallelism`.
    pub total: SimDuration,
    /// CRIU-CXL checkpoint cost — always serial, must not move with `p`.
    pub criu_checkpoint: SimDuration,
    /// Mitosis-CXL checkpoint cost — always serial, must not move with `p`.
    pub mitosis_checkpoint: SimDuration,
}

/// Runs the unit experiment with `parallelism` shard streams: warm a
/// parent, checkpoint it through [`CxlFork`] with the pipeline knob set,
/// remote-fork it to the second node (MoW + dirty prefetch, the default
/// scenario), and invoke once. CRIU-CXL and Mitosis-CXL checkpoint the
/// identically warmed function on fresh clusters and stay serial —
/// they model page-granular copies with no shard-stream concept.
pub fn run_pipeline(
    spec: &FunctionSpec,
    parallelism: u32,
    model: &LatencyModel,
    steady: u64,
) -> PipelineRow {
    let (mut nodes, device, _rootfs) = two_node_cluster(model);
    let mut node1 = nodes.pop().expect("two nodes");
    let mut node0 = nodes.pop().expect("two nodes");
    let parent = warm_parent(&mut node0, spec, steady);
    let fork = CxlFork::with_config(CxlForkConfig::with_parallelism(parallelism));
    let ckpt = fork
        .checkpoint(&mut node0, parent)
        .expect("checkpoint fits CXL");
    let restored = fork
        .restore_with(&ckpt, &mut node1, RestoreOptions::mow())
        .expect("restore fits");
    let r = faas::run_invocation(&mut node1, restored.pid, spec, 0).expect("invocation");
    audit_scenario(&[&node0, &node1], &device);

    let (criu_nodes, criu_device, _criu_rootfs) = two_node_cluster(model);
    let mut criu_node = criu_nodes.into_iter().next().expect("two nodes");
    let criu_parent = warm_parent(&mut criu_node, spec, steady);
    let criu = CriuCxl::new(Arc::new(CxlFs::new(Arc::clone(&criu_device))));
    let criu_ckpt = criu
        .checkpoint(&mut criu_node, criu_parent)
        .expect("checkpoint fits CXL");
    let criu_cost = criu.meta(&criu_ckpt).checkpoint_cost;
    audit_scenario(&[&criu_node], &criu_device);

    let (mitosis_nodes, mitosis_device, _mitosis_rootfs) = two_node_cluster(model);
    let mut mitosis_node = mitosis_nodes.into_iter().next().expect("two nodes");
    let mitosis_parent = warm_parent(&mut mitosis_node, spec, steady);
    let mitosis = MitosisCxl::new();
    let mitosis_ckpt = mitosis
        .checkpoint(&mut mitosis_node, mitosis_parent)
        .expect("checkpoint");
    let mitosis_cost = mitosis.meta(&mitosis_ckpt).checkpoint_cost;
    audit_scenario(&[&mitosis_node], &mitosis_device);

    let checkpoint_cost = fork.meta(&ckpt).checkpoint_cost;
    PipelineRow {
        parallelism,
        function: spec.name.clone(),
        checkpoint_cost,
        restore: restored.restore_latency,
        total: checkpoint_cost + restored.restore_latency + r.total,
        criu_checkpoint: criu_cost,
        mitosis_checkpoint: mitosis_cost,
    }
}

/// One row of the Fig. 8 / Fig. 9 tiering experiments.
#[derive(Debug, Clone)]
pub struct TieringRow {
    /// Policy label.
    pub policy: String,
    /// Function name.
    pub function: String,
    /// Cold execution time (restore + first invocation).
    pub cold: SimDuration,
    /// Warm execution time (steady-state invocation after cache warm-up).
    pub warm: SimDuration,
    /// Local frames consumed after the warm-up invocations.
    pub local_pages: u64,
}

/// Runs the Fig. 8 tiering experiment: restore with `options`, measure
/// cold execution, then warm execution as the 4th invocation.
pub fn run_tiering(
    spec: &FunctionSpec,
    options: RestoreOptions,
    model: &LatencyModel,
    steady: u64,
) -> TieringRow {
    let (mut nodes, device, _rootfs) = two_node_cluster(model);
    let mut node1 = nodes.pop().expect("two nodes");
    let mut node0 = nodes.pop().expect("two nodes");
    let parent = warm_parent(&mut node0, spec, steady);
    let fork = CxlFork::new();
    let ckpt = fork
        .checkpoint(&mut node0, parent)
        .expect("checkpoint fits CXL");

    let before = node1.frames().used();
    let restored = fork
        .restore_with(&ckpt, &mut node1, options)
        .expect("restore fits");
    let r0 = faas::run_invocation(&mut node1, restored.pid, spec, 0).expect("invocation");
    let cold = restored.restore_latency + r0.total;
    for i in 1..3 {
        faas::run_invocation(&mut node1, restored.pid, spec, i).expect("invocation");
    }
    let warm = faas::run_invocation(&mut node1, restored.pid, spec, 3)
        .expect("invocation")
        .total;
    let row = TieringRow {
        policy: options.policy.to_string(),
        function: spec.name.clone(),
        cold,
        warm,
        local_pages: node1.frames().used() - before,
    };
    audit_scenario(&[&node0, &node1], &device);
    row
}

/// Everything the availability experiment measures in one run.
#[derive(Debug)]
pub struct AvailabilityOutcome {
    /// The porter's full report (crash/retry/reclaim accounting
    /// included).
    pub report: cxlporter::PorterReport,
    /// What the device-level injector actually fired (over the primary
    /// run **and** the successor's continuation — the injector stays
    /// armed on the device across the failover).
    pub fault_stats: cxl_fault::FaultStats,
    /// Requests in the generated trace.
    pub trace_len: u64,
    /// What the journal replay found when the successor coordinator
    /// attached to the surviving device.
    pub recovery: cxl_store::RecoveryReport,
    /// The successor coordinator's report for the continuation trace it
    /// served after adopting the recovered store (carries
    /// `recovered_images` and `journal_replay_ns`).
    pub successor: cxlporter::PorterReport,
    /// Requests in the successor's continuation trace.
    pub successor_trace_len: u64,
}

impl AvailabilityOutcome {
    /// Requests that completed on some node (warm, restored, or cold)
    /// under the primary coordinator.
    pub fn completed(&self) -> u64 {
        self.report.warm_hits + self.report.restores + self.report.full_cold
    }

    /// Exactly-once bookkeeping for both coordinators: every trace
    /// request and every re-dispatch lands in precisely one outcome
    /// bucket.
    pub fn accounting_balances(&self) -> bool {
        let successor_completed =
            self.successor.warm_hits + self.successor.restores + self.successor.full_cold;
        self.completed() + self.report.dropped == self.trace_len + self.report.redispatched
            && successor_completed + self.successor.dropped
                == self.successor_trace_len + self.successor.redispatched
    }
}

fn availability_store_config() -> cxl_store::StoreConfig {
    cxl_store::StoreConfig {
        durable: true,
        ..cxl_store::StoreConfig::default()
    }
}

/// Runs the availability experiment: a 10 s Azure-style trace over a
/// three-node cluster whose CXL device injects seeded transient link
/// errors, while `crash_count` nodes die at seeded times mid-run (about
/// half of them mid-checkpoint). The porter retries transients, fails
/// crashed nodes over by restoring from CXL-resident checkpoints, and
/// lease-reclaims torn staging regions.
///
/// Checkpoints route through a **durable** content-addressed store, and
/// after the trace the coordinator itself dies: a successor attaches to
/// the surviving device, replays the store journal
/// ([`cxl_store::Store::recover`]), adopts and re-leases the recovered
/// images, and serves a 2 s continuation trace whose re-checkpoints
/// dedup against the recovered index. The whole run — crashes, faults,
/// failover, replay — is fully deterministic in `seed`.
pub fn run_availability(
    seed: u64,
    crash_count: usize,
    model: &LatencyModel,
) -> AvailabilityOutcome {
    let duration = SimDuration::from_secs(10);
    let cluster = cxlporter::Cluster::new(3, 2048, 8192, model.clone());
    let device = Arc::clone(&cluster.device);

    let injector = Arc::new(cxl_fault::Injector::from_plan(
        cxl_fault::FaultPlan::new(seed).with_transient_rate(2e-4),
    ));
    injector.arm(&device);

    let store = Arc::new(cxl_store::Store::with_config(
        Arc::clone(&device),
        availability_store_config(),
    ));
    let mut porter = cxlporter::CxlPorter::new(
        cluster,
        CxlFork::with_store(Arc::clone(&store)),
        cxlporter::PorterConfig::cxlfork_dynamic(),
    )
    .with_image_store(Arc::clone(&store));
    porter.set_crash_schedule(cxl_fault::CrashSchedule::from_plan(
        seed,
        3,
        duration,
        crash_count,
    ));

    let trace = trace_gen::generate(&trace_gen::TraceConfig {
        duration_secs: 10.0,
        total_rps: 40.0,
        ..trace_gen::TraceConfig::paper_default(
            vec!["Float".into(), "Json".into(), "Pyaes".into()],
            seed,
        )
    });
    let report = porter.run_trace(&trace);

    // Coordinator failover: the coordinator's DRAM dies with it (porter,
    // checkpoint handles, the store's in-memory index); only the device
    // survives. A successor attaches, replays the journal, adopts the
    // recovered images, and keeps serving.
    drop(porter);
    drop(store);
    let (recovered, recovery) =
        cxl_store::Store::recover(Arc::clone(&device), availability_store_config(), NodeId(0));
    let recovered = Arc::new(recovered);
    let cluster_b = cxlporter::Cluster::with_device(3, 2048, Arc::clone(&device), model.clone());
    let mut successor = cxlporter::CxlPorter::new(
        cluster_b,
        CxlFork::with_store(Arc::clone(&recovered)),
        cxlporter::PorterConfig::cxlfork_dynamic(),
    );
    successor.adopt_recovered_store(Arc::clone(&recovered), &recovery, NodeId(0));

    let tail = trace_gen::generate(&trace_gen::TraceConfig {
        duration_secs: 2.0,
        total_rps: 40.0,
        ..trace_gen::TraceConfig::paper_default(
            vec!["Float".into(), "Json".into(), "Pyaes".into()],
            seed,
        )
    });
    let successor_report = successor.run_trace(&tail);

    AvailabilityOutcome {
        report,
        fault_stats: injector.stats(),
        trace_len: trace.len() as u64,
        recovery,
        successor: successor_report,
        successor_trace_len: tail.len() as u64,
    }
}

/// Runtime-template page overlap the capacity experiment assumes (half
/// of each function's library pages come from shared runtime images).
pub const CAPACITY_TEMPLATE_OVERLAP: f64 = 0.5;

/// Outcome of the capacity experiment: cross-image dedup from shared
/// runtime templates, plus one watermark eviction sweep under pressure.
#[derive(Debug)]
pub struct CapacityOutcome {
    /// Device pages after checkpointing every function privately
    /// (no store).
    pub baseline_cxl_pages: u64,
    /// Device pages after the identical workload through the
    /// content-addressed store.
    pub store_cxl_pages: u64,
    /// The store's dedup/eviction counters after the dedup phase.
    pub store_stats: cxl_store::StoreStats,
    /// Per-function checkpoint cost through the store.
    pub checkpoint_costs: Vec<(String, SimDuration)>,
    /// Images the pressured sweep evicted.
    pub evicted_images: u64,
    /// Device pages the sweep freed.
    pub evicted_pages: u64,
    /// Images that survived the sweep (pinned or below-watermark).
    pub survivor_images: u64,
}

/// Runs the capacity experiment.
///
/// **Dedup phase** — each of `specs`, with
/// [`CAPACITY_TEMPLATE_OVERLAP`] of its library pages mapped from
/// shared runtime images, is deployed, warmed, and checkpointed twice:
/// once privately and once through a content-addressed [`Store`]
/// shared by all checkpoints. The device footprints of the two runs
/// quantify cross-image dedup; a store-backed restore then serves an
/// invocation to prove the deduped image is live.
///
/// **Eviction phase** — a small pressured store (high watermark 0.5,
/// low 0.25) is filled with 16 images of 256 pages, half of each
/// image's content shared with every other image. Image 0 is pinned;
/// the LRU sweep must stop at the low watermark having evicted only
/// unpinned images, and only their private halves are freed (shared
/// content stays for the survivors).
pub fn run_capacity(specs: &[FunctionSpec], model: &LatencyModel) -> CapacityOutcome {
    use cxl_fault::LeaseTable;
    use cxl_mem::{NodeId, PageData};
    use simclock::SimTime;

    let overlapped: Vec<FunctionSpec> = specs
        .iter()
        .cloned()
        .map(|s| s.with_template_overlap(CAPACITY_TEMPLATE_OVERLAP))
        .collect();

    // Baseline: private checkpoints, no store.
    let (mut nodes, device, _fs) = two_node_cluster(model);
    let mut node0 = nodes.remove(0);
    let fork = CxlFork::new();
    let mut baseline_ckpts = Vec::new();
    for spec in &overlapped {
        let pid = warm_parent(&mut node0, spec, DEFAULT_STEADY_INVOCATIONS);
        baseline_ckpts.push(fork.checkpoint(&mut node0, pid).expect("checkpoint fits"));
    }
    let baseline_cxl_pages = device.used_pages();
    audit_scenario(&[&node0], &device);

    // Store-backed: the identical workload through one shared store.
    let (mut nodes, device, _fs) = two_node_cluster(model);
    let mut node1 = nodes.pop().expect("two nodes");
    let mut node0 = nodes.pop().expect("two nodes");
    let store = Arc::new(cxl_store::Store::new(Arc::clone(&device)));
    let fork = CxlFork::with_store(Arc::clone(&store));
    let mut checkpoint_costs = Vec::new();
    let mut ckpts = Vec::new();
    for spec in &overlapped {
        let pid = warm_parent(&mut node0, spec, DEFAULT_STEADY_INVOCATIONS);
        let ckpt = fork.checkpoint(&mut node0, pid).expect("checkpoint fits");
        checkpoint_costs.push((spec.name.clone(), fork.meta(&ckpt).checkpoint_cost));
        ckpts.push(ckpt);
    }
    let store_cxl_pages = device.used_pages();
    let store_stats = store.stats();
    // A store-backed restore must serve a real invocation.
    let restored = fork
        .restore_with(&ckpts[0], &mut node1, RestoreOptions::mow())
        .expect("restore fits");
    faas::run_invocation(&mut node1, restored.pid, &overlapped[0], 0).expect("invocation");
    audit_scenario(&[&node0, &node1], &device);

    // Eviction sweep on a dedicated pressured store.
    const SWEEP_IMAGES: u64 = 16;
    const IMAGE_PAGES: u64 = 256;
    const SHARED_PAGES: u64 = IMAGE_PAGES / 2;
    let sweep_device = Arc::new(CxlDevice::new(4096));
    let sweep = cxl_store::Store::with_config(
        Arc::clone(&sweep_device),
        cxl_store::StoreConfig {
            high_watermark: 0.5,
            low_watermark: 0.25,
            ..cxl_store::StoreConfig::default()
        },
    );
    let t0 = SimTime::from_nanos(1_000_000_000);
    let mut leases = LeaseTable::new(SimDuration::from_secs(3600));
    leases.renew(NodeId(0), t0);
    let mut images = Vec::new();
    for i in 0..SWEEP_IMAGES {
        let data: Vec<PageData> = (0..IMAGE_PAGES)
            .map(|j| {
                if j < SHARED_PAGES {
                    PageData::pattern(1 + j) // shared across every image
                } else {
                    PageData::pattern(1_000_000 + i * IMAGE_PAGES + j)
                }
            })
            .collect();
        let image = sweep.begin_image(&format!("img{i}"), NodeId(0), i, t0);
        sweep
            .intern_pages(image, &data, NodeId(0))
            .expect("sweep image fits");
        let meta = sweep_device.create_region(&format!("meta{i}"));
        sweep.commit_image(image, meta).expect("image is pending");
        // Staggered restores fix the LRU order to image order.
        sweep.touch_restore(image, t0 + SimDuration::from_secs(1 + i));
        images.push(image);
    }
    sweep.set_pinned(images[0], true).expect("committed image");
    let sweep_now = t0 + SimDuration::from_secs(3600);
    let report = sweep.evict_to_low_watermark(&leases, sweep_now);
    assert!(
        sweep.is_live(images[0]),
        "the pinned image must survive the sweep"
    );
    let survivor_images = images.iter().filter(|&&i| sweep.is_live(i)).count() as u64;

    CapacityOutcome {
        baseline_cxl_pages,
        store_cxl_pages,
        store_stats,
        checkpoint_costs,
        evicted_images: report.images,
        evicted_pages: report.pages,
        survivor_images,
    }
}

/// Outcome of the cluster-scale experiment: a multi-tenant diurnal
/// trace over a large cluster on the discrete-event engine.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The porter's full report (fairness, crash, and eviction
    /// accounting included).
    pub report: cxlporter::PorterReport,
    /// Requests in the generated trace.
    pub trace_len: u64,
    /// Configured trace duration.
    pub duration: SimDuration,
    /// What the device-level injector fired during the run.
    pub fault_stats: cxl_fault::FaultStats,
    /// The shared checkpoint store's dedup/eviction counters.
    pub store_stats: cxl_store::StoreStats,
    /// Distinct functions in the tenant catalog.
    pub functions: u64,
    /// Tenants (owners) in the trace.
    pub tenants: u32,
}

impl ClusterOutcome {
    /// Requests that completed on some node (warm, restored, or cold).
    pub fn completed(&self) -> u64 {
        self.report.warm_hits + self.report.restores + self.report.full_cold
    }

    /// Exactly-once bookkeeping: every trace request and every crash
    /// re-dispatch lands in precisely one outcome bucket — served,
    /// memory-dropped, or fairness-dropped.
    pub fn accounting_balances(&self) -> bool {
        self.completed() + self.report.dropped + self.report.fair_drops
            == self.trace_len + self.report.redispatched
    }
}

/// Builds the multi-tenant micro-function catalog the cluster
/// experiment dispatches: one spec per [`DiurnalConfig`] function name,
/// with footprint/working-set/compute parameters varied
/// deterministically by catalog position (2–8 MiB footprints — Table-1
/// functions are far too heavy for a 100k-invocation trace).
pub fn cluster_catalog(config: &trace_gen::DiurnalConfig) -> faas::Catalog {
    faas::Catalog::from_specs(config.function_names().iter().enumerate().map(|(i, name)| {
        let i = i as u64;
        let footprint_mib = 2 + i % 7; // 2..=8 MiB
        let ws_pages = 32 + (i % 5) * 16; // 32..=96 pages
        let compute_ms = 2 + i % 4; // 2..=5 ms
        faas::micro(name, footprint_mib, ws_pages, compute_ms)
    }))
}

/// Runs the cluster-scale experiment: a seeded diurnal/bursty
/// multi-tenant trace (≥100k invocations from
/// [`trace_gen::DiurnalConfig::cluster_default`]) dispatched by the
/// porter's discrete-event engine over `nodes` nodes, with per-owner
/// fairness quotas on, a seeded crash schedule (one node in sixteen
/// dies mid-run), transient device faults armed, and checkpoints routed
/// through a watermark-pressured content-addressed store so the
/// maintenance sweep actually evicts at scale. The whole run is
/// deterministic in `seed`.
pub fn run_cluster(seed: u64, nodes: usize, model: &LatencyModel) -> ClusterOutcome {
    run_cluster_with(
        &trace_gen::DiurnalConfig::cluster_default(seed),
        nodes,
        model,
    )
}

/// [`run_cluster`] with an explicit trace configuration, for
/// smoke-scale runs (fewer tenants, shorter trace) that keep the same
/// engine, fairness, crash, and store plumbing. The fault and crash
/// seeds come from `config.seed`.
pub fn run_cluster_with(
    config: &trace_gen::DiurnalConfig,
    nodes: usize,
    model: &LatencyModel,
) -> ClusterOutcome {
    let seed = config.seed;
    let trace = trace_gen::generate_diurnal(config);
    let names = config.function_names();
    trace_gen::validate(&trace, &names).expect("generated trace validates against its catalog");

    let duration = SimDuration::from_secs(config.duration_secs as u64);
    let cluster = cxlporter::Cluster::new(nodes, 512, 16384, model.clone());
    let device = Arc::clone(&cluster.device);
    let injector = Arc::new(cxl_fault::Injector::from_plan(
        cxl_fault::FaultPlan::new(seed).with_transient_rate(1e-5),
    ));
    injector.arm(&device);
    // Low watermarks relative to the device keep the image store under
    // genuine capacity pressure with 2–8 MiB images.
    let store = Arc::new(cxl_store::Store::with_config(
        Arc::clone(&device),
        cxl_store::StoreConfig {
            high_watermark: 0.02,
            low_watermark: 0.01,
            ..cxl_store::StoreConfig::default()
        },
    ));
    let mut porter = cxlporter::CxlPorter::new(
        cluster,
        CxlFork::with_store(Arc::clone(&store)),
        cxlporter::PorterConfig {
            fairness: Some(cxlporter::FairnessConfig::default()),
            ..cxlporter::PorterConfig::cxlfork_dynamic()
        },
    )
    .with_image_store(Arc::clone(&store))
    .with_catalog(cluster_catalog(config));
    porter.set_crash_schedule(cxl_fault::CrashSchedule::from_plan(
        seed,
        nodes,
        duration,
        nodes / 16,
    ));

    let report = porter.run_trace(&trace);
    ClusterOutcome {
        report,
        trace_len: trace.len() as u64,
        duration,
        fault_stats: injector.stats(),
        store_stats: store.stats(),
        functions: names.len() as u64,
        tenants: config.tenants,
    }
}

/// The warm execution time of a locally forked child (the "local fork in
/// an environment without CXL memory" baseline of Fig. 9).
pub fn local_fork_warm(
    spec: &FunctionSpec,
    model: &LatencyModel,
    steady: u64,
) -> (SimDuration, SimDuration) {
    let (mut nodes, device, _rootfs) = two_node_cluster(model);
    let mut node1 = nodes.pop().expect("two nodes");
    let parent = warm_parent(&mut node1, spec, steady);
    let (child, fork_cost) = node1.local_fork(parent).expect("fork");
    let r0 = faas::run_invocation(&mut node1, child, spec, 0).expect("invocation");
    let cold = fork_cost + r0.total;
    for i in 1..3 {
        faas::run_invocation(&mut node1, child, spec, i).expect("invocation");
    }
    let warm = faas::run_invocation(&mut node1, child, spec, 3)
        .expect("invocation")
        .total;
    audit_scenario(&[&node1], &device);
    (cold, warm)
}

/// Round trips the contention surface sweeps (ns). Matches the Fig. 9
/// axis: the paper's calibrated 391 ns plus faster/slower fabrics.
pub const CONTENTION_ROUND_TRIPS: [u64; 4] = [100, 200, 391, 400];

/// Offered background load on the switch ports, in permille of each
/// link's window capacity. 0 is the calibration cell: it must reproduce
/// the flat latency model exactly.
pub const CONTENTION_LOADS: [u32; 5] = [0, 250, 500, 750, 900];

/// Shard-stream parallelism the contention cells run at (the pipelined
/// fast path is exactly where fabric queueing hurts most).
pub const CONTENTION_PARALLELISM: u32 = 8;

/// One cell of the round-trip × offered-load contention surface.
#[derive(Debug, Clone)]
pub struct ContentionRow {
    /// CXL round-trip latency of this cell's model (ns).
    pub round_trip_ns: u64,
    /// Background switch load, permille of window capacity.
    pub background_load_permille: u32,
    /// Shard-stream parallelism used.
    pub parallelism: u32,
    /// Function name.
    pub function: String,
    /// Checkpoint cost including fabric queueing delay.
    pub checkpoint_cost: SimDuration,
    /// Restore latency including fabric queueing delay.
    pub restore: SimDuration,
    /// Checkpoint + restore + first invocation.
    pub total: SimDuration,
}

/// Runs the unit experiment (warm → checkpoint → remote fork → invoke)
/// with a single-device fabric attached at the given background load.
///
/// The target node's clock is advanced past the fabric window before the
/// restore so the checkpoint's own traffic has aged out of the sliding
/// windows: each cell then measures *offered-load* contention only, and
/// the `load = 0` cell reproduces the flat model byte for byte
/// (`fabric = None` gives identical costs, which
/// `tests/contention.rs` pins).
pub fn run_contention(
    spec: &FunctionSpec,
    parallelism: u32,
    round_trip_ns: u64,
    load_permille: u32,
    steady: u64,
) -> ContentionRow {
    let model = LatencyModel::builder()
        .cxl_round_trip_ns(round_trip_ns)
        .build();
    let (mut nodes, device, _rootfs) = two_node_cluster(&model);
    let mut node1 = nodes.pop().expect("two nodes");
    let mut node0 = nodes.pop().expect("two nodes");
    let topology = Arc::new(cxl_fabric::FabricTopology::new(cxl_fabric::FabricConfig {
        background_load_permille: load_permille,
        ..cxl_fabric::FabricConfig::default()
    }));
    let window_ns = topology.config().window_ns;
    let link: Arc<dyn cxl_mem::FabricLink> = Arc::clone(&topology) as _;
    device.attach_fabric(Some((link, 0)));

    let parent = warm_parent(&mut node0, spec, steady);
    let fork = CxlFork::with_config(CxlForkConfig::with_parallelism(parallelism));
    let ckpt = fork
        .checkpoint(&mut node0, parent)
        .expect("checkpoint fits CXL");
    node1.clock_mut().advance_to(node0.now());
    node1
        .clock_mut()
        .advance(SimDuration::from_nanos(2 * window_ns));
    let restored = fork
        .restore_with(&ckpt, &mut node1, RestoreOptions::mow())
        .expect("restore fits");
    let r = faas::run_invocation(&mut node1, restored.pid, spec, 0).expect("invocation");
    audit_scenario(&[&node0, &node1], &device);

    let checkpoint_cost = fork.meta(&ckpt).checkpoint_cost;
    ContentionRow {
        round_trip_ns,
        background_load_permille: load_permille,
        parallelism,
        function: spec.name.clone(),
        checkpoint_cost,
        restore: restored.restore_latency,
        total: checkpoint_cost + restored.restore_latency + r.total,
    }
}

/// Consecutive checkpoints routed under `policy` across a two-device
/// pool sharing one wide fabric window, returning the summed checkpoint
/// cost. Locality pins every image of the function to one device, so
/// each checkpoint queues behind the previous one's in-flight bytes;
/// stripe alternates devices and halves the per-port backlog. The
/// stripe-vs-locality delta in `BENCH_contention.json` comes from here.
pub fn run_placement(
    spec: &FunctionSpec,
    policy: cxl_fabric::PlacementPolicy,
    checkpoints: u64,
    model: &LatencyModel,
    steady: u64,
) -> SimDuration {
    let (mut nodes, device, _rootfs) = two_node_cluster(model);
    let mut node0 = nodes.remove(0);
    // A window wide enough (1 s of virtual time) that every checkpoint
    // in the run still sees its predecessors' traffic in flight.
    let topology = Arc::new(cxl_fabric::FabricTopology::new(cxl_fabric::FabricConfig {
        devices: 2,
        window_ns: 1_000_000_000,
        ..cxl_fabric::FabricConfig::default()
    }));
    let pool = cxl_fabric::DevicePool::attach(
        Arc::clone(&topology),
        (0..2).map(|_| Arc::new(CxlDevice::new(64))).collect(),
    );
    let fork = CxlFork::new();
    let mut total = SimDuration::ZERO;
    for nth in 0..checkpoints {
        let idx = pool.place_with(policy, 0x5eed, nth);
        let link: Arc<dyn cxl_mem::FabricLink> = Arc::clone(&topology) as _;
        device.attach_fabric(Some((link, idx as u32)));
        let parent = warm_parent(&mut node0, spec, steady);
        let ckpt = fork
            .checkpoint(&mut node0, parent)
            .expect("checkpoint fits CXL");
        total += fork.meta(&ckpt).checkpoint_cost;
    }
    audit_scenario(&[&node0], &device);
    total
}
