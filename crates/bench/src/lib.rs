//! Experiment harness for the CXLfork reproduction.
//!
//! Each table and figure in the paper's evaluation has a dedicated bench
//! target (`cargo bench -p cxlfork-bench --bench <name>`) that regenerates
//! the corresponding rows/series. This library holds the shared scenario
//! runners and table formatting; the bench binaries are thin drivers.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table1_functions` | Table 1 (function suite) |
//! | `fig1_footprint_breakdown` | Fig. 1 (Init / RO / RW composition) |
//! | `fig3_motivation` | Fig. 3c (CRIU & Mitosis vs local fork, BERT) |
//! | `fig6_coldstart_breakdown` | Fig. 6 (state init vs container creation) |
//! | `fig7a_rfork_latency` | Fig. 7a (cold-start latency breakdown) |
//! | `fig7b_rfork_memory` | Fig. 7b (local memory, normalized to Cold) |
//! | `fig8_tiering` | Fig. 8 (MoW / MoA / HT trade-offs) |
//! | `fig9_latency_sensitivity` | Fig. 9 (CXL latency sweep) |
//! | `fig10ab_porter_abundant` | Fig. 10a–b (CXLporter, ample memory) |
//! | `fig10c_porter_constrained` | Fig. 10c (50 % / 25 % memory) |
//! | `checkpoint_performance` | §7.1 checkpoint-latency comparison |
//! | `ablation_restore` | §4.2.1 attach-vs-copy restore ablation |
//! | `ablation_prefetch` | §4.2.1 dirty-prefetch ablation |
//! | `fault_costs` | §4.2.1 fault microcosts (criterion) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod report;
pub mod scenarios;

pub use report::{
    availability_report, cluster_report, cold_start_report, contention_report, pipeline_report,
    tiering_report, ScenarioTelemetry, CLUSTER_NODES, CLUSTER_SEED, CORE_PHASES,
    PLACEMENT_CHECKPOINTS,
};
pub use scenarios::{
    cluster_catalog, run_availability, run_cluster, run_cluster_with, run_cold_start,
    run_contention, run_pipeline, run_placement, run_tiering, AvailabilityOutcome, ClusterOutcome,
    ColdStartRow, ContentionRow, PipelineRow, Scenario, TieringRow, CONTENTION_LOADS,
    CONTENTION_PARALLELISM, CONTENTION_ROUND_TRIPS, DEFAULT_STEADY_INVOCATIONS,
    PIPELINE_PARALLELISM,
};
