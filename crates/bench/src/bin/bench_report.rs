//! Writes (or checks) the machine-readable benchmark reports.
//!
//! ```text
//! cargo run -p cxlfork-bench --bin bench_report            # regenerate BENCH_*.json
//! cargo run -p cxlfork-bench --bin bench_report -- --check # fail on drift vs committed files
//! cargo run -p cxlfork-bench --bin bench_report -- --trace trace.json
//!                                                          # Chrome trace of one cold start
//! ```
//!
//! Reports land at the workspace root as `BENCH_<scenario>.json`. Every
//! input is fixed and the simulation is deterministic, so `--check`
//! regenerating a different byte sequence means a code change moved a
//! virtual-time result — CI fails and the author either fixes the
//! regression or commits the new reports as an explicit perf change.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cxlfork_bench::report::all_reports;
use cxlfork_bench::{run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use simclock::LatencyModel;

/// `BENCH_*.json` live at the workspace root, two levels above this
/// crate, so the binary works from any working directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn report_path(scenario: &str) -> PathBuf {
    workspace_root().join(format!("BENCH_{scenario}.json"))
}

/// Regenerates all reports, validates them, and round-trips each through
/// the parser before anything touches disk.
fn regenerate() -> Vec<(String, String)> {
    let model = LatencyModel::calibrated();
    all_reports(&model)
        .into_iter()
        .map(|s| {
            s.report
                .validate()
                .unwrap_or_else(|e| panic!("{} report invalid: {e}", s.report.scenario));
            let text = s.report.to_json();
            let back = cxl_telemetry::BenchReport::from_json(&text)
                .unwrap_or_else(|e| panic!("{} report does not re-parse: {e}", s.report.scenario));
            assert_eq!(
                back, s.report,
                "{} report round-trip is lossy",
                s.report.scenario
            );
            (s.report.scenario.clone(), text)
        })
        .collect()
}

fn write_reports() -> ExitCode {
    for (scenario, text) in regenerate() {
        let path = report_path(&scenario);
        std::fs::write(&path, &text).expect("write report");
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn check_reports() -> ExitCode {
    let mut drift = false;
    for (scenario, text) in regenerate() {
        let path = report_path(&scenario);
        match std::fs::read_to_string(&path) {
            Ok(committed) if committed == text => println!("ok    {}", path.display()),
            Ok(_) => {
                eprintln!(
                    "DRIFT {}: regenerated report differs from committed file \
                     (run `cargo run -p cxlfork-bench --bin bench_report` and review the diff)",
                    path.display()
                );
                drift = true;
            }
            Err(e) => {
                eprintln!("MISSING {}: {e}", path.display());
                drift = true;
            }
        }
    }
    if drift {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One telemetry-armed CXLfork cold start of the Float function,
/// exported as a Chrome `trace_event` file for `chrome://tracing`.
fn write_trace(path: &str) -> ExitCode {
    let spec = faas::by_name("Float").expect("Float is in the suite");
    let session = cxl_telemetry::TelemetrySession::start();
    run_cold_start(
        &spec,
        Scenario::cxlfork_default(),
        &LatencyModel::calibrated(),
        DEFAULT_STEADY_INVOCATIONS,
    );
    let data = session.finish();
    std::fs::write(path, cxl_telemetry::chrome_trace(&data.spans)).expect("write trace");
    println!("wrote {path} ({} spans)", data.spans.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => write_reports(),
        Some("--check") => check_reports(),
        Some("--trace") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: bench_report --trace <out.json>");
                return ExitCode::FAILURE;
            };
            write_trace(path)
        }
        Some(other) => {
            eprintln!("unknown flag `{other}`; usage: bench_report [--check | --trace <out.json>]");
            ExitCode::FAILURE
        }
    }
}
