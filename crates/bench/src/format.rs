//! Fixed-width table printing for paper-style output.

/// Prints a titled, fixed-width table to stdout.
///
/// # Example
///
/// ```
/// cxlfork_bench::format::print_table(
///     "Demo",
///     &["function", "ms"],
///     &[vec!["Float".into(), "14.0".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!();
    println!("== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            // Cells past the last header have no column width; print
            // them as-is rather than indexing out of bounds.
            let width = widths.get(i).copied().unwrap_or(0);
            s.push_str(&format!("{cell:>width$}"));
        }
        s
    };
    let header_cells: Vec<String> = headers
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    println!("{}", line(&header_cells));
    // `widths.len() - 1` underflows on an empty header set; a titled
    // table with no columns still prints its title cleanly.
    let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    println!("{}", "-".repeat(rule_len));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a duration as fractional milliseconds with 3 digits.
pub fn ms(d: simclock::SimDuration) -> String {
    format!("{:.3}", d.as_millis_f64())
}

/// Formats a ratio with 2 digits and an `x` suffix.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a page count as MiB.
pub fn pages_mib(pages: u64) -> String {
    format!("{:.1}", pages as f64 * 4096.0 / 1048576.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_table_tolerates_empty_headers() {
        // Regression: `2 * (widths.len() - 1)` used to underflow and
        // panic when headers was empty.
        print_table("empty", &[], &[]);
        print_table("empty with rows", &[], &[vec!["orphan".into()]]);
    }

    #[test]
    fn print_table_normal_shape() {
        print_table(
            "demo",
            &["function", "ms"],
            &[vec!["Float".into(), "14.0".into()]],
        );
    }
}
