//! Ablation (§4.3): hybrid tiering's hot pages — migrate on first access
//! (CXLfork's choice) vs prefetch synchronously during restore (the
//! alternative the paper evaluated and rejected: it "trades off remote
//! fork tail latency for fewer CXL faults [and] generally delivers lower
//! performance").
//!
//! Run with `cargo bench -p cxlfork-bench --bench ablation_hot_prefetch`.

use cxlfork_bench::format::{ms, print_table};
use cxlfork_bench::{run_cold_start, run_tiering, Scenario, DEFAULT_STEADY_INVOCATIONS};
use rfork::RestoreOptions;
use simclock::LatencyModel;

fn main() {
    let model = LatencyModel::calibrated();
    let mut rows = Vec::new();
    for spec in faas::suite() {
        let on_access = run_cold_start(
            &spec,
            Scenario::CxlFork(RestoreOptions::hybrid()),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let sync = run_cold_start(
            &spec,
            Scenario::CxlFork(RestoreOptions::hybrid_sync_prefetch()),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let warm_on_access = run_tiering(
            &spec,
            RestoreOptions::hybrid(),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let warm_sync = run_tiering(
            &spec,
            RestoreOptions::hybrid_sync_prefetch(),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        rows.push(vec![
            spec.name.clone(),
            ms(on_access.restore),
            ms(sync.restore),
            on_access.fault_count.to_string(),
            sync.fault_count.to_string(),
            ms(on_access.total),
            ms(sync.total),
            ms(warm_on_access.warm),
            ms(warm_sync.warm),
        ]);
    }
    print_table(
        "Hybrid hot pages: migrate-on-access vs synchronous restore prefetch (paper §4.3: sync prefetch inflates remote-fork tail latency for little gain)",
        &[
            "function",
            "restore-oa", "restore-sync",
            "faults-oa", "faults-sync",
            "cold-oa", "cold-sync",
            "warm-oa", "warm-sync",
        ],
        &rows,
    );
}
