//! Ablation (§4.2.1): attaching checkpointed page-table/VMA leaves vs
//! copying and re-instantiating OS state on restore.
//!
//! Three restore strategies over the same checkpoint:
//!  * attach   — CXLfork MoW: link the checkpointed leaves (constant-ish);
//!  * copy     — CXLfork hybrid: materialize local copies of every leaf;
//!  * rebuild  — CRIU: full deserialization + per-page reconstruction.
//!
//! Run with `cargo bench -p cxlfork-bench --bench ablation_restore`.

use cxlfork_bench::format::{ms, print_table};
use cxlfork_bench::{run_cold_start, run_tiering, Scenario, DEFAULT_STEADY_INVOCATIONS};
use rfork::RestoreOptions;
use simclock::LatencyModel;

fn main() {
    let model = LatencyModel::calibrated();
    let mut rows = Vec::new();
    for name in ["Float", "HTML", "Rnn", "Bert"] {
        let spec = faas::by_name(name).expect("known function");
        let attach = run_cold_start(
            &spec,
            Scenario::CxlFork(RestoreOptions {
                policy: rfork::TierPolicy::MigrateOnWrite,
                prefetch_dirty: false,
                sync_hot_prefetch: false,
            }),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let copy = run_tiering(
            &spec,
            RestoreOptions {
                policy: rfork::TierPolicy::Hybrid,
                prefetch_dirty: false,
                sync_hot_prefetch: false,
            },
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let rebuild = run_cold_start(&spec, Scenario::Criu, &model, DEFAULT_STEADY_INVOCATIONS);
        // The tiering runner folds restore into `cold`; recover the
        // restore-only portion by a dedicated cold-start run.
        let copy_restore = run_cold_start(
            &spec,
            Scenario::CxlFork(RestoreOptions {
                policy: rfork::TierPolicy::Hybrid,
                prefetch_dirty: false,
                sync_hot_prefetch: false,
            }),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let _ = copy;
        rows.push(vec![
            spec.name.clone(),
            ms(attach.restore),
            ms(copy_restore.restore),
            ms(rebuild.restore),
            format!("{:.1}x", copy_restore.restore.ratio(attach.restore)),
            format!("{:.0}x", rebuild.restore.ratio(attach.restore)),
        ]);
    }
    print_table(
        "Restore ablation: attach vs leaf-copy vs full rebuild (restore latency, ms)",
        &[
            "function",
            "attach",
            "leaf-copy",
            "rebuild",
            "copy/attach",
            "rebuild/attach",
        ],
        &rows,
    );
    println!("\npaper: attaching restores OS state in near-constant time; copying and re-instantiating costs milliseconds (§4.2.1)");
}
