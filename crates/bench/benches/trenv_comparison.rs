//! §9's preliminary comparison with TrEnv (SOSP '24): "in the absence of
//! pre-created memory templates, CXLfork remote-forks functions 1.8x
//! faster than TrEnv on average."
//!
//! Three columns per function: TrEnv restoring on a node with no template
//! (pays metadata deserialization + template materialization), TrEnv with
//! a warm template, and CXLfork (which needs neither and shares its
//! checkpointed OS state across all nodes).
//!
//! Run with `cargo bench -p cxlfork-bench --bench trenv_comparison`.

use cxlfork_bench::format::{ms, print_table, ratio};
use cxlfork_bench::{run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use rfork::{RemoteFork, RestoreOptions};
use simclock::LatencyModel;
use std::sync::Arc;

fn main() {
    let model = LatencyModel::calibrated();
    let mut rows = Vec::new();
    let mut ratio_sum = 0.0;
    let mut n = 0u32;
    for spec in faas::suite() {
        // TrEnv: dedicated cluster so templates start cold.
        let device = Arc::new(cxl_mem::CxlDevice::with_capacity_mib(8192));
        let rootfs = Arc::new(node_os::fs::SharedFs::new());
        let mut src = node_os::Node::with_rootfs(
            node_os::NodeConfig::default()
                .with_id(0)
                .with_local_mem_mib(4096),
            Arc::clone(&device),
            Arc::clone(&rootfs),
        );
        let mut dst = node_os::Node::with_rootfs(
            node_os::NodeConfig::default()
                .with_id(1)
                .with_local_mem_mib(4096),
            device,
            rootfs,
        );
        let (pid, _) = faas::deploy_cold(&mut src, &spec).expect("deploy fits");
        faas::warm_for_checkpoint(&mut src, pid, &spec, DEFAULT_STEADY_INVOCATIONS).expect("warm");
        let trenv = trenv_cxl::TrEnvCxl::new();
        let ckpt = trenv.checkpoint(&mut src, pid).expect("checkpoint fits");
        let frames_before = dst.frames().used();
        let cold_restore = trenv.restore(&ckpt, &mut dst).expect("restore fits");
        let template_pages = dst.frames().used() - frames_before;
        let warm_restore = trenv.restore(&ckpt, &mut dst).expect("restore fits");

        // CXLfork on a fresh cluster. The comparison is the pure remote-
        // fork operation, so dirty prefetch (an execution optimization)
        // is disabled.
        let fork = run_cold_start(
            &spec,
            Scenario::CxlFork(RestoreOptions {
                policy: rfork::TierPolicy::MigrateOnWrite,
                prefetch_dirty: false,
                sync_hot_prefetch: false,
            }),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );

        let speedup = cold_restore.restore_latency.ratio(fork.restore);
        ratio_sum += speedup.ln();
        n += 1;
        rows.push(vec![
            spec.name.clone(),
            ms(cold_restore.restore_latency),
            ms(warm_restore.restore_latency),
            ms(fork.restore),
            ratio(speedup),
            template_pages.to_string(),
        ]);
    }
    print_table(
        "TrEnv-CXL vs CXLfork restore latency (ms); template-pages = idle local frames TrEnv pins per node per function",
        &[
            "function",
            "TrEnv-no-template",
            "TrEnv-warm",
            "CXLfork",
            "CXLfork-speedup",
            "template-pages",
        ],
        &rows,
    );
    println!(
        "\ngeometric-mean CXLfork restore speedup over template-less TrEnv: {:.2}x (paper reports 1.8x on average)",
        (ratio_sum / n as f64).exp()
    );
    println!(
        "our speedup overshoots the paper's for large functions because the modelled template"
    );
    println!(
        "build is pure metadata decoding, while real TrEnv amortizes parts of it; the direction"
    );
    println!("and the per-node template memory cost are the architectural point (§9).");
    println!("CXLfork needs no per-node pre-processing and pins no idle local structures.");
}
