//! Figure 10a–b: P99 and P50 end-to-end function latency under CXLporter
//! with abundant node memory, comparing the rfork mechanisms under an
//! Azure-like bursty trace at 150 RPS aggregate (§7.2).
//!
//! Values are normalized to CRIU-CXL; CRIU's absolute latency is printed
//! alongside (the paper annotates it on top of the bars).
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig10ab_porter_abundant`.

use cxlfork_bench::format::print_table;
use cxlporter::{Cluster, CxlPorter, PorterConfig, PorterReport};
use rfork::RemoteFork;
use simclock::LatencyModel;
use std::collections::BTreeMap;
use std::sync::Arc;
use trace_gen::{generate, Invocation, TraceConfig};

const NODE_MEM_MIB: u64 = 8192;
const DURATION_SECS: f64 = 55.0;
/// Requests in the first 15 s warm the system (checkpoints get taken);
/// only the steady-state remainder is measured.
const WARMUP_SECS: u64 = 15;
/// Keep-alive shorter than the inter-burst gap, so bursts exercise the
/// cold path (the paper's multi-minute traces reach the same steady
/// state over longer windows).
const KEEP_ALIVE_SECS: u64 = 6;

/// Functions ordered by Azure-like popularity (small functions first).
fn trace() -> Vec<Invocation> {
    let functions = vec![
        "Json".into(),
        "Float".into(),
        "Pyaes".into(),
        "Chameleon".into(),
        "Linpack".into(),
        "HTML".into(),
        "Rnn".into(),
        "Cnn".into(),
        "BFS".into(),
        "Bert".into(),
    ];
    generate(&TraceConfig {
        duration_secs: DURATION_SECS,
        ..TraceConfig::paper_default(functions, 2025)
    })
}

fn tune(mut config: PorterConfig) -> PorterConfig {
    config.keep_alive = simclock::SimDuration::from_secs(KEEP_ALIVE_SECS);
    config
}

fn run<M: RemoteFork>(mech: M, config: PorterConfig, node_mem_mib: u64) -> PorterReport {
    let cluster = Cluster::new(2, node_mem_mib, 16 * 1024, LatencyModel::calibrated());
    let mut porter = CxlPorter::new(cluster, mech, tune(config));
    porter.set_measure_from(simclock::SimTime::from_nanos(WARMUP_SECS * 1_000_000_000));
    porter.run_trace(&trace())
}

fn main() {
    let cluster_for_fs = Cluster::new(1, 64, 64, LatencyModel::calibrated());
    let criu_fs = Arc::new(cxl_mem::CxlFs::new(Arc::clone(&cluster_for_fs.device)));
    let _ = cluster_for_fs;

    println!(
        "running 4 autoscaler configurations over a {DURATION_SECS}s, 150 RPS bursty trace ..."
    );
    let mut reports: BTreeMap<&str, PorterReport> = BTreeMap::new();
    reports.insert("CRIU-CXL", {
        // CRIU needs a CXL fs shared with ITS cluster's device: build inline.
        let cluster = Cluster::new(2, NODE_MEM_MIB, 16 * 1024, LatencyModel::calibrated());
        let criu =
            criu_cxl::CriuCxl::new(Arc::new(cxl_mem::CxlFs::new(Arc::clone(&cluster.device))));
        let mut porter = CxlPorter::new(cluster, criu, tune(PorterConfig::criu()));
        porter.set_measure_from(simclock::SimTime::from_nanos(WARMUP_SECS * 1_000_000_000));
        porter.run_trace(&trace())
    });
    let _ = criu_fs;
    reports.insert(
        "Mitosis-CXL",
        run(
            mitosis_cxl::MitosisCxl::new(),
            PorterConfig::mitosis(),
            NODE_MEM_MIB,
        ),
    );
    reports.insert(
        "CXLfork-MoW",
        run(
            cxlfork::CxlFork::new(),
            PorterConfig::cxlfork_static_mow(),
            NODE_MEM_MIB,
        ),
    );
    reports.insert(
        "CXLfork",
        run(
            cxlfork::CxlFork::new(),
            PorterConfig::cxlfork_dynamic(),
            NODE_MEM_MIB,
        ),
    );

    // Per-function P99/P50 normalized to CRIU.
    let order = ["CRIU-CXL", "Mitosis-CXL", "CXLfork-MoW", "CXLfork"];
    let functions: Vec<String> = reports["CRIU-CXL"].per_function.keys().cloned().collect();
    let mut p99_rows = Vec::new();
    let mut p50_rows = Vec::new();
    let mut p99_sum = vec![0.0f64; order.len()];
    let mut p50_sum = vec![0.0f64; order.len()];
    let mut n = 0u32;
    for f in &functions {
        let criu_p99;
        let criu_p50;
        {
            let r = reports.get_mut("CRIU-CXL").unwrap();
            let h = r.per_function.get_mut(f).unwrap();
            criu_p99 = h.p99();
            criu_p50 = h.p50();
        }
        let mut p99_row = vec![f.clone(), format!("{:.0}ms", criu_p99.as_millis_f64())];
        let mut p50_row = vec![f.clone(), format!("{:.0}ms", criu_p50.as_millis_f64())];
        for (i, name) in order.iter().enumerate() {
            let r = reports.get_mut(name).unwrap();
            let (p99, p50) = match r.per_function.get_mut(f) {
                Some(h) => (h.p99(), h.p50()),
                None => (simclock::SimDuration::ZERO, simclock::SimDuration::ZERO),
            };
            p99_row.push(format!("{:.2}", p99.ratio(criu_p99)));
            p50_row.push(format!("{:.2}", p50.ratio(criu_p50)));
            p99_sum[i] += p99.ratio(criu_p99);
            p50_sum[i] += p50.ratio(criu_p50);
        }
        n += 1;
        p99_rows.push(p99_row);
        p50_rows.push(p50_row);
    }

    print_table(
        "Figure 10a: P99 latency normalized to CRIU-CXL (paper: Mitosis -51%, CXLfork -70% on average; CXLfork-MoW worse than CXLfork)",
        &["function", "CRIU-abs", "CRIU-CXL", "Mitosis-CXL", "CXLfork-MoW", "CXLfork"],
        &p99_rows,
    );
    print_table(
        "Figure 10b: P50 latency normalized to CRIU-CXL (paper: mechanisms similar at P50; CXLfork-MoW hurt by CXL-resident read-only data)",
        &["function", "CRIU-abs", "CRIU-CXL", "Mitosis-CXL", "CXLfork-MoW", "CXLfork"],
        &p50_rows,
    );
    println!(
        "\naverage normalized P99: {}",
        order
            .iter()
            .zip(&p99_sum)
            .map(|(o, s)| format!("{o} {:.2}", s / n as f64))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "average normalized P50: {}",
        order
            .iter()
            .zip(&p50_sum)
            .map(|(o, s)| format!("{o} {:.2}", s / n as f64))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for name in order {
        let r = &reports[name];
        println!(
            "{name}: warm {}, restores {} (hybrid {}), full-cold {}, recycles {}, dropped {}, peak-mem {:?} pages",
            r.warm_hits, r.restores, r.hybrid_restores, r.full_cold, r.recycles, r.dropped, r.peak_local_pages
        );
    }
}
