//! §7.1 "Checkpoint Performance": checkpoint latency per mechanism.
//!
//! Paper: CRIU is one order of magnitude slower than both (it serializes
//! data); Mitosis checkpoints ≈1.5x faster than CXLfork (local memory vs
//! CXL memory target) — but its checkpoint cannot be shared and pins the
//! parent node.
//!
//! Run with `cargo bench -p cxlfork-bench --bench checkpoint_performance`.

use cxlfork_bench::format::{ms, print_table, ratio};
use cxlfork_bench::{run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use simclock::LatencyModel;

fn main() {
    let model = LatencyModel::calibrated();
    let mut rows = Vec::new();
    let mut sums = (0.0f64, 0.0f64);
    let mut n = 0u32;
    for spec in faas::suite() {
        let criu = run_cold_start(&spec, Scenario::Criu, &model, DEFAULT_STEADY_INVOCATIONS);
        let mitosis = run_cold_start(&spec, Scenario::Mitosis, &model, DEFAULT_STEADY_INVOCATIONS);
        let fork = run_cold_start(
            &spec,
            Scenario::cxlfork_default(),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        sums.0 += criu.checkpoint_cost.ratio(fork.checkpoint_cost);
        sums.1 += fork.checkpoint_cost.ratio(mitosis.checkpoint_cost);
        n += 1;
        rows.push(vec![
            spec.name.clone(),
            ms(criu.checkpoint_cost),
            ms(mitosis.checkpoint_cost),
            ms(fork.checkpoint_cost),
            ratio(criu.checkpoint_cost.ratio(fork.checkpoint_cost)),
            ratio(fork.checkpoint_cost.ratio(mitosis.checkpoint_cost)),
            fork.checkpoint_cxl_pages.to_string(),
        ]);
    }
    print_table(
        "Checkpoint performance (ms); CXL-pages = device pages the CXLfork checkpoint occupies",
        &[
            "function",
            "CRIU",
            "Mitosis",
            "CXLfork",
            "CRIU/CXLfork",
            "CXLfork/Mitosis",
            "CXL-pages",
        ],
        &rows,
    );
    println!(
        "\naverages: CRIU/CXLfork {:.1}x (paper ~10x); CXLfork/Mitosis {:.2}x (paper ~1.5x)",
        sums.0 / n as f64,
        sums.1 / n as f64
    );
}
