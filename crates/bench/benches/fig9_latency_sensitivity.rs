//! Figure 9: sensitivity of CXLfork warm (a) and cold (b) execution to
//! the CXL device round-trip latency, swept from 400 ns down to 100 ns,
//! relative to a local fork in an environment without CXL memory.
//!
//! The paper runs this sweep on SST + QEMU; here the latency is a
//! first-class model parameter. Representative functions only, as in the
//! paper ("we exclude functions with identical behavior").
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig9_latency_sensitivity`.

use cxlfork_bench::format::print_table;
use cxlfork_bench::scenarios::local_fork_warm;
use cxlfork_bench::{run_tiering, DEFAULT_STEADY_INVOCATIONS};
use rfork::RestoreOptions;
use simclock::LatencyModel;

const LATENCIES_NS: [u64; 4] = [100, 200, 300, 400];
const FUNCTIONS: [&str; 5] = ["Float", "Json", "Cnn", "BFS", "Bert"];

fn main() {
    let mut warm_rows = Vec::new();
    let mut cold_rows = Vec::new();
    for name in FUNCTIONS {
        let spec = faas::by_name(name).expect("known function");
        // Baseline: local fork without CXL.
        let base_model = LatencyModel::calibrated();
        let (base_cold, base_warm) =
            local_fork_warm(&spec, &base_model, DEFAULT_STEADY_INVOCATIONS);

        let mut warm_row = vec![spec.name.clone()];
        let mut cold_row = vec![spec.name.clone()];
        for ns in LATENCIES_NS {
            let model = LatencyModel::builder().cxl_round_trip_ns(ns).build();
            let r = run_tiering(
                &spec,
                RestoreOptions::mow(),
                &model,
                DEFAULT_STEADY_INVOCATIONS,
            );
            warm_row.push(format!("{:.3}", r.warm.ratio(base_warm)));
            cold_row.push(format!("{:.3}", r.cold.ratio(base_cold)));
        }
        warm_rows.push(warm_row);
        cold_rows.push(cold_row);
    }

    print_table(
        "Figure 9a: warm execution vs local fork, per CXL round-trip latency (paper: only BFS/Bert sensitive; penalty persists even at 200 ns)",
        &["function", "100ns", "200ns", "300ns", "400ns"],
        &warm_rows,
    );
    print_table(
        "Figure 9b: cold execution vs local fork, per CXL round-trip latency (paper: improves as latency drops, sometimes beating local fork)",
        &["function", "100ns", "200ns", "300ns", "400ns"],
        &cold_rows,
    );
}
