//! Scalability sweep (§8 "Scalability to a high number of nodes"): one
//! checkpoint, restored and executed on 2–64 nodes concurrently with a
//! deep queue of clones per node.
//!
//! The paper could not study many nodes on its two-VM prototype; the
//! simulation can. Reported per cluster size: per-clone restore latency
//! (flat — restores only touch the checkpoint read-only), total CXL read
//! traffic during the clones' first invocation (grows linearly with the
//! clone count — the bandwidth pressure §8 anticipates), and device pages
//! (flat — dedup is perfect).
//!
//! Run with `cargo bench -p cxlfork-bench --bench scalability_nodes`.

use cxlfork_bench::format::{ms, print_table};
use rfork::{RemoteFork, RestoreOptions};
use simclock::LatencyModel;
use std::sync::Arc;

fn main() {
    let spec = faas::by_name("Json").expect("Json in suite");
    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8, 16, 32, 64] {
        let device = Arc::new(cxl_mem::CxlDevice::with_capacity_mib(8192));
        let rootfs = Arc::new(node_os::fs::SharedFs::new());
        let mut cluster: Vec<node_os::Node> = (0..nodes)
            .map(|i| {
                node_os::Node::with_rootfs(
                    node_os::NodeConfig::default()
                        .with_id(i as u32)
                        .with_local_mem_mib(1024)
                        .with_model(LatencyModel::calibrated()),
                    Arc::clone(&device),
                    Arc::clone(&rootfs),
                )
            })
            .collect();

        let (pid, _) = faas::deploy_cold(&mut cluster[0], &spec).expect("deploy fits");
        faas::warm_for_checkpoint(&mut cluster[0], pid, &spec, 15).expect("warm");
        let fork = cxlfork::CxlFork::new();
        let ckpt = fork
            .checkpoint(&mut cluster[0], pid)
            .expect("checkpoint fits");
        let device_pages = device.used_pages();
        device.reset_stats();

        let mut restore_total = simclock::SimDuration::ZERO;
        let mut exec_total = simclock::SimDuration::ZERO;
        // A deep per-node queue: every target node restores and runs
        // four clones back to back, so the large sizes stress both the
        // device's read path and per-node memory.
        let clones_per_node = 4;
        let mut clones = 0u64;
        for node in cluster.iter_mut().skip(1) {
            for _ in 0..clones_per_node {
                let r = fork
                    .restore_with(&ckpt, node, RestoreOptions::mow())
                    .expect("restore fits");
                restore_total += r.restore_latency;
                let inv = faas::run_invocation(node, r.pid, &spec, 0).expect("invocation");
                exec_total += inv.total;
                clones += 1;
            }
        }
        let stats = device.stats();
        rows.push(vec![
            nodes.to_string(),
            clones.to_string(),
            ms(restore_total / clones),
            ms(exec_total / clones),
            format!(
                "{:.1}",
                stats.bytes_read.values().sum::<u64>() as f64 / 1048576.0
            ),
            device_pages.to_string(),
            (device.used_pages() - device_pages).to_string(),
        ]);
    }
    print_table(
        "Scalability: one Json checkpoint cloned across N nodes (restore latency flat; CXL read traffic scales with clones; device pages flat = perfect dedup)",
        &[
            "nodes", "clones", "restore/clone", "exec/clone", "CXL-read-MiB", "device-pages", "extra-pages",
        ],
        &rows,
    );
    println!("\n§8: in a large cluster, aggregate CXL bandwidth becomes the bottleneck — the traffic column is the quantity to provision for.");
}
