//! Table 1: the serverless function suite and its footprints.
//!
//! Run with `cargo bench -p cxlfork-bench --bench table1_functions`.

use cxlfork_bench::format::print_table;

fn main() {
    let rows: Vec<Vec<String>> = faas::suite()
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{}", s.footprint_mib),
                format!("{}", s.footprint_pages()),
                format!("{}", s.file_pages()),
                format!("{}", s.init_anon_pages()),
                format!("{}", s.ro_pages()),
                format!("{}", s.rw_pages()),
                format!("{}", s.ws_pages),
                format!("{}", s.ws_passes),
                format!("{}", s.compute_ms),
            ]
        })
        .collect();
    print_table(
        "Table 1: serverless functions (paper footprints: Float 24, Linpack 33, Json 24, Pyaes 24, Chameleon 27, HTML 256, Cnn 265, Rnn 190, BFS 125, Bert 630 MB)",
        &[
            "function", "MB", "pages", "file", "init-anon", "ro", "rw", "ws", "passes", "compute-ms",
        ],
        &rows,
    );
}
