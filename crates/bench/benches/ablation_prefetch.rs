//! Ablation (§4.2.1): opportunistic dirty-page prefetch on restore.
//!
//! The paper observes that >95% of pages written by the parent are
//! re-written by its children, so prefetching checkpoint-dirty pages
//! trades a little restore time for eliminating CXL CoW faults (and their
//! TLB shootdowns) during execution.
//!
//! Run with `cargo bench -p cxlfork-bench --bench ablation_prefetch`.

use cxlfork_bench::format::{ms, print_table};
use cxlfork_bench::{run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use rfork::{RestoreOptions, TierPolicy};
use simclock::LatencyModel;

fn main() {
    let model = LatencyModel::calibrated();
    let mut rows = Vec::new();
    for spec in faas::suite() {
        let on = run_cold_start(
            &spec,
            Scenario::CxlFork(RestoreOptions {
                policy: TierPolicy::MigrateOnWrite,
                prefetch_dirty: true,
                sync_hot_prefetch: false,
            }),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let off = run_cold_start(
            &spec,
            Scenario::CxlFork(RestoreOptions {
                policy: TierPolicy::MigrateOnWrite,
                prefetch_dirty: false,
                sync_hot_prefetch: false,
            }),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        rows.push(vec![
            spec.name.clone(),
            ms(on.restore),
            ms(off.restore),
            on.fault_count.to_string(),
            off.fault_count.to_string(),
            ms(on.total),
            ms(off.total),
        ]);
    }
    print_table(
        "Dirty-prefetch ablation (prefetch ON vs OFF): restore ms, first-invocation faults, end-to-end ms",
        &["function", "restore-on", "restore-off", "faults-on", "faults-off", "total-on", "total-off"],
        &rows,
    );
    println!("\npaper: prefetched pages avoid the ~2.5us CXL CoW fault (~500ns of which is TLB shootdown)");
}
