//! Figure 7b: local memory consumed by a child function under each
//! remote-fork scenario, normalized to Cold.
//!
//! The metric is the number of node-local frames the child *added* on the
//! target node (checkpointed state that stays in CXL is free; CoW-shared
//! and page-cache-shared frames are free).
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig7b_rfork_memory`.

use cxlfork_bench::format::{pages_mib, print_table};
use cxlfork_bench::{run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use simclock::LatencyModel;

fn main() {
    let model = LatencyModel::calibrated();
    let scenarios = [
        Scenario::Cold,
        Scenario::Criu,
        Scenario::Mitosis,
        Scenario::cxlfork_default(),
    ];

    let mut rows = Vec::new();
    let mut sums: Vec<f64> = vec![0.0; scenarios.len()];
    let mut n = 0u32;
    for spec in faas::suite() {
        let pages: Vec<u64> = scenarios
            .iter()
            .map(|s| run_cold_start(&spec, *s, &model, DEFAULT_STEADY_INVOCATIONS).local_pages)
            .collect();
        let cold = pages[0].max(1) as f64;
        let mut row = vec![spec.name.clone()];
        for (i, p) in pages.iter().enumerate() {
            row.push(pages_mib(*p));
            row.push(format!("{:.3}", *p as f64 / cold));
            sums[i] += *p as f64 / cold;
        }
        rows.push(row);
        n += 1;
    }

    print_table(
        "Figure 7b: child local memory (MiB, and normalized to Cold)",
        &[
            "function",
            "Cold MiB",
            "=1.0",
            "CRIU MiB",
            "CRIU",
            "Mitosis MiB",
            "Mitosis",
            "CXLfork MiB",
            "CXLfork",
        ],
        &rows,
    );

    let avg: Vec<f64> = sums.iter().map(|s| s / n as f64).collect();
    println!(
        "\naverages normalized to Cold: CRIU {:.2}, Mitosis {:.2}, CXLfork {:.2}",
        avg[1], avg[2], avg[3]
    );
    println!(
        "paper checks: CXLfork ≈0.13 of Cold; CXLfork saves {:.0}% vs CRIU (paper 87%) and {:.0}% vs Mitosis (paper 61%)",
        (1.0 - avg[3] / avg[1]) * 100.0,
        (1.0 - avg[3] / avg[2]) * 100.0
    );
}
