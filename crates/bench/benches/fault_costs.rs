//! Criterion micro-benchmarks of the simulator's hot paths, plus a
//! printout of the modelled §4.2.1 fault costs.
//!
//! Run with `cargo bench -p cxlfork-bench --bench fault_costs`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use cxl_mem::CxlDevice;
use node_os::mm::Access;
use node_os::vma::Protection;
use node_os::{Node, NodeConfig};
use simclock::LatencyModel;

fn bench_fault_paths(c: &mut Criterion) {
    // Print the modelled costs once, for the record (§4.2.1).
    let m = LatencyModel::calibrated();
    println!("modelled fault costs (simulated time):");
    println!("  local anonymous fault : {}", m.local_anon_fault());
    println!("  local CoW fault       : {}", m.local_cow_fault());
    println!(
        "  CXL CoW fault         : {} (paper ~2.5us)",
        m.cxl_cow_fault()
    );
    println!("  CXL pull fault        : {}", m.cxl_pull_fault());
    println!(
        "  TLB shootdown         : {}ns (paper ~500ns)",
        m.tlb_shootdown_ns
    );

    c.bench_function("sim_anon_fault", |b| {
        let device = Arc::new(CxlDevice::with_capacity_mib(16));
        let mut node = Node::new(NodeConfig::default().with_local_mem_mib(2048), device);
        let pid = node.spawn("bench").unwrap();
        node.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 1 << 18, Protection::read_write(), "heap")
            .unwrap();
        let mut vpn = 0u64;
        b.iter(|| {
            node.access(pid, vpn % (1 << 18), Access::Write).unwrap();
            vpn += 1;
        });
    });

    c.bench_function("sim_warm_read", |b| {
        let device = Arc::new(CxlDevice::with_capacity_mib(16));
        let mut node = Node::new(NodeConfig::default().with_local_mem_mib(256), device);
        let pid = node.spawn("bench").unwrap();
        node.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 1024, Protection::read_write(), "heap")
            .unwrap();
        for i in 0..1024 {
            node.access(pid, i, Access::Write).unwrap();
        }
        let mut vpn = 0u64;
        b.iter(|| {
            node.access(pid, vpn % 1024, Access::Read).unwrap();
            vpn += 1;
        });
    });

    c.bench_function("sim_cxlfork_checkpoint_restore_float", |b| {
        use rfork::RemoteFork;
        let spec = faas::by_name("Float").unwrap();
        b.iter(|| {
            let device = Arc::new(CxlDevice::with_capacity_mib(256));
            let rootfs = Arc::new(node_os::fs::SharedFs::new());
            let mut n0 = Node::with_rootfs(
                NodeConfig::default().with_id(0).with_local_mem_mib(256),
                Arc::clone(&device),
                Arc::clone(&rootfs),
            );
            let mut n1 = Node::with_rootfs(
                NodeConfig::default().with_id(1).with_local_mem_mib(256),
                device,
                rootfs,
            );
            let (pid, _) = faas::deploy_cold(&mut n0, &spec).unwrap();
            let fork = cxlfork::CxlFork::new();
            let ckpt = fork.checkpoint(&mut n0, pid).unwrap();
            let restored = fork.restore(&ckpt, &mut n1).unwrap();
            criterion::black_box(restored.restore_latency);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fault_paths
}
criterion_main!(benches);
