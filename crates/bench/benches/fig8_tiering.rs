//! Figure 8: the three CXLfork tiering policies — migrate-on-write (MoW),
//! migrate-on-access (MoA) and hybrid (HT) — and their trade-offs between
//! cold execution time (a), warm execution time (b), and local memory (c).
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig8_tiering`.

use cxlfork_bench::format::{ms, pages_mib, print_table};
use cxlfork_bench::{run_tiering, DEFAULT_STEADY_INVOCATIONS};
use rfork::RestoreOptions;
use simclock::LatencyModel;

fn main() {
    let model = LatencyModel::calibrated();
    let policies = [
        RestoreOptions::mow(),
        RestoreOptions::moa(),
        RestoreOptions::hybrid(),
    ];

    let mut rows = Vec::new();
    let mut sums = vec![(0.0f64, 0.0f64, 0.0f64); policies.len()];
    let mut base = Vec::new();
    let mut n = 0u32;
    for spec in faas::suite() {
        let results: Vec<_> = policies
            .iter()
            .map(|o| run_tiering(&spec, *o, &model, DEFAULT_STEADY_INVOCATIONS))
            .collect();
        let mut row = vec![spec.name.clone()];
        for r in &results {
            row.push(ms(r.cold));
            row.push(ms(r.warm));
            row.push(pages_mib(r.local_pages));
        }
        rows.push(row);
        let mow = &results[0];
        base.push((mow.cold, mow.warm, mow.local_pages));
        for (i, r) in results.iter().enumerate() {
            sums[i].0 += r.cold.ratio(mow.cold);
            sums[i].1 += r.warm.ratio(mow.warm);
            sums[i].2 += r.local_pages as f64 / mow.local_pages.max(1) as f64;
        }
        n += 1;
    }

    print_table(
        "Figure 8: tiering policies (cold ms / warm ms / local MiB per policy)",
        &[
            "function", "MoW-cold", "MoW-warm", "MoW-MiB", "MoA-cold", "MoA-warm", "MoA-MiB",
            "HT-cold", "HT-warm", "HT-MiB",
        ],
        &rows,
    );
    let f = n as f64;
    println!(
        "\naverages relative to MoW  —  MoA: cold {:+.0}%, warm {:+.0}%, memory {:+.0}%  (paper: cold +14%, warm -11%, memory +250%)",
        (sums[1].0 / f - 1.0) * 100.0,
        (sums[1].1 / f - 1.0) * 100.0,
        (sums[1].2 / f - 1.0) * 100.0
    );
    println!(
        "                          —  HT : cold {:+.0}%, warm {:+.0}%, memory {:+.0}%  (paper: HT between MoW and MoA, biggest wins on BFS/Bert)",
        (sums[2].0 / f - 1.0) * 100.0,
        (sums[2].1 / f - 1.0) * 100.0,
        (sums[2].2 / f - 1.0) * 100.0
    );
}
