//! Figure 10c: P99 (and P50) end-to-end latency with node memory reduced
//! to 100% / 50% / 25%, normalized to CRIU-CXL at each level (§7.2).
//!
//! Paper: as memory shrinks, CXLfork's memory frugality lets more
//! instances stay alive — at 25% memory it cuts P99 by ≈16x vs both
//! baselines, and dynamic tiering degenerates to MoW (HighMem threshold).
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig10c_porter_constrained`.

use cxlfork_bench::format::print_table;
use cxlporter::{Cluster, CxlPorter, PorterConfig, PorterReport};
use rfork::RemoteFork;
use simclock::LatencyModel;
use std::sync::Arc;
use trace_gen::{generate, Invocation, TraceConfig};

const BASE_MEM_MIB: u64 = 3072;
const DURATION_SECS: f64 = 55.0;
const WARMUP_SECS: u64 = 15;
const KEEP_ALIVE_SECS: u64 = 6;

fn trace() -> Vec<Invocation> {
    let functions = vec![
        "Json".into(),
        "Float".into(),
        "Pyaes".into(),
        "Chameleon".into(),
        "Linpack".into(),
        "HTML".into(),
        "Rnn".into(),
        "Cnn".into(),
        "BFS".into(),
        "Bert".into(),
    ];
    generate(&TraceConfig {
        duration_secs: DURATION_SECS,
        ..TraceConfig::paper_default(functions, 2025)
    })
}

fn tune(mut config: PorterConfig) -> PorterConfig {
    config.keep_alive = simclock::SimDuration::from_secs(KEEP_ALIVE_SECS);
    config
}

fn run<M: RemoteFork>(mech: M, config: PorterConfig, node_mem_mib: u64) -> PorterReport {
    let cluster = Cluster::new(2, node_mem_mib, 16 * 1024, LatencyModel::calibrated());
    let mut porter = CxlPorter::new(cluster, mech, tune(config));
    porter.set_measure_from(simclock::SimTime::from_nanos(WARMUP_SECS * 1_000_000_000));
    porter.run_trace(&trace())
}

fn main() {
    let mut p99_rows = Vec::new();
    let mut p50_rows = Vec::new();
    for (label, frac) in [("100%", 1.0f64), ("50%", 0.5), ("25%", 0.25)] {
        let mem = (BASE_MEM_MIB as f64 * frac) as u64;
        println!("running memory level {label} ({mem} MiB per node) ...");
        let mut criu = {
            let cluster = Cluster::new(2, mem, 16 * 1024, LatencyModel::calibrated());
            let mech =
                criu_cxl::CriuCxl::new(Arc::new(cxl_mem::CxlFs::new(Arc::clone(&cluster.device))));
            let mut porter = CxlPorter::new(cluster, mech, tune(PorterConfig::criu()));
            porter.set_measure_from(simclock::SimTime::from_nanos(WARMUP_SECS * 1_000_000_000));
            porter.run_trace(&trace())
        };
        let mut mitosis = run(mitosis_cxl::MitosisCxl::new(), PorterConfig::mitosis(), mem);
        let mut mow = run(
            cxlfork::CxlFork::new(),
            PorterConfig::cxlfork_static_mow(),
            mem,
        );
        let mut dynamic = run(
            cxlfork::CxlFork::new(),
            PorterConfig::cxlfork_dynamic(),
            mem,
        );

        let c99 = criu.overall.p99();
        let c50 = criu.overall.p50();
        p99_rows.push(vec![
            label.into(),
            format!("{:.0}ms", c99.as_millis_f64()),
            format!("{:.3}", 1.0),
            format!("{:.3}", mitosis.overall.p99().ratio(c99)),
            format!("{:.3}", mow.overall.p99().ratio(c99)),
            format!("{:.3}", dynamic.overall.p99().ratio(c99)),
            format!(
                "d:{} m:{} c:{}",
                dynamic.dropped, mitosis.dropped, criu.dropped
            ),
        ]);
        p50_rows.push(vec![
            label.into(),
            format!("{:.0}ms", c50.as_millis_f64()),
            format!("{:.3}", 1.0),
            format!("{:.3}", mitosis.overall.p50().ratio(c50)),
            format!("{:.3}", mow.overall.p50().ratio(c50)),
            format!("{:.3}", dynamic.overall.p50().ratio(c50)),
            format!(
                "recycles d:{} m:{} c:{}",
                dynamic.recycles, mitosis.recycles, criu.recycles
            ),
        ]);
    }

    print_table(
        "Figure 10c (P99): normalized to CRIU-CXL per memory level (paper: CXLfork's advantage grows as memory shrinks, ~16x at 25%)",
        &["memory", "CRIU-abs", "CRIU-CXL", "Mitosis-CXL", "CXLfork-MoW", "CXLfork", "drops"],
        &p99_rows,
    );
    print_table(
        "Figure 10c (P50): normalized to CRIU-CXL per memory level",
        &[
            "memory",
            "CRIU-abs",
            "CRIU-CXL",
            "Mitosis-CXL",
            "CXLfork-MoW",
            "CXLfork",
            "notes",
        ],
        &p50_rows,
    );
}
