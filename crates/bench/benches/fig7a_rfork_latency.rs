//! Figure 7a: end-to-end cold-start execution time under each remote-fork
//! scenario, broken into Restore / Page Faults / Execution, plus the Cold
//! and LocalFork reference bars.
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig7a_rfork_latency`.

use cxlfork_bench::format::{ms, print_table, ratio};
use cxlfork_bench::{run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use simclock::LatencyModel;

fn main() {
    let model = LatencyModel::calibrated();
    let scenarios = [
        Scenario::Cold,
        Scenario::LocalFork,
        Scenario::Criu,
        Scenario::Mitosis,
        Scenario::cxlfork_default(),
    ];

    let mut rows = Vec::new();
    // Geometric-mean accumulators of per-function ratios vs LocalFork.
    let mut ratio_products: Vec<f64> = vec![1.0; scenarios.len()];
    let mut n_funcs = 0u32;

    for spec in faas::suite() {
        let mut totals = Vec::new();
        for scenario in scenarios {
            let row = run_cold_start(&spec, scenario, &model, DEFAULT_STEADY_INVOCATIONS);
            totals.push(row.total);
            rows.push(vec![
                row.function.clone(),
                row.scenario.clone(),
                ms(row.restore),
                ms(row.faults),
                ms(row.execution),
                ms(row.total),
                row.fault_count.to_string(),
            ]);
        }
        let local_fork = totals[1];
        for (i, t) in totals.iter().enumerate() {
            ratio_products[i] *= t.ratio(local_fork);
        }
        n_funcs += 1;
    }

    print_table(
        "Figure 7a: cold-start execution time (ms), broken down",
        &[
            "function",
            "scenario",
            "restore",
            "page-faults",
            "execution",
            "total",
            "#faults",
        ],
        &rows,
    );

    let gmean: Vec<f64> = ratio_products
        .iter()
        .map(|p| p.powf(1.0 / n_funcs as f64))
        .collect();
    let summary: Vec<Vec<String>> = scenarios
        .iter()
        .zip(&gmean)
        .map(|(s, g)| vec![s.label(), ratio(*g)])
        .collect();
    print_table(
        "Figure 7a summary: geometric-mean slowdown vs LocalFork (paper: CRIU 2.6x, Mitosis 1.5x, CXLfork 1.14x, Cold >> all)",
        &["scenario", "vs LocalFork"],
        &summary,
    );
    println!(
        "\npaper checks: CXLfork ≈1.14x of LocalFork → measured {:.2}x;",
        gmean[4]
    );
    println!(
        "CRIU/CXLfork {:.2}x (paper 2.26x); Mitosis/CXLfork {:.2}x (paper 1.40x); Cold/CXLfork {:.1}x (paper ≈11x)",
        gmean[2] / gmean[4],
        gmean[3] / gmean[4],
        gmean[0] / gmean[4]
    );
}
