//! §8 "CXLfork for write-heavy workloads": even write-heavy processes
//! benefit from CXLfork's instant cloning, but the memory savings are
//! blunted — most of the footprint is eventually copy-on-written to local
//! memory anyway.
//!
//! The harness sweeps the read/write share of a synthetic 128 MiB function
//! from the FaaS-typical 5 % up to 60 % and reports CXLfork's restore
//! latency (stays flat: cloning is instant regardless) and the child's
//! local memory after a few invocations (grows with the write share: the
//! savings blunt).
//!
//! Run with `cargo bench -p cxlfork-bench --bench ablation_write_heavy`.

use cxlfork_bench::format::{ms, pages_mib, print_table};
use cxlfork_bench::{run_tiering, DEFAULT_STEADY_INVOCATIONS};
use faas::FunctionSpec;
use rfork::RestoreOptions;
use simclock::LatencyModel;

fn spec_with_rw(rw: f64) -> FunctionSpec {
    let ro = 0.25;
    let init = 1.0 - ro - rw;
    FunctionSpec {
        name: format!("synthetic-rw{:02}", (rw * 100.0) as u32),
        footprint_mib: 128,
        init_fraction: init,
        readonly_fraction: ro,
        readwrite_fraction: rw,
        file_fraction: (init * 0.3).min(0.25),
        ws_pages: 4_000,
        ws_passes: 1,
        rw_pages_per_invocation: ((128.0 * 256.0 * rw) as u64 / 2).max(64),
        compute_ms: 30,
        init_compute_ms: 300,
        template_overlap: 0.0,
    }
}

fn main() {
    let model = LatencyModel::calibrated();
    let mut rows = Vec::new();
    for rw in [0.05f64, 0.15, 0.30, 0.45, 0.60] {
        let spec = spec_with_rw(rw);
        spec.validate();
        let r = run_tiering(
            &spec,
            RestoreOptions::mow(),
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let footprint_mib = spec.footprint_mib as f64;
        rows.push(vec![
            format!("{:.0}%", rw * 100.0),
            ms(r.cold),
            ms(r.warm),
            pages_mib(r.local_pages),
            format!(
                "{:.0}%",
                (1.0 - (r.local_pages as f64 / 256.0) / footprint_mib) * 100.0
            ),
        ]);
    }
    print_table(
        "Write-heavy sweep (128 MiB function): CXLfork cold/warm time and child local memory vs write share",
        &["rw-share", "cold-ms", "warm-ms", "local-MiB", "memory-saving"],
        &rows,
    );
    println!("\n§8: cloning stays instant at any write share; the memory savings blunt as the");
    println!("footprint is copy-on-written to local memory.");
}
