//! Figure 6: latency of cold-starting a serverless function, split into
//! container creation (≈130 ms, roughly constant) and state
//! initialization (function-dependent, 250–500 ms).
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig6_coldstart_breakdown`.

use std::sync::Arc;

use cxl_mem::CxlDevice;
use cxlfork_bench::format::{ms, print_table};
use faas::Container;
use node_os::{Node, NodeConfig};

fn main() {
    let mut rows = Vec::new();
    for spec in faas::suite() {
        let device = Arc::new(CxlDevice::with_capacity_mib(64));
        let mut node = Node::new(NodeConfig::default().with_local_mem_mib(4096), device);
        let (container, container_cost) = Container::create(&mut node, 1).expect("container");
        let (pid, init) = faas::deploy_cold(&mut node, &spec).expect("deploy fits");
        let _ = (container, pid);
        rows.push(vec![
            spec.name.clone(),
            ms(container_cost),
            ms(init.compute),
            ms(init.fault),
            ms(init.total),
            ms(container_cost + init.total),
        ]);
    }
    print_table(
        "Figure 6: cold-start latency (ms) — container creation ≈130 ms constant; state init 250–500 ms (paper §5)",
        &["function", "container", "init-compute", "init-faults", "state-init", "total"],
        &rows,
    );
    println!(
        "\nbare container footprint: {} KiB (paper: 512 KiB)",
        faas::BARE_CONTAINER_PAGES * 4
    );
}
