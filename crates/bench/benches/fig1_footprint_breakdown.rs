//! Figure 1: breakdown of each function's memory footprint into Init,
//! Read-only and Read/Write data, measured with the A/D-bit profiler
//! (§2.2 invokes each function 128 times; the classification converges
//! far earlier, so this harness uses 32 to keep runtimes reasonable).
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig1_footprint_breakdown`.

use std::sync::Arc;

use cxl_mem::CxlDevice;
use cxlfork_bench::format::print_table;
use node_os::{Node, NodeConfig};

const INVOCATIONS: u64 = 32;

fn main() {
    let mut rows = Vec::new();
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    let mut n = 0u32;
    for spec in faas::suite() {
        let device = Arc::new(CxlDevice::with_capacity_mib(64));
        let mut node = Node::new(NodeConfig::default().with_local_mem_mib(4096), device);
        let (pid, _) = faas::deploy_cold(&mut node, &spec).expect("deploy fits");
        let b = faas::profile_footprint(&mut node, pid, &spec, INVOCATIONS).expect("profile");
        let (init, ro, rw) = b.fractions();
        sums.0 += init;
        sums.1 += ro;
        sums.2 += rw;
        n += 1;
        rows.push(vec![
            spec.name.clone(),
            format!("{:.1}%", init * 100.0),
            format!("{:.1}%", ro * 100.0),
            format!("{:.1}%", rw * 100.0),
            b.total().to_string(),
        ]);
    }
    print_table(
        "Figure 1: footprint breakdown (paper averages: Init 72.2%, Read-only 23%, Read/Write 4.8%)",
        &["function", "Init", "Read-only", "Read/Write", "pages"],
        &rows,
    );
    println!(
        "\nmeasured averages: Init {:.1}%, Read-only {:.1}%, Read/Write {:.1}%",
        sums.0 / n as f64 * 100.0,
        sums.1 / n as f64 * 100.0,
        sums.2 / n as f64 * 100.0
    );
}
