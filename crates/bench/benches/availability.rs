//! Availability under failure: what a CXL-resident checkpoint store buys
//! when nodes die mid-run.
//!
//! The experiment runs a 10 s Azure-like trace over a three-node cluster
//! while the fabric injects seeded transient link errors and `CRASHES`
//! nodes crash at seeded times (about half of them mid-checkpoint). The
//! paper's availability claim is the asymmetry this measures: local node
//! state dies with the node, but checkpoints in fabric-attached CXL
//! memory survive, so the porter re-dispatches in-flight work to the
//! survivors by restoring from the shared device instead of re-deploying
//! from scratch.
//!
//! Run with `cargo bench -p cxlfork-bench --bench availability`.

use cxlfork_bench::format::print_table;
use cxlfork_bench::run_availability;
use simclock::LatencyModel;

const SEEDS: [u64; 3] = [7, 1984, 4242];
const CRASHES: usize = 2;

fn main() {
    let model = LatencyModel::calibrated();
    let mut rows = Vec::new();
    for seed in SEEDS {
        let outcome = run_availability(seed, CRASHES, &model);
        assert!(
            outcome.accounting_balances(),
            "seed {seed}: requests leaked or double-executed"
        );
        let r = &outcome.report;
        rows.push(vec![
            seed.to_string(),
            outcome.trace_len.to_string(),
            r.crashes_survived.to_string(),
            r.redispatched.to_string(),
            r.work_lost.to_string(),
            r.dropped.to_string(),
            outcome.completed().to_string(),
            r.device_retries.to_string(),
            outcome.fault_stats.transients.to_string(),
            format!(
                "{}/{}",
                r.orphan_regions_reclaimed, r.orphan_pages_reclaimed
            ),
        ]);
    }
    print_table(
        "Availability under node failures (3 nodes, 10 s trace, 2 crashes)",
        &[
            "seed",
            "requests",
            "crashes",
            "redispatched",
            "lost",
            "dropped",
            "completed",
            "retries",
            "transients",
            "orphans r/p",
        ],
        &rows,
    );
}
