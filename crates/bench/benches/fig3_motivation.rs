//! Figure 3c: the motivation experiment — CRIU and Mitosis latency and
//! local-memory overhead when remote-forking a BERT instance, against a
//! local fork.
//!
//! Run with `cargo bench -p cxlfork-bench --bench fig3_motivation`.

use cxlfork_bench::format::{ms, print_table, ratio};
use cxlfork_bench::{run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use simclock::LatencyModel;

fn main() {
    let model = LatencyModel::calibrated();
    let bert = faas::by_name("Bert").expect("Bert in suite");
    let scenarios = [Scenario::LocalFork, Scenario::Criu, Scenario::Mitosis];
    let results: Vec<_> = scenarios
        .iter()
        .map(|s| run_cold_start(&bert, *s, &model, DEFAULT_STEADY_INVOCATIONS))
        .collect();
    let local = &results[0];

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                ms(r.restore),
                ms(r.total),
                ratio(r.total.ratio(local.total)),
                r.local_pages.to_string(),
                ratio(r.local_pages as f64 / local.local_pages.max(1) as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 3c: BERT remote fork vs local fork (paper: CRIU restore 2.7x the local fork+exec, 42x memory; Mitosis 2.6x total, 24x memory)",
        &["scenario", "restore-ms", "total-ms", "vs-LocalFork", "local-pages", "mem-vs-LocalFork"],
        &rows,
    );
    println!(
        "\npaper checks: CRIU restore alone vs LocalFork total = {:.2}x (paper 2.7x); \
         Mitosis total vs LocalFork total = {:.2}x (paper 2.6x)",
        results[1].restore.ratio(local.total),
        results[2].total.ratio(local.total),
    );
}
