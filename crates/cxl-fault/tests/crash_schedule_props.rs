//! Property tests for [`cxl_fault::CrashSchedule`]: seed determinism of
//! `from_plan`, and the drain discipline of `due` — events come out in
//! nondecreasing time order and none is ever lost or duplicated across
//! repeated calls, whatever the query-time sequence.

use cxl_fault::{CrashSchedule, NodeCrash};
use proptest::prelude::*;
use simclock::{SimDuration, SimTime};

fn at(ns: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_nanos(ns)
}

/// Arbitrary crash events over a 10-virtual-second horizon.
fn events_strategy() -> impl Strategy<Value = Vec<NodeCrash>> {
    prop::collection::vec(
        (0usize..8, 0u64..10_000_000_000, any::<bool>()).prop_map(|(node, ns, mid)| NodeCrash {
            node,
            at: at(ns),
            mid_checkpoint: mid,
        }),
        0..32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn from_plan_is_seed_deterministic(
        seed in any::<u64>(),
        nodes in 2usize..16,
        secs in 1u64..100,
        count in 0usize..12,
    ) {
        let dur = SimDuration::from_secs(secs);
        let a = CrashSchedule::from_plan(seed, nodes, dur, count);
        let b = CrashSchedule::from_plan(seed, nodes, dur, count);
        prop_assert_eq!(a.remaining(), b.remaining(), "same seed, same schedule");
        prop_assert_eq!(a.len(), count);
        for e in a.remaining() {
            prop_assert!(e.node != 0, "node 0 must survive to absorb failover");
            prop_assert!(e.node < nodes);
            // Crash times land in the middle 80% of the duration.
            let ns = e.at.duration_since(SimTime::ZERO).as_nanos();
            prop_assert!(ns >= dur.as_nanos() / 10);
            prop_assert!(ns <= dur.as_nanos() - dur.as_nanos() / 10);
        }
    }

    #[test]
    fn due_drains_nondecreasing_with_no_loss_or_duplication(
        events in events_strategy(),
        queries in prop::collection::vec(0u64..12_000_000_000, 0..16),
    ) {
        let mut schedule = CrashSchedule::from_events(events.clone());
        let total = schedule.len();
        prop_assert_eq!(total, events.len(), "from_events keeps every event");

        // Drain with an arbitrary (not necessarily monotone) sequence of
        // query times, then a final drain-everything pass.
        let mut drained: Vec<NodeCrash> = Vec::new();
        for q in queries {
            let now = at(q);
            let batch = schedule.due(now);
            for e in &batch {
                prop_assert!(e.at <= now, "due returned a future event");
            }
            drained.extend(batch);
        }
        drained.extend(schedule.due(SimTime::ZERO + SimDuration::MAX));
        prop_assert!(schedule.is_empty());
        prop_assert_eq!(schedule.due(SimTime::ZERO + SimDuration::MAX), vec![]);

        // Nondecreasing (at, node) order across every call.
        for pair in drained.windows(2) {
            prop_assert!(
                (pair[0].at, pair[0].node) <= (pair[1].at, pair[1].node),
                "drain order regressed: {pair:?}"
            );
        }

        // No event lost, none duplicated: the concatenated drains are a
        // permutation of the input.
        prop_assert_eq!(drained.len(), total);
        let mut expected = events;
        expected.sort_by_key(|e| (e.at, e.node, e.mid_checkpoint));
        let mut got = drained;
        got.sort_by_key(|e| (e.at, e.node, e.mid_checkpoint));
        prop_assert_eq!(got, expected);
    }
}
