//! Lease-based reclamation of orphaned checkpoint staging regions.
//!
//! The two-phase checkpoint commit (`core::checkpoint`) writes into an
//! *uncommitted* staging region and publishes it atomically at the end.
//! If the checkpointing node dies first, the staging region — invisible
//! to restore, but holding real device pages — would leak forever.
//! Ownership is therefore leased: every live node renews a lease on the
//! [`LeaseTable`]; a GC pass reclaims any staging region whose owner's
//! lease has expired (or was revoked by an observed crash).

use std::collections::BTreeMap;

use cxl_mem::{CxlDevice, NodeId};
use simclock::{SimDuration, SimTime};

/// Per-node liveness leases, keyed by expiry time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseTable {
    ttl: SimDuration,
    /// Expiry time of each node's current lease.
    leases: BTreeMap<NodeId, SimTime>,
}

impl LeaseTable {
    /// A table whose leases last `ttl` past each renewal.
    pub fn new(ttl: SimDuration) -> Self {
        LeaseTable {
            ttl,
            leases: BTreeMap::new(),
        }
    }

    /// The configured lease duration.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Renews `node`'s lease as of `now`: the lease is live over the
    /// half-open window `[now, now + ttl)`.
    pub fn renew(&mut self, node: NodeId, now: SimTime) {
        self.leases.insert(node, now.saturating_add(self.ttl));
    }

    /// Expiry instant of `node`'s current lease (the first instant at
    /// which the lease is *dead* — see [`LeaseTable::is_live`]), or
    /// `None` if the node never renewed or was revoked.
    pub fn expires_at(&self, node: NodeId) -> Option<SimTime> {
        self.leases.get(&node).copied()
    }

    /// Drops `node`'s lease immediately (an observed crash — no need to
    /// wait out the TTL).
    pub fn revoke(&mut self, node: NodeId) {
        self.leases.remove(&node);
    }

    /// Whether `node` holds an unexpired lease at `now`. Nodes that
    /// never renewed are not live: leases are opt-in, so an unknown
    /// owner is treated as dead and its staging regions reclaimable.
    ///
    /// The lease window is **half-open**: a lease renewed at `t` is live
    /// on `[t, t + ttl)` and dead *at* `t + ttl` exactly. The strict
    /// `<` makes the boundary unambiguous in virtual time — a GC pass
    /// running at precisely the expiry instant reclaims, and a renewal
    /// at precisely the expiry instant re-arms the lease for the next
    /// window with no dead gap (renewal wins because it writes a new
    /// expiry before any later `is_live` query can observe the old one).
    pub fn is_live(&self, node: NodeId, now: SimTime) -> bool {
        self.leases.get(&node).is_some_and(|expiry| now < *expiry)
    }
}

/// What one reclamation pass freed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimReport {
    /// Staging regions destroyed.
    pub regions: u64,
    /// Device pages freed with them.
    pub pages: u64,
}

impl ReclaimReport {
    /// Merges another report into this one.
    pub fn absorb(&mut self, other: ReclaimReport) {
        self.regions += other.regions;
        self.pages += other.pages;
    }
}

/// Destroys every uncommitted staging region whose owner does not hold a
/// live lease at `now`. Committed checkpoints are never touched — they
/// are exactly the regions that must survive their owner's death.
pub fn reclaim_orphans(device: &CxlDevice, leases: &LeaseTable, now: SimTime) -> ReclaimReport {
    let mut report = ReclaimReport::default();
    for staged in device.staging_regions() {
        if !leases.is_live(staged.owner, now) && device.destroy_region(staged.region).is_ok() {
            report.regions += 1;
            report.pages += staged.pages;
        }
    }
    report
}

/// Destroys every uncommitted staging region owned by one of `dead`
/// (end-of-run cleanup once crashes are known exactly).
pub fn reclaim_dead(device: &CxlDevice, dead: &[NodeId]) -> ReclaimReport {
    let mut report = ReclaimReport::default();
    for staged in device.staging_regions() {
        if dead.contains(&staged.owner) && device.destroy_region(staged.region).is_ok() {
            report.regions += 1;
            report.pages += staged.pages;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_expire_and_renew() {
        let mut t = LeaseTable::new(SimDuration::from_secs(10));
        let n = NodeId(0);
        assert!(!t.is_live(n, SimTime::ZERO), "never-renewed node is dead");
        t.renew(n, SimTime::ZERO);
        assert!(t.is_live(n, SimTime::ZERO + SimDuration::from_secs(9)));
        assert!(!t.is_live(n, SimTime::ZERO + SimDuration::from_secs(10)));
        t.renew(n, SimTime::ZERO + SimDuration::from_secs(10));
        assert!(t.is_live(n, SimTime::ZERO + SimDuration::from_secs(19)));
        t.revoke(n);
        assert!(!t.is_live(n, SimTime::ZERO + SimDuration::from_secs(11)));
    }

    #[test]
    fn lease_boundary_is_half_open_and_renewal_at_expiry_rearms() {
        let ttl = SimDuration::from_secs(10);
        let mut t = LeaseTable::new(ttl);
        let n = NodeId(3);
        t.renew(n, SimTime::ZERO);
        let expiry = t.expires_at(n).unwrap();
        assert_eq!(expiry, SimTime::ZERO + ttl);
        // Live strictly before expiry, dead at exactly expiry.
        assert!(t.is_live(
            n,
            SimTime::ZERO + SimDuration::from_nanos(ttl.as_nanos() - 1)
        ));
        assert!(!t.is_live(n, expiry), "dead at exactly t + ttl");
        // Renewal at exactly the expiry instant re-arms with no gap.
        t.renew(n, expiry);
        assert!(t.is_live(n, expiry));
        assert_eq!(t.expires_at(n), Some(expiry + ttl));
    }

    #[test]
    fn reclaim_orphans_at_exactly_the_expiry_instant() {
        let device = CxlDevice::new(64);
        let ttl = SimDuration::from_secs(10);
        let mut leases = LeaseTable::new(ttl);
        leases.renew(NodeId(1), SimTime::ZERO);
        let expiry = leases.expires_at(NodeId(1)).unwrap();

        let staged = device.create_region_staged("boundary-staging", NodeId(1), 1);
        device.alloc_pages(staged, 2).unwrap();

        // One nanosecond before expiry: the owner is still live, nothing
        // is reclaimed.
        let just_before = SimTime::ZERO + SimDuration::from_nanos(ttl.as_nanos() - 1);
        assert_eq!(
            reclaim_orphans(&device, &leases, just_before),
            ReclaimReport::default()
        );

        // Renewal at exactly the expiry instant keeps the region safe
        // through the whole next window.
        let mut renewed = leases.clone();
        renewed.renew(NodeId(1), expiry);
        assert_eq!(
            reclaim_orphans(&device, &renewed, expiry),
            ReclaimReport::default()
        );
        assert_eq!(device.region_usage(staged).unwrap().pages, 2);

        // Without the renewal, a GC pass at exactly the expiry instant
        // reclaims: the half-open window has closed.
        let report = reclaim_orphans(&device, &leases, expiry);
        assert_eq!(
            report,
            ReclaimReport {
                regions: 1,
                pages: 2
            }
        );
        assert!(device.region_usage(staged).is_err());
    }

    #[test]
    fn gc_reclaims_only_dead_owned_staging_regions() {
        let device = CxlDevice::new(64);
        let mut leases = LeaseTable::new(SimDuration::from_secs(10));
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        leases.renew(NodeId(0), SimTime::ZERO);

        // Live owner's staging region: kept.
        let live_staged = device.create_region_staged("live-staging", NodeId(0), 1);
        device.alloc_pages(live_staged, 2).unwrap();
        // Dead owner's staging region: reclaimed.
        let dead_staged = device.create_region_staged("dead-staging", NodeId(1), 1);
        device.alloc_pages(dead_staged, 3).unwrap();
        // Dead owner's *committed* checkpoint: survives its owner.
        let committed = device.create_region_staged("dead-committed", NodeId(1), 0);
        device.alloc_pages(committed, 4).unwrap();
        device.commit_region(committed).unwrap();

        let report = reclaim_orphans(&device, &leases, now);
        assert_eq!(
            report,
            ReclaimReport {
                regions: 1,
                pages: 3
            }
        );
        assert!(device.region_usage(dead_staged).is_err());
        assert_eq!(device.region_usage(live_staged).unwrap().pages, 2);
        assert_eq!(device.region_usage(committed).unwrap().pages, 4);

        // End-of-run sweep with an explicit dead list.
        let sweep = reclaim_dead(&device, &[NodeId(0)]);
        assert_eq!(
            sweep,
            ReclaimReport {
                regions: 1,
                pages: 2
            }
        );
        assert!(device.staging_regions().is_empty());
    }
}
