//! Deterministic fault injection and recovery primitives for the
//! simulated CXL fabric.
//!
//! CXLfork's availability argument — checkpoints live in fabric-attached
//! memory, so they survive compute-node crashes and restore anywhere —
//! only means something if the simulation can actually kill nodes and
//! corrupt device operations. This crate supplies the failure model:
//!
//! * [`Injector`]: a [`cxl_mem::FaultHook`] that fails device operations
//!   according to an explicit [`FaultSchedule`] ("poison the 3rd read")
//!   and/or a seeded [`FaultPlan`] (per-op fault probabilities drawn from
//!   `simclock::rng::derived`). Both are deterministic: the same op
//!   sequence and seed always fault the same operations.
//! * [`retry`]: bounded exponential backoff for transient link errors,
//!   charged to the *virtual* clock so retry costs show up in reports.
//! * [`crash`]: seeded or explicit node-crash schedules consumed by the
//!   autoscaler's failover path.
//! * [`lease`]: epoch/lease-based reclamation of checkpoint staging
//!   regions orphaned by a dead node (the GC half of the two-phase
//!   checkpoint commit in `core::checkpoint`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cxl_mem::{CxlDevice, DeviceOp, NodeId};
//! use cxl_fault::{FaultSchedule, Injector};
//!
//! let device = CxlDevice::new(64);
//! let region = device.create_region("r");
//! let page = device.alloc_page(region).unwrap();
//!
//! // Fail the second read with a transient link error.
//! let schedule = FaultSchedule::new().transient_after(DeviceOp::Read, 1, 1);
//! let injector = Arc::new(Injector::from_schedule(schedule));
//! device.set_fault_hook(Some(injector.clone()));
//!
//! assert!(device.read_page(page, NodeId(0)).is_ok());
//! assert!(device.read_page(page, NodeId(0)).is_err());
//! assert!(device.read_page(page, NodeId(0)).is_ok());
//! assert_eq!(injector.stats().transients, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod crashpoint;
mod inject;
pub mod lease;
pub mod retry;

pub use crash::{CrashSchedule, NodeCrash};
pub use crashpoint::{run_to_crash, CrashpointHook, CrashpointKill, Killer, Recorder};
pub use inject::{
    FaultPlan, FaultRecord, FaultSchedule, FaultStats, InjectedFault, Injector, PortGeometry,
    Trigger,
};
pub use lease::{reclaim_dead, reclaim_orphans, LeaseTable, ReclaimReport};
pub use retry::{with_backoff, BackoffPolicy, RetryReport};
