//! The deterministic fault injector.
//!
//! Faults come from two composable sources, both deterministic:
//!
//! * a [`FaultSchedule`] of explicit triggers — "fail the `k`-th read
//!   with poison" — counted per operation kind, for tests that need a
//!   fault in an exact place; and
//! * a [`FaultPlan`] of per-operation fault probabilities drawn from an
//!   RNG seeded via `simclock::rng::derived(seed, "cxl-fault.plan")`,
//!   for availability experiments that want faults "everywhere, fairly".
//!
//! Determinism hinges on one rule: the injector consumes randomness only
//! inside [`Injector::inject`], exactly once per probability it checks,
//! in device-op order. Two runs issuing the same operation sequence see
//! identical faults; changing the seed moves them.

use std::collections::{BTreeMap, BTreeSet};

use cxl_mem::lockdep::TrackedMutex;

use cxl_mem::{CxlError, CxlPageId, DeviceOp, FaultHook, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

/// What an armed trigger does to the matching operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Permanently poison the page the operation touches; this and every
    /// later access to that page fails with [`CxlError::Poisoned`].
    /// Ignored by operations without a page (allocations).
    Poison,
    /// Fail this and the next `burst - 1` operations of the same kind
    /// with [`CxlError::Transient`] (a link-level error burst).
    Transient {
        /// Number of consecutive matching operations to fail (≥ 1).
        burst: u32,
    },
    /// Report the device as out of memory for `burst` consecutive
    /// allocation attempts (simulated allocator exhaustion).
    AllocExhausted {
        /// Number of consecutive allocations to fail (≥ 1).
        burst: u32,
    },
}

/// One explicit trigger: fire `fault` on the `after`-th operation of
/// kind `op` (0-based, counted from injector arming).
///
/// A trigger may additionally target one fabric **port** (see
/// [`Injector::set_port_geometry`]): it still arms at the `after`-th
/// operation of its kind, but it and any burst it starts only fail
/// operations whose page rides the targeted port — a link-level error
/// is a property of one switch port, not of the whole device. With
/// `port: None` (every pre-existing constructor) behavior is
/// bit-identical to the un-ported injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trigger {
    /// Operation kind that this trigger counts and matches.
    pub op: DeviceOp,
    /// 0-based index of the matching operation to fail.
    pub after: u64,
    /// The fault to inject.
    pub fault: InjectedFault,
    /// Fabric port the fault is pinned to (`None` = whole device).
    pub port: Option<u32>,
}

/// An explicit, ordered set of fault triggers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    triggers: Vec<Trigger>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds an arbitrary trigger.
    #[must_use]
    pub fn with(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }

    /// Poison the page touched by the `after`-th operation of kind `op`.
    #[must_use]
    pub fn poison_after(self, op: DeviceOp, after: u64) -> Self {
        self.with(Trigger {
            op,
            after,
            fault: InjectedFault::Poison,
            port: None,
        })
    }

    /// Fail `burst` operations of kind `op` starting at the `after`-th
    /// with transient link errors.
    #[must_use]
    pub fn transient_after(self, op: DeviceOp, after: u64, burst: u32) -> Self {
        self.with(Trigger {
            op,
            after,
            fault: InjectedFault::Transient { burst },
            port: None,
        })
    }

    /// Like [`FaultSchedule::transient_after`], but the burst is pinned
    /// to one fabric `port`: it arms at the `after`-th operation of
    /// kind `op` and then fails the next `burst` operations of that
    /// kind *whose page rides the targeted port*. Requires the
    /// injector's port geometry to be set (see
    /// [`Injector::set_port_geometry`]); without it the burst never
    /// matches.
    #[must_use]
    pub fn transient_after_on_port(self, op: DeviceOp, after: u64, burst: u32, port: u32) -> Self {
        self.with(Trigger {
            op,
            after,
            fault: InjectedFault::Transient { burst },
            port: Some(port),
        })
    }

    /// Fail `burst` allocations starting at the `after`-th with
    /// out-of-device-memory.
    #[must_use]
    pub fn alloc_exhausted_after(self, after: u64, burst: u32) -> Self {
        self.with(Trigger {
            op: DeviceOp::Alloc,
            after,
            fault: InjectedFault::AllocExhausted { burst },
            port: None,
        })
    }

    /// Number of triggers in the schedule.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// Whether the schedule has no triggers.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }
}

/// Seeded probabilistic fault plan. All probabilities default to zero;
/// enable only what an experiment needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's RNG (derived with label
    /// `"cxl-fault.plan"`, so it does not share a stream with trace
    /// generation or crash scheduling).
    pub seed: u64,
    /// Probability that a read is hit by a transient link error.
    pub transient_per_read: f64,
    /// Probability that a write is hit by a transient link error.
    pub transient_per_write: f64,
    /// Probability that a read permanently poisons its page.
    pub poison_per_read: f64,
}

impl FaultPlan {
    /// A benign plan (all probabilities zero) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_per_read: 0.0,
            transient_per_write: 0.0,
            poison_per_read: 0.0,
        }
    }

    /// Sets the transient-error probability for both reads and writes.
    #[must_use]
    pub fn with_transient_rate(mut self, p: f64) -> Self {
        self.transient_per_read = p;
        self.transient_per_write = p;
        self
    }

    /// Sets the per-read poison probability.
    #[must_use]
    pub fn with_poison_rate(mut self, p: f64) -> Self {
        self.poison_per_read = p;
        self
    }
}

/// Counters of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient link errors injected.
    pub transients: u64,
    /// Pages poisoned (first hits only; repeat accesses to an already
    /// poisoned page count under `poison_hits`).
    pub poisons: u64,
    /// Accesses denied because the page was already poisoned.
    pub poison_hits: u64,
    /// Allocations failed with injected exhaustion.
    pub alloc_failures: u64,
}

impl FaultStats {
    /// Total injected failures.
    pub fn total(&self) -> u64 {
        self.transients + self.poisons + self.poison_hits + self.alloc_failures
    }
}

/// One injected fault, for determinism assertions: *which* operation
/// (by per-kind index) was failed, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Operation kind that was failed.
    pub op: DeviceOp,
    /// 0-based per-kind index of the failed operation.
    pub index: u64,
    /// Page involved, if any.
    pub page: Option<CxlPageId>,
}

/// Maximum retained [`FaultRecord`]s (enough for any test; keeps long
/// availability runs from accumulating unbounded logs).
const FAULT_LOG_CAP: usize = 256;

/// Page → fabric-port mapping, mirroring how the device's offset-range
/// shards land on switch ports (shard `i` rides port
/// `i % ports_per_device`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortGeometry {
    /// Pages per device shard ([`cxl_mem::CxlDevice::pages_per_shard`]).
    pub pages_per_shard: u64,
    /// Switch ports the device exposes.
    pub ports_per_device: u32,
}

impl PortGeometry {
    /// The fabric port a page's traffic rides.
    pub fn port_of(&self, page: CxlPageId) -> u32 {
        let shard = page.0 / self.pages_per_shard.max(1);
        u32::try_from(shard % u64::from(self.ports_per_device.max(1))).unwrap_or(0)
    }
}

/// Does an operation on `page` ride the targeted port? `None` targets
/// the whole device (always matches — the pre-port behavior); a
/// concrete port requires geometry and a page on that port.
fn port_hit(geometry: Option<PortGeometry>, port: Option<u32>, page: Option<CxlPageId>) -> bool {
    match port {
        None => true,
        Some(target) => match (geometry, page) {
            (Some(g), Some(p)) => g.port_of(p) == target,
            _ => false,
        },
    }
}

/// One active transient/exhaustion burst.
#[derive(Debug, Clone, Copy)]
struct Burst {
    op: DeviceOp,
    remaining: u32,
    oom: bool,
    /// Fabric port the burst is pinned to (`None` = whole device).
    port: Option<u32>,
}

#[derive(Debug)]
struct InjectorState {
    schedule: Vec<Trigger>,
    plan: Option<FaultPlan>,
    rng: Option<StdRng>,
    /// Per-kind operation counters (0-based index of the *next* op).
    counts: BTreeMap<DeviceOp, u64>,
    /// Pages permanently poisoned.
    poisoned: BTreeSet<CxlPageId>,
    /// Active transient/exhaustion bursts.
    bursts: Vec<Burst>,
    /// Page → port mapping for port-targeted triggers.
    geometry: Option<PortGeometry>,
    stats: FaultStats,
    log: Vec<FaultRecord>,
}

/// The deterministic fault injector; install on a device with
/// [`Injector::arm`] or `device.set_fault_hook(Some(arc))`.
#[derive(Debug)]
pub struct Injector {
    state: TrackedMutex<InjectorState>,
}

impl Injector {
    /// Builds an injector from an explicit schedule and an optional
    /// seeded plan.
    pub fn new(schedule: FaultSchedule, plan: Option<FaultPlan>) -> Self {
        let rng = plan
            .as_ref()
            .map(|p| simclock::rng::derived(p.seed, "cxl-fault.plan"));
        Injector {
            state: TrackedMutex::new(
                "cxl_fault.injector",
                InjectorState {
                    schedule: schedule.triggers,
                    plan,
                    rng,
                    counts: BTreeMap::new(),
                    poisoned: BTreeSet::new(),
                    bursts: Vec::new(),
                    geometry: None,
                    stats: FaultStats::default(),
                    log: Vec::new(),
                },
            ),
        }
    }

    /// An injector driven only by an explicit schedule.
    pub fn from_schedule(schedule: FaultSchedule) -> Self {
        Injector::new(schedule, None)
    }

    /// An injector driven only by a seeded plan.
    pub fn from_plan(plan: FaultPlan) -> Self {
        Injector::new(FaultSchedule::new(), Some(plan))
    }

    /// Installs this injector as the device's fault hook.
    pub fn arm(self: &std::sync::Arc<Self>, device: &cxl_mem::CxlDevice) {
        device.set_fault_hook(Some(self.clone()));
    }

    /// Sets the page → fabric-port mapping that port-targeted triggers
    /// (e.g. [`FaultSchedule::transient_after_on_port`]) resolve pages
    /// against. Untargeted triggers ignore it entirely.
    pub fn set_port_geometry(&self, geometry: PortGeometry) {
        self.state.lock().geometry = Some(geometry);
    }

    /// [`Injector::arm`] plus port geometry derived from the device's
    /// shard layout and the fabric's `ports_per_device`.
    pub fn arm_with_ports(
        self: &std::sync::Arc<Self>,
        device: &cxl_mem::CxlDevice,
        ports_per_device: u32,
    ) {
        self.set_port_geometry(PortGeometry {
            pages_per_shard: device.pages_per_shard(),
            ports_per_device,
        });
        self.arm(device);
    }

    /// Directly poisons a page (test convenience; no operation needed).
    pub fn poison_page(&self, page: CxlPageId) {
        let mut st = self.state.lock();
        if st.poisoned.insert(page) {
            st.stats.poisons += 1;
        }
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().stats.clone()
    }

    /// The log of injected faults (per-kind op index of each), capped at
    /// 256 entries. Two runs with the same seed produce identical logs;
    /// different seeds move the faults.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.state.lock().log.clone()
    }
}

fn record(st: &mut InjectorState, op: DeviceOp, index: u64, page: Option<CxlPageId>) {
    if st.log.len() < FAULT_LOG_CAP {
        st.log.push(FaultRecord { op, index, page });
    }
}

impl FaultHook for Injector {
    fn inject(&self, op: DeviceOp, page: Option<CxlPageId>, _node: NodeId) -> Option<CxlError> {
        let mut st = self.state.lock();
        let st = &mut *st;
        let index = {
            let c = st.counts.entry(op).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };

        // 1. Permanently poisoned pages fail every read/write.
        if let Some(p) = page {
            if matches!(op, DeviceOp::Read | DeviceOp::Write) && st.poisoned.contains(&p) {
                st.stats.poison_hits += 1;
                record(st, op, index, page);
                return Some(CxlError::Poisoned(p));
            }
        }

        // 2. Active error bursts from earlier triggers. A port-pinned
        // burst only fails operations whose page rides its port;
        // untargeted bursts (`port: None`) match exactly as before.
        if let Some(pos) = st
            .bursts
            .iter()
            .position(|b| b.op == op && b.remaining > 0 && port_hit(st.geometry, b.port, page))
        {
            let burst = &mut st.bursts[pos];
            burst.remaining -= 1;
            let oom = burst.oom;
            if burst.remaining == 0 {
                st.bursts.swap_remove(pos);
            }
            record(st, op, index, page);
            return Some(if oom {
                st.stats.alloc_failures += 1;
                CxlError::OutOfDeviceMemory {
                    requested: 0,
                    available: 0,
                }
            } else {
                st.stats.transients += 1;
                CxlError::Transient { op: op.name() }
            });
        }

        // 3. Scheduled triggers firing at this exact op index. A
        // port-pinned trigger arms at its index either way, but only
        // fails the current operation if it rides the targeted port;
        // otherwise the full burst stays pending for step 2 and the
        // operation falls through to the plan checks.
        if let Some(pos) = st
            .schedule
            .iter()
            .position(|t| t.op == op && t.after == index)
        {
            let trigger = st.schedule.swap_remove(pos);
            let on_port = port_hit(st.geometry, trigger.port, page);
            match trigger.fault {
                InjectedFault::Poison => {
                    if let Some(p) = page {
                        if on_port {
                            if st.poisoned.insert(p) {
                                st.stats.poisons += 1;
                            }
                            record(st, op, index, page);
                            return Some(CxlError::Poisoned(p));
                        }
                        // Off-port: the targeted page never came by.
                    }
                    // No page to poison (alloc): fall through benignly.
                }
                InjectedFault::Transient { burst } => {
                    if on_port {
                        if burst > 1 {
                            st.bursts.push(Burst {
                                op,
                                remaining: burst - 1,
                                oom: false,
                                port: trigger.port,
                            });
                        }
                        st.stats.transients += 1;
                        record(st, op, index, page);
                        return Some(CxlError::Transient { op: op.name() });
                    }
                    st.bursts.push(Burst {
                        op,
                        remaining: burst,
                        oom: false,
                        port: trigger.port,
                    });
                }
                InjectedFault::AllocExhausted { burst } => {
                    if on_port {
                        if burst > 1 {
                            st.bursts.push(Burst {
                                op,
                                remaining: burst - 1,
                                oom: true,
                                port: trigger.port,
                            });
                        }
                        st.stats.alloc_failures += 1;
                        record(st, op, index, page);
                        return Some(CxlError::OutOfDeviceMemory {
                            requested: 0,
                            available: 0,
                        });
                    }
                    st.bursts.push(Burst {
                        op,
                        remaining: burst,
                        oom: true,
                        port: trigger.port,
                    });
                }
            }
        }

        // 4. Seeded plan probabilities. Exactly one RNG draw per
        // probability per op, so the stream is a pure function of the op
        // sequence.
        if let Some(plan) = st.plan {
            let (transient_p, poison_p) = match op {
                DeviceOp::Read => (plan.transient_per_read, plan.poison_per_read),
                DeviceOp::Write => (plan.transient_per_write, 0.0),
                DeviceOp::Alloc | DeviceOp::Free => (0.0, 0.0),
            };
            let (transient_hit, poison_hit) = {
                // cxl-lint: allow(device-unwrap): constructor invariant — `new` always pairs a plan with its derived rng
                let rng = st.rng.as_mut().expect("a plan always carries an rng");
                (
                    transient_p > 0.0 && rng.gen_f64_unit() < transient_p,
                    poison_p > 0.0 && rng.gen_f64_unit() < poison_p,
                )
            };
            if transient_hit {
                st.stats.transients += 1;
                record(st, op, index, page);
                return Some(CxlError::Transient { op: op.name() });
            }
            if poison_hit {
                if let Some(p) = page {
                    if st.poisoned.insert(p) {
                        st.stats.poisons += 1;
                    }
                    record(st, op, index, page);
                    return Some(CxlError::Poisoned(p));
                }
            }
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use cxl_mem::{CxlDevice, PageData};

    #[test]
    fn scheduled_transient_burst_fails_exact_ops() {
        let d = CxlDevice::new(16);
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        let inj = Arc::new(Injector::from_schedule(
            FaultSchedule::new().transient_after(DeviceOp::Read, 1, 2),
        ));
        inj.arm(&d);
        assert!(d.read_page(p, NodeId(0)).is_ok()); // read 0
        assert!(d.read_page(p, NodeId(0)).is_err()); // read 1 (trigger)
        assert!(d.read_page(p, NodeId(0)).is_err()); // read 2 (burst)
        assert!(d.read_page(p, NodeId(0)).is_ok()); // read 3
        assert_eq!(inj.stats().transients, 2);
        let log = inj.fault_log();
        assert_eq!(log.len(), 2);
        assert_eq!((log[0].op, log[0].index), (DeviceOp::Read, 1));
        assert_eq!((log[1].op, log[1].index), (DeviceOp::Read, 2));
    }

    #[test]
    fn poison_is_permanent_and_hits_writes_too() {
        let d = CxlDevice::new(16);
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        let inj = Arc::new(Injector::from_schedule(
            FaultSchedule::new().poison_after(DeviceOp::Read, 0),
        ));
        inj.arm(&d);
        assert_eq!(
            d.read_page(p, NodeId(0)).unwrap_err(),
            CxlError::Poisoned(p)
        );
        assert_eq!(
            d.read_page(p, NodeId(0)).unwrap_err(),
            CxlError::Poisoned(p)
        );
        assert_eq!(
            d.write_page(p, PageData::pattern(1), NodeId(0))
                .unwrap_err(),
            CxlError::Poisoned(p)
        );
        let s = inj.stats();
        assert_eq!((s.poisons, s.poison_hits), (1, 2));
    }

    #[test]
    fn alloc_exhaustion_fires_on_schedule() {
        let d = CxlDevice::new(16);
        let r = d.create_region("r");
        let inj = Arc::new(Injector::from_schedule(
            FaultSchedule::new().alloc_exhausted_after(1, 1),
        ));
        inj.arm(&d);
        assert!(d.alloc_page(r).is_ok());
        assert!(matches!(
            d.alloc_page(r).unwrap_err(),
            CxlError::OutOfDeviceMemory { .. }
        ));
        assert!(d.alloc_page(r).is_ok());
        assert_eq!(inj.stats().alloc_failures, 1);
    }

    #[test]
    fn port_targeted_burst_only_fails_traffic_on_its_port() {
        // 8 shards of 8 pages behind 4 ports: shard i → port i % 4, so
        // page 0 rides port 0 and page 8 (shard 1) rides port 1.
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let on_port = d.alloc_page(r).unwrap(); // shard 0 → port 0
        let off_port = CxlPageId(8); // shard 1 → port 1
        let off_port = {
            // Land a page in shard 1 via striped allocation.
            let pages = d.alloc_batch_striped(r, 2, 2).unwrap();
            assert_eq!(
                pages[1].0 / d.pages_per_shard(),
                1,
                "second stripe lands in shard 1"
            );
            let _ = off_port;
            pages[1]
        };
        let inj = Arc::new(Injector::from_schedule(
            FaultSchedule::new().transient_after_on_port(DeviceOp::Read, 0, 2, 0),
        ));
        inj.arm_with_ports(&d, 4);

        // The trigger arms on read 0 — which rides port 1, so it is NOT
        // failed and the burst stays fully pending.
        assert!(d.read_page(off_port, NodeId(0)).is_ok());
        // Port-0 traffic now burns the burst...
        assert!(d.read_page(on_port, NodeId(0)).is_err());
        // ...port-1 traffic in between is untouched and consumes nothing...
        assert!(d.read_page(off_port, NodeId(0)).is_ok());
        assert!(d.read_page(on_port, NodeId(0)).is_err());
        // ...and once the burst is spent, port 0 recovers too.
        assert!(d.read_page(on_port, NodeId(0)).is_ok());
        assert_eq!(inj.stats().transients, 2);
    }

    #[test]
    fn port_targeted_burst_without_geometry_never_matches() {
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        let inj = Arc::new(Injector::from_schedule(
            FaultSchedule::new().transient_after_on_port(DeviceOp::Read, 0, 4, 0),
        ));
        inj.arm(&d); // no geometry
        for _ in 0..8 {
            assert!(d.read_page(p, NodeId(0)).is_ok());
        }
        assert_eq!(inj.stats().transients, 0);
    }

    #[test]
    fn untargeted_schedule_is_identical_with_geometry_set() {
        // Setting geometry must not perturb `port: None` triggers — the
        // single-device bit-identity contract.
        let run = |with_geometry: bool| {
            let d = CxlDevice::new(16);
            let r = d.create_region("r");
            let p = d.alloc_page(r).unwrap();
            let inj = Arc::new(Injector::from_schedule(
                FaultSchedule::new().transient_after(DeviceOp::Read, 1, 2),
            ));
            if with_geometry {
                inj.arm_with_ports(&d, 8);
            } else {
                inj.arm(&d);
            }
            let outcomes: Vec<bool> = (0..6).map(|_| d.read_page(p, NodeId(0)).is_ok()).collect();
            (outcomes, inj.fault_log())
        };
        assert_eq!(run(false), run(true));
    }

    fn plan_log(seed: u64) -> Vec<FaultRecord> {
        let d = CxlDevice::new(64);
        let r = d.create_region("r");
        let pages = d.alloc_pages(r, 8).unwrap();
        let inj = Arc::new(Injector::from_plan(
            FaultPlan::new(seed).with_transient_rate(0.2),
        ));
        inj.arm(&d);
        for i in 0..200u64 {
            let _ = d.read_page(pages[(i % 8) as usize], NodeId(0));
        }
        inj.fault_log()
    }

    #[test]
    fn plan_faults_are_seed_deterministic_and_seed_sensitive() {
        assert_eq!(plan_log(7), plan_log(7));
        assert_ne!(plan_log(7), plan_log(8), "seed moves the faults");
        assert!(!plan_log(7).is_empty(), "0.2 over 200 reads fires");
    }
}
