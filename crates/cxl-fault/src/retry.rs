//! Bounded exponential backoff for transient device errors.
//!
//! Backoff is *virtual* time: [`with_backoff`] only accumulates the
//! delay it would have slept in the returned [`RetryReport`]; callers
//! charge it to their node's `SimClock`, so retry costs show up in every
//! latency report instead of silently vanishing.

use cxl_mem::CxlError;
use simclock::SimDuration;

/// Retry policy: at most `max_attempts` tries with exponentially growing
/// per-retry delays `base * multiplier^k`, capped at `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Multiplier applied to the delay after every retry.
    pub multiplier: u32,
    /// Upper bound on any single retry delay.
    pub cap: SimDuration,
}

impl Default for BackoffPolicy {
    /// 4 attempts, 2 µs → 8 µs → 32 µs delays, capped at 1 ms —
    /// calibrated to the CXL link-retry scale, not to wall-clock I/O.
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 4,
            base: SimDuration::from_micros(2),
            multiplier: 4,
            cap: SimDuration::from_millis(1),
        }
    }
}

/// What a [`with_backoff`] run did, whether or not it succeeded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryReport {
    /// Attempts made (1 for a first-try success).
    pub attempts: u32,
    /// Retries performed (`attempts - 1`).
    pub retries: u32,
    /// Total virtual backoff delay to charge to the clock.
    pub backoff: SimDuration,
}

/// Runs `op`, retrying transient errors (per
/// [`CxlError::is_transient`]) with bounded exponential backoff.
///
/// Returns the final result — the last transient error if every attempt
/// failed, or the first non-transient error immediately — plus a
/// [`RetryReport`] of attempts made and virtual delay accrued. The
/// caller decides how to type the give-up error and *must* charge
/// `report.backoff` to its virtual clock.
pub fn with_backoff<T>(
    policy: &BackoffPolicy,
    mut op: impl FnMut() -> Result<T, CxlError>,
) -> (Result<T, CxlError>, RetryReport) {
    let mut report = RetryReport::default();
    let mut delay = policy.base;
    let attempts = policy.max_attempts.max(1);
    loop {
        report.attempts += 1;
        match op() {
            Ok(v) => return (Ok(v), report),
            Err(e) if e.is_transient() && report.attempts < attempts => {
                report.retries += 1;
                let step = if delay > policy.cap {
                    policy.cap
                } else {
                    delay
                };
                report.backoff = report.backoff.saturating_add(step);
                delay = SimDuration::from_nanos(
                    delay
                        .as_nanos()
                        .saturating_mul(u64::from(policy.multiplier)),
                );
            }
            Err(e) => return (Err(e), report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_mem::CxlPageId;

    #[test]
    fn first_try_success_costs_nothing() {
        let (res, rep) = with_backoff(&BackoffPolicy::default(), || Ok::<_, CxlError>(42));
        assert_eq!(res.unwrap(), 42);
        assert_eq!(rep.attempts, 1);
        assert_eq!(rep.retries, 0);
        assert_eq!(rep.backoff, SimDuration::ZERO);
    }

    #[test]
    fn transient_errors_are_retried_with_growing_backoff() {
        let mut fails = 2;
        let (res, rep) = with_backoff(&BackoffPolicy::default(), || {
            if fails > 0 {
                fails -= 1;
                Err(CxlError::Transient { op: "read" })
            } else {
                Ok(7)
            }
        });
        assert_eq!(res.unwrap(), 7);
        assert_eq!(rep.attempts, 3);
        assert_eq!(rep.retries, 2);
        // 2 µs + 8 µs.
        assert_eq!(rep.backoff, SimDuration::from_micros(10));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut calls = 0;
        let (res, rep) = with_backoff(&BackoffPolicy::default(), || {
            calls += 1;
            Err::<(), _>(CxlError::Transient { op: "write" })
        });
        assert!(res.unwrap_err().is_transient());
        assert_eq!(calls, 4);
        assert_eq!(rep.attempts, 4);
        // 2 + 8 + 32 µs charged; the final failure adds no sleep.
        assert_eq!(rep.backoff, SimDuration::from_micros(42));
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let mut calls = 0;
        let (res, rep) = with_backoff(&BackoffPolicy::default(), || {
            calls += 1;
            Err::<(), _>(CxlError::Poisoned(CxlPageId(3)))
        });
        assert_eq!(res.unwrap_err(), CxlError::Poisoned(CxlPageId(3)));
        assert_eq!((calls, rep.attempts, rep.retries), (1, 1, 0));
        assert_eq!(rep.backoff, SimDuration::ZERO);
    }

    #[test]
    fn per_retry_delay_is_capped() {
        let policy = BackoffPolicy {
            max_attempts: 10,
            base: SimDuration::from_micros(400),
            multiplier: 4,
            cap: SimDuration::from_millis(1),
        };
        let (_, rep) = with_backoff(&policy, || Err::<(), _>(CxlError::Transient { op: "read" }));
        // 400 µs + 1 ms * 8 (capped).
        assert_eq!(rep.backoff, SimDuration::from_micros(8400));
    }
}
