//! Crashpoint sweep infrastructure: deterministic "kill the coordinator
//! *here*" injection for exhaustive crash-recovery proofs.
//!
//! Durable subsystems (the `cxl-store` write-ahead journal) thread named
//! crash *sites* through their mutation paths via [`CrashpointHook`].
//! A sweep then runs the same deterministic scenario twice over:
//!
//! 1. **Record.** Run once with a [`Recorder`] installed to enumerate
//!    every site reached, in order. Each sequence position is one
//!    distinct injection point.
//! 2. **Kill + recover.** For each position `n`, re-run the scenario
//!    with a [`Killer`] that panics with a [`CrashpointKill`] payload at
//!    the `n`‑th site. The harness catches the unwind via
//!    [`run_to_crash`], drops every DRAM structure (the coordinator is
//!    dead), runs recovery from the surviving device, and asserts the
//!    recovered state is sound.
//!
//! The kill is a panic, not an error return, on purpose: a crash must
//! *not* execute the victim's error-handling/rollback code — exactly the
//! paths a `Result` would trigger. Unwinding out of the mutator models
//! the coordinator's DRAM vanishing mid-operation, leaving the device in
//! whatever half-written state the mutation had reached.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

use cxl_mem::lockdep::TrackedMutex;

/// A named crash site observer. Implementations must be cheap: sites sit
/// on store mutation paths and fire on every pass.
pub trait CrashpointHook: Send + Sync + fmt::Debug {
    /// Called each time execution reaches the named crash site.
    ///
    /// # Panics
    ///
    /// A [`Killer`] panics with a [`CrashpointKill`] payload to simulate
    /// coordinator death at the site; recording hooks never panic.
    fn reached(&self, site: &'static str);
}

/// Panic payload a [`Killer`] unwinds with — the simulated coordinator
/// death. [`run_to_crash`] catches exactly this payload (and only this
/// payload) and [`install_silent_kill_hook`] keeps it off stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashpointKill {
    /// The site that fired.
    pub site: &'static str,
    /// Global 0-based index of the `reached` call that fired (the
    /// sequence position from the recording pass).
    pub ordinal: u64,
}

impl fmt::Display for CrashpointKill {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crashpoint kill at {}#{}", self.site, self.ordinal)
    }
}

/// Recording hook: collects the full ordered sequence of sites a
/// scenario reaches, so the sweep knows every injection point.
#[derive(Debug)]
pub struct Recorder {
    sites: TrackedMutex<Vec<&'static str>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder {
            sites: TrackedMutex::new("cxl_fault.crashpoint", Vec::new()),
        }
    }

    /// The ordered site sequence observed so far. Position `n` in this
    /// sequence is the injection point `Killer::kill_at(n)` fires on.
    pub fn sequence(&self) -> Vec<&'static str> {
        self.sites.lock().clone()
    }

    /// Distinct site names observed, with hit counts (site-ordered).
    pub fn site_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for site in self.sites.lock().iter() {
            *counts.entry(*site).or_insert(0) += 1;
        }
        counts
    }
}

impl CrashpointHook for Recorder {
    fn reached(&self, site: &'static str) {
        self.sites.lock().push(site);
    }
}

/// Killing hook: panics with [`CrashpointKill`] at the `n`‑th `reached`
/// call (0-based, across all sites), then stays quiet — recovery code
/// re-armed with the same hook must not die again.
#[derive(Debug)]
pub struct Killer {
    target: u64,
    count: AtomicU64,
}

impl Killer {
    /// A killer that fires at sequence position `target`.
    pub fn kill_at(target: u64) -> Self {
        Killer {
            target,
            count: AtomicU64::new(0),
        }
    }

    /// How many sites have been reached so far.
    pub fn reached_count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl CrashpointHook for Killer {
    fn reached(&self, site: &'static str) {
        let n = self.count.fetch_add(1, Ordering::Relaxed);
        if n == self.target {
            std::panic::panic_any(CrashpointKill { site, ordinal: n });
        }
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// stderr backtrace for [`CrashpointKill`] payloads and forwards every
/// other panic to the previous hook unchanged. A sweep kills the
/// scenario hundreds of times; real panics must stay loud.
pub fn install_silent_kill_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashpointKill>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, catching a [`CrashpointKill`] unwind: `Ok(result)` if the
/// scenario ran to completion, `Err(kill)` if a [`Killer`] fired. Any
/// other panic is resumed — a sweep must never swallow a real failure.
///
/// Installs the silent kill hook as a side effect.
pub fn run_to_crash<R>(f: impl FnOnce() -> R) -> Result<R, CrashpointKill> {
    install_silent_kill_hook();
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<CrashpointKill>() {
            Ok(kill) => Err(*kill),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(hook: &dyn CrashpointHook) -> u32 {
        hook.reached("a");
        hook.reached("b");
        hook.reached("a");
        42
    }

    #[test]
    fn recorder_captures_the_ordered_sequence() {
        let rec = Recorder::new();
        assert_eq!(scenario(&rec), 42);
        assert_eq!(rec.sequence(), vec!["a", "b", "a"]);
        assert_eq!(rec.site_counts(), BTreeMap::from([("a", 2), ("b", 1)]));
    }

    #[test]
    fn killer_fires_at_each_position_and_run_to_crash_catches_it() {
        for n in 0..3u64 {
            let killer = Killer::kill_at(n);
            let err = run_to_crash(|| scenario(&killer)).unwrap_err();
            assert_eq!(err.ordinal, n);
            assert_eq!(err.site, ["a", "b", "a"][n as usize]);
        }
        // A target past the sequence end: the scenario completes.
        let killer = Killer::kill_at(99);
        assert_eq!(run_to_crash(|| scenario(&killer)), Ok(42));
        assert_eq!(killer.reached_count(), 3);
    }

    #[test]
    fn non_kill_panics_are_resumed() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = run_to_crash(|| panic!("real failure"));
        }));
        assert!(caught.is_err(), "a real panic must escape run_to_crash");
    }
}
