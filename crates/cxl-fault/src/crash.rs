//! Node-crash schedules.
//!
//! A crash is an *event in virtual time*: at `at`, the node loses all
//! local state (processes, frames, caches, queued work). Everything in
//! fabric-attached CXL memory survives — that asymmetry is exactly the
//! availability claim this simulation exists to measure. Schedules are
//! either explicit (tests pin crashes to the moment they want) or drawn
//! from a seed via [`CrashSchedule::from_plan`].

use simclock::{SimDuration, SimTime};

use rand::Rng;

/// One node crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// Index of the crashing node in the cluster's node list.
    pub node: usize,
    /// Virtual time of the crash.
    pub at: SimTime,
    /// If set, the node dies *mid-checkpoint*: it leaves a torn,
    /// uncommitted staging region on the device for the lease GC to
    /// find, exercising the two-phase-commit crash window.
    pub mid_checkpoint: bool,
}

/// An ordered queue of node crashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSchedule {
    /// Pending crashes, earliest first.
    events: Vec<NodeCrash>,
}

impl CrashSchedule {
    /// An empty schedule (no node ever crashes).
    pub fn new() -> Self {
        CrashSchedule::default()
    }

    /// Builds a schedule from explicit events (sorted by time, then node
    /// index, so iteration order never depends on construction order).
    pub fn from_events(mut events: Vec<NodeCrash>) -> Self {
        events.sort_by_key(|e| (e.at, e.node));
        CrashSchedule { events }
    }

    /// Draws `count` crashes deterministically from `seed` (derived with
    /// label `"cxl-fault.crashes"`). Crash times land in the middle 80%
    /// of `duration`; node 0 never crashes, so at least one node always
    /// survives to absorb failover; about half the crashes land
    /// mid-checkpoint.
    pub fn from_plan(seed: u64, nodes: usize, duration: SimDuration, count: usize) -> Self {
        assert!(nodes >= 2, "need a surviving node to fail over to");
        let mut rng = simclock::rng::derived(seed, "cxl-fault.crashes");
        let mut events = Vec::with_capacity(count);
        let lo = duration.as_nanos() / 10;
        let hi = duration.as_nanos() - lo;
        for _ in 0..count {
            let at = SimTime::ZERO + SimDuration::from_nanos(rng.gen_range(lo..hi.max(lo + 1)));
            let node = rng.gen_range(1..nodes);
            let mid_checkpoint = rng.gen::<bool>();
            events.push(NodeCrash {
                node,
                at,
                mid_checkpoint,
            });
        }
        CrashSchedule::from_events(events)
    }

    /// Removes and returns every crash due at or before `now`.
    pub fn due(&mut self, now: SimTime) -> Vec<NodeCrash> {
        let split = self.events.partition_point(|e| e.at <= now);
        self.events.drain(..split).collect()
    }

    /// Crashes still pending.
    pub fn remaining(&self) -> &[NodeCrash] {
        &self.events
    }

    /// Whether any crash is still pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Pending crash count.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_drains_in_time_order() {
        let mut s = CrashSchedule::from_events(vec![
            NodeCrash {
                node: 2,
                at: SimTime::ZERO + SimDuration::from_secs(5),
                mid_checkpoint: false,
            },
            NodeCrash {
                node: 1,
                at: SimTime::ZERO + SimDuration::from_secs(2),
                mid_checkpoint: true,
            },
        ]);
        assert_eq!(s.len(), 2);
        let first = s.due(SimTime::ZERO + SimDuration::from_secs(3));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].node, 1);
        assert!(s.due(SimTime::ZERO + SimDuration::from_secs(3)).is_empty());
        let second = s.due(SimTime::ZERO + SimDuration::from_secs(9));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].node, 2);
        assert!(s.is_empty());
    }

    #[test]
    fn planned_crashes_are_seed_deterministic_and_spare_node_zero() {
        let dur = SimDuration::from_secs(10);
        let a = CrashSchedule::from_plan(7, 4, dur, 3);
        let b = CrashSchedule::from_plan(7, 4, dur, 3);
        assert_eq!(a, b);
        let c = CrashSchedule::from_plan(8, 4, dur, 3);
        assert_ne!(a, c, "seed moves the crashes");
        for e in a.remaining() {
            assert!(e.node != 0 && e.node < 4);
            assert!(e.at > SimTime::ZERO);
            assert!(e.at.duration_since(SimTime::ZERO) < dur);
        }
    }
}
