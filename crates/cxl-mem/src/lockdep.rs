//! Lockdep-style lock-order tracking for the simulated memory system.
//!
//! Rust's ownership rules prevent data races but not *deadlocks*: two
//! threads taking the same pair of locks in opposite orders will park
//! forever, and nothing in the type system says so. The kernel solves
//! this with lockdep — every acquisition records an edge from each
//! already-held lock *class* to the new one, and a cycle in that graph is
//! a potential deadlock even if the unlucky interleaving never ran.
//!
//! This module is the acquisition-recording half of that design; the DFS
//! cycle detection lives in `cxl-check` (which also converts cycles into
//! typed `Violation`s). Locks are tracked per *class* (a `&'static str`
//! name given at construction), not per instance, exactly like lockdep:
//! the order `device → fs` observed on any instances forbids `fs →
//! device` on any others.
//!
//! The wrappers [`TrackedMutex`] and [`TrackedRwLock`] mirror the
//! `parking_lot` API. Recording is compiled in only under the `check`
//! cargo feature; without it the wrappers are zero-cost pass-throughs, so
//! production builds pay nothing.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "check")]
mod recording {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// Global edge set: `(held, acquired)` class pairs ever observed.
    /// Guarded by a plain `std` mutex so the tracker never tracks itself.
    static EDGES: OnceLock<StdMutex<BTreeSet<(&'static str, &'static str)>>> = OnceLock::new();

    thread_local! {
        /// Classes currently held by this thread, in acquisition order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    fn edges() -> &'static StdMutex<BTreeSet<(&'static str, &'static str)>> {
        EDGES.get_or_init(|| StdMutex::new(BTreeSet::new()))
    }

    pub(super) fn note_acquire(class: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !held.is_empty() {
                let mut edges = edges()
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for &prev in held.iter() {
                    edges.insert((prev, class));
                }
            }
            held.push(class);
        });
    }

    pub(super) fn note_release(class: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&c| c == class) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn snapshot() -> Vec<(&'static str, &'static str)> {
        edges()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    pub(super) fn reset() {
        edges()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(feature = "check")]
fn note_acquire(class: &'static str) {
    recording::note_acquire(class);
}

#[cfg(not(feature = "check"))]
fn note_acquire(_class: &'static str) {}

#[cfg(feature = "check")]
fn note_release(class: &'static str) {
    recording::note_release(class);
}

#[cfg(not(feature = "check"))]
fn note_release(_class: &'static str) {}

/// Returns every `(held, acquired)` lock-class edge observed so far.
///
/// Empty unless the `check` feature is enabled. Feed this to
/// `cxl_check::lock_order_cycles` for deadlock-potential detection.
pub fn lock_order_edges() -> Vec<(&'static str, &'static str)> {
    #[cfg(feature = "check")]
    {
        recording::snapshot()
    }
    #[cfg(not(feature = "check"))]
    {
        Vec::new()
    }
}

/// Clears the recorded lock-order graph (tests isolate scenarios with
/// this; note the graph is process-global).
pub fn reset_lock_graph() {
    #[cfg(feature = "check")]
    recording::reset();
}

/// A [`parking_lot::Mutex`] that records lock-order edges under the
/// `check` feature.
#[derive(Debug)]
pub struct TrackedMutex<T> {
    class: &'static str,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Creates a mutex in lock class `class`.
    pub const fn new(class: &'static str, value: T) -> Self {
        TrackedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// The lock class this instance records edges under.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Acquires the mutex, recording an edge from every lock class this
    /// thread already holds.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        note_acquire(self.class);
        TrackedMutexGuard {
            class: self.class,
            inner: self.inner.lock(),
        }
    }
}

/// Guard returned by [`TrackedMutex::lock`].
pub struct TrackedMutexGuard<'a, T> {
    class: &'static str,
    inner: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.class);
    }
}

/// A [`parking_lot::RwLock`] that records lock-order edges under the
/// `check` feature. Read and write acquisitions record the same class:
/// `parking_lot` read locks still deadlock against writers in a cycle.
#[derive(Debug)]
pub struct TrackedRwLock<T> {
    class: &'static str,
    inner: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Creates a reader-writer lock in lock class `class`.
    pub const fn new(class: &'static str, value: T) -> Self {
        TrackedRwLock {
            class,
            inner: RwLock::new(value),
        }
    }

    /// The lock class this instance records edges under.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// Acquires a shared read lock, recording lock-order edges.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        note_acquire(self.class);
        TrackedReadGuard {
            class: self.class,
            inner: self.inner.read(),
        }
    }

    /// Acquires an exclusive write lock, recording lock-order edges.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        note_acquire(self.class);
        TrackedWriteGuard {
            class: self.class,
            inner: self.inner.write(),
        }
    }
}

/// Guard returned by [`TrackedRwLock::read`].
pub struct TrackedReadGuard<'a, T> {
    class: &'static str,
    inner: RwLockReadGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.class);
    }
}

/// Guard returned by [`TrackedRwLock::write`].
pub struct TrackedWriteGuard<'a, T> {
    class: &'static str,
    inner: RwLockWriteGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrappers_behave_like_plain_locks() {
        let m = TrackedMutex::new("test.m", 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = TrackedRwLock::new("test.rw", vec![1]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
    }

    #[cfg(feature = "check")]
    #[test]
    fn nested_acquisitions_record_edges() {
        reset_lock_graph();
        let a = TrackedMutex::new("test.edge_a", ());
        let b = TrackedMutex::new("test.edge_b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(lock_order_edges().contains(&("test.edge_a", "test.edge_b")));
    }
}
