//! Fault-injection hook point for the device.
//!
//! The device itself never decides to fail: a [`FaultHook`] installed via
//! [`CxlDevice::set_fault_hook`](crate::CxlDevice::set_fault_hook) is
//! consulted before every data-path operation and may veto it with a
//! [`CxlError`]. With no hook installed the check is a single relaxed
//! atomic load (zero-cost when off). The deterministic injector lives in
//! `crates/cxl-fault`; keeping only the trait here keeps `cxl-mem` free of
//! any policy or RNG dependency.

use crate::{CxlError, CxlPageId, NodeId};

/// Device data-path operations observable by a fault hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceOp {
    /// A read (`read`/`read_page`).
    Read,
    /// A write (`write`/`write_page`).
    Write,
    /// A page allocation (`alloc_page`/`alloc_pages`/`alloc_bytes`).
    Alloc,
    /// A page free (`free_page`).
    Free,
}

impl DeviceOp {
    /// Short lowercase name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DeviceOp::Read => "read",
            DeviceOp::Write => "write",
            DeviceOp::Alloc => "alloc",
            DeviceOp::Free => "free",
        }
    }
}

/// A fault-injection hook consulted before every device operation.
///
/// Returning `Some(err)` fails the operation with that error before it
/// touches device state; `None` lets it proceed. Implementations must be
/// deterministic given the sequence of calls — the simulator's
/// reproducibility guarantee extends to injected faults.
pub trait FaultHook: Send + Sync + std::fmt::Debug {
    /// Decide the fate of one operation. `page` is `None` for
    /// allocations (no page exists yet).
    fn inject(&self, op: DeviceOp, page: Option<CxlPageId>, node: NodeId) -> Option<CxlError>;
}
