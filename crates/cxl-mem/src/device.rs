//! The shared CXL memory device.
//!
//! # Sharding
//!
//! The page pool is partitioned into up to [`MAX_SHARDS`] *shards* by
//! contiguous page-offset range: shard `i` owns global page ids
//! `[i * pages_per_shard, (i+1) * pages_per_shard)`. Each shard keeps its
//! own slot slab, recycled-slot free list, and traffic counters behind its
//! own [`TrackedRwLock`], so data-path reads and writes to different
//! offset ranges never contend — and lockdep still sees every
//! acquisition, per shard class.
//!
//! The region table (and with it the device-wide `used_pages` counter)
//! lives behind a separate lock that doubles as the allocation
//! serialization point. The lock order is strictly
//! `cxl_mem.device.regions` → `cxl_mem.device.shardNN` (ascending shard
//! index, one shard at a time); data-path page reads/writes take only the
//! owning shard's lock.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::fabric::{FabricAttachment, FabricLink};
use crate::injection::{DeviceOp, FaultHook};
use crate::lockdep::TrackedRwLock;
use simclock::{SimDuration, SimTime};

use crate::{CxlError, CxlPageId, NodeId, PageData, RegionId, PAGE_SIZE};

/// Telemetry layer name for device metrics (`cxl_mem.reads{node=}` …).
/// Counters mirror [`CxlDeviceStats`] exactly — same increment sites,
/// same units — so telemetry can be reconciled against device stats as a
/// second witness. Lock order: telemetry is recorded while a device
/// lock is held and never calls back into the device.
const TELEMETRY_LAYER: &str = "cxl_mem";

/// Upper bound on the shard count. Lockdep tracks lock *classes* as
/// `&'static str` names, so every possible shard needs a pre-declared
/// class; sixteen is plenty for a simulated device.
pub const MAX_SHARDS: usize = 16;

/// Default shard count used by [`CxlDevice::new`] /
/// [`CxlDevice::with_capacity_mib`].
pub const DEFAULT_SHARDS: usize = 8;

/// One lockdep class per possible shard (see [`MAX_SHARDS`]).
static SHARD_CLASSES: [&str; MAX_SHARDS] = [
    "cxl_mem.device.shard00",
    "cxl_mem.device.shard01",
    "cxl_mem.device.shard02",
    "cxl_mem.device.shard03",
    "cxl_mem.device.shard04",
    "cxl_mem.device.shard05",
    "cxl_mem.device.shard06",
    "cxl_mem.device.shard07",
    "cxl_mem.device.shard08",
    "cxl_mem.device.shard09",
    "cxl_mem.device.shard10",
    "cxl_mem.device.shard11",
    "cxl_mem.device.shard12",
    "cxl_mem.device.shard13",
    "cxl_mem.device.shard14",
    "cxl_mem.device.shard15",
];

/// The fabric-attached CXL memory device, shared by all nodes.
///
/// Thread-safe: all methods take `&self`; wrap the device in an
/// [`std::sync::Arc`] and hand one handle to each simulated node. Every
/// access records per-node counters so experiments can report locality and
/// traffic; latency is charged by callers via
/// [`simclock::LatencyModel`] (scalar ops via the per-page costs, the
/// `*_batch`/`*_pages` ops via the batched `cxl_batch_read` /
/// `cxl_batch_write` costs).
///
/// # Example
///
/// ```
/// use cxl_mem::{CxlDevice, NodeId, PageData};
///
/// # fn main() -> Result<(), cxl_mem::CxlError> {
/// let dev = CxlDevice::with_capacity_mib(16);
/// let region = dev.create_region("ckpt");
/// let pages = dev.alloc_batch(region, 4)?;
/// let writes: Vec<_> = pages.iter().map(|&p| (p, PageData::pattern(1))).collect();
/// dev.write_pages(&writes, NodeId(0))?;
/// assert_eq!(dev.read_page(pages[0], NodeId(1))?, PageData::pattern(1));
/// assert_eq!(dev.used_pages(), 4);
/// dev.destroy_region(region)?;
/// assert_eq!(dev.used_pages(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CxlDevice {
    capacity_pages: u64,
    /// Pages owned by each shard except possibly the last (offset-range
    /// partition stride); always ≥ 1 when any shard exists.
    pages_per_shard: u64,
    shards: Vec<PageShard>,
    /// Region table plus the device-wide `used_pages` counter. Taking
    /// this write lock is what serializes allocation, freeing and region
    /// destruction; page liveness cannot change while it is held.
    regions: TrackedRwLock<RegionTable>,
    /// Fault-injection hook (see [`crate::FaultHook`]). Kept outside the
    /// state locks: the hook fires *before* state is touched, and an armed
    /// flag keeps the unhooked fast path to one relaxed atomic load.
    hook: TrackedRwLock<Option<Arc<dyn FaultHook>>>,
    hook_armed: AtomicBool,
    /// Fabric attachment (see [`crate::FabricLink`]). Same structure as
    /// the fault hook: charged *after* a batched transfer's state
    /// changes, with an armed flag keeping the unattached fast path to
    /// one relaxed atomic load and a delay of exactly zero.
    fabric: TrackedRwLock<Option<FabricAttachment>>,
    fabric_armed: AtomicBool,
}

/// One offset-range shard of the page pool.
#[derive(Debug)]
struct PageShard {
    /// First global page id owned by this shard.
    base: u64,
    /// Pages owned by this shard.
    capacity: u64,
    state: TrackedRwLock<ShardState>,
}

#[derive(Debug, Default)]
struct ShardState {
    /// Slab of page slots, indexed by *shard-local* offset; `None` marks
    /// a freed slot awaiting reuse.
    slots: Vec<Option<PageSlot>>,
    /// Recycled shard-local slot indexes (LIFO).
    free: Vec<u64>,
    used: u64,
    /// Per-shard traffic counters; [`CxlDevice::stats`] merges them, so
    /// device-wide totals stay increment-exact.
    stats: CxlDeviceStats,
}

#[derive(Debug, Default)]
struct RegionTable {
    regions: BTreeMap<RegionId, Region>,
    next_region: u64,
    /// Device-wide allocated-page count. Mutated only under this table's
    /// write lock, which makes the capacity check + shard sweep in
    /// [`CxlDevice::alloc_batch`] atomic.
    used_pages: u64,
}

#[derive(Debug)]
struct PageSlot {
    data: PageData,
    region: RegionId,
}

#[derive(Debug)]
struct Region {
    name: String,
    pages: u64,
    /// Two-phase commit state: regions start committed unless created via
    /// the staged API; an uncommitted region is a checkpoint in flight and
    /// must never be restored from.
    committed: bool,
    /// Node that owns the staging region (for lease-based orphan GC).
    owner: Option<NodeId>,
    /// Owner-supplied epoch (checkpoint sequence number).
    epoch: u64,
    /// What the region holds (see [`RegionKind`]); recovery scans use
    /// this to find metadata regions without parsing names.
    kind: RegionKind,
}

/// What a region holds. Most regions carry checkpoint page *data*;
/// [`RegionKind::Metadata`] marks device-resident bookkeeping (e.g. the
/// store's write-ahead journal) that crash recovery must locate before
/// any catalog exists to name it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegionKind {
    /// Checkpoint page data (the default for every pre-existing API).
    #[default]
    Data,
    /// Device-resident bookkeeping: journals, catalogs, recovery state.
    Metadata,
}

/// Per-node traffic counters for the device.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CxlDeviceStats {
    /// Read operations per node.
    pub reads: BTreeMap<NodeId, u64>,
    /// Written bytes per node.
    pub bytes_written: BTreeMap<NodeId, u64>,
    /// Read bytes per node.
    pub bytes_read: BTreeMap<NodeId, u64>,
    /// Write operations per node.
    pub writes: BTreeMap<NodeId, u64>,
}

impl CxlDeviceStats {
    /// Total read operations across all nodes.
    pub fn total_reads(&self) -> u64 {
        self.reads.values().sum()
    }

    /// Total write operations across all nodes.
    pub fn total_writes(&self) -> u64 {
        self.writes.values().sum()
    }

    /// Adds every counter from `other` into `self` (used to fold
    /// per-shard counters into the device-wide view).
    pub fn merge(&mut self, other: &CxlDeviceStats) {
        for (node, v) in &other.reads {
            *self.reads.entry(*node).or_insert(0) += v;
        }
        for (node, v) in &other.bytes_written {
            *self.bytes_written.entry(*node).or_insert(0) += v;
        }
        for (node, v) in &other.bytes_read {
            *self.bytes_read.entry(*node).or_insert(0) += v;
        }
        for (node, v) in &other.writes {
            *self.writes.entry(*node).or_insert(0) += v;
        }
    }
}

/// Usage summary for one region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionUsage {
    /// Region name supplied at creation.
    pub name: String,
    /// Live pages in the region.
    pub pages: u64,
    /// Live bytes (pages × 4 KiB).
    pub bytes: u64,
    /// What the region holds (data vs. device-resident metadata).
    pub kind: RegionKind,
}

/// Usage summary for one page-pool shard, as reported by
/// [`CxlDevice::shard_usage`] for the `cxl-check` shard-accounting audit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardUsage {
    /// Shard index (ascending offset ranges).
    pub index: usize,
    /// First global page id owned by the shard.
    pub base_page: u64,
    /// Pages owned by the shard.
    pub capacity_pages: u64,
    /// Pages currently allocated in the shard.
    pub used_pages: u64,
}

/// Summary of one *uncommitted* (staging) region, as reported by
/// [`CxlDevice::staging_regions`] for lease-based orphan reclamation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagingRegion {
    /// The region id.
    pub region: RegionId,
    /// Region name supplied at creation.
    pub name: String,
    /// Node that was building the checkpoint.
    pub owner: NodeId,
    /// Owner-supplied epoch (checkpoint sequence number).
    pub epoch: u64,
    /// Pages currently allocated into the region.
    pub pages: u64,
}

impl CxlDevice {
    /// Creates a device with a capacity given in pages and the default
    /// shard count ([`DEFAULT_SHARDS`]).
    pub fn new(capacity_pages: u64) -> Self {
        CxlDevice::with_shards(capacity_pages, DEFAULT_SHARDS)
    }

    /// Creates a device with an explicit shard count (clamped to
    /// `1..=`[`MAX_SHARDS`]). Shards partition the page-id space into
    /// contiguous offset ranges of `capacity_pages.div_ceil(shards)`
    /// pages; a small device may end up with fewer (non-empty) shards
    /// than requested.
    pub fn with_shards(capacity_pages: u64, shards: usize) -> Self {
        let requested = shards.clamp(1, MAX_SHARDS) as u64;
        let pages_per_shard = capacity_pages.div_ceil(requested).max(1);
        let count = capacity_pages.div_ceil(pages_per_shard);
        let shards = (0..count)
            .map(|i| {
                let base = i * pages_per_shard;
                PageShard {
                    base,
                    capacity: pages_per_shard.min(capacity_pages - base),
                    state: TrackedRwLock::new(SHARD_CLASSES[i as usize], ShardState::default()),
                }
            })
            .collect();
        CxlDevice {
            capacity_pages,
            pages_per_shard,
            shards,
            regions: TrackedRwLock::new("cxl_mem.device.regions", RegionTable::default()),
            hook: TrackedRwLock::new("cxl_mem.device.hook", None),
            hook_armed: AtomicBool::new(false),
            fabric: TrackedRwLock::new("cxl_mem.device.fabric", None),
            fabric_armed: AtomicBool::new(false),
        }
    }

    /// Installs (or, with `None`, removes) the fault-injection hook.
    ///
    /// The hook is consulted before every read, write, allocation and
    /// free; see [`FaultHook`]. With no hook installed the data path pays
    /// one relaxed atomic load.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        let mut slot = self.hook.write();
        self.hook_armed.store(hook.is_some(), Ordering::Release);
        *slot = hook;
    }

    /// Consults the fault hook (if armed) about one operation.
    fn injected(&self, op: DeviceOp, page: Option<CxlPageId>, node: NodeId) -> Option<CxlError> {
        if !self.hook_armed.load(Ordering::Relaxed) {
            return None;
        }
        let hook = self.hook.read().clone()?;
        hook.inject(op, page, node)
    }

    /// Attaches this device to a fabric as device `device_index`, or
    /// detaches it with `None`.
    ///
    /// Once attached, callers that charge batched transfer costs should
    /// also charge [`CxlDevice::fabric_charge`]; with no fabric the
    /// charge is a single relaxed atomic load returning zero delay, so
    /// the default single-device configuration is bit-identical to the
    /// pre-fabric simulation.
    pub fn attach_fabric(&self, link: Option<(Arc<dyn FabricLink>, u32)>) {
        let mut slot = self.fabric.write();
        self.fabric_armed.store(link.is_some(), Ordering::Release);
        *slot = link.map(|(link, device_index)| FabricAttachment { link, device_index });
    }

    /// Whether a fabric is attached (one relaxed atomic load).
    pub fn fabric_armed(&self) -> bool {
        self.fabric_armed.load(Ordering::Relaxed)
    }

    /// Charges one batched transfer of `shard_pages[i]` pages through
    /// each shard `i` to the attached fabric at virtual time `now`,
    /// returning the queueing delay it suffered. Exactly zero when no
    /// fabric is attached or the batch is empty.
    pub fn fabric_charge(&self, now: SimTime, shard_pages: &[u64]) -> SimDuration {
        if !self.fabric_armed.load(Ordering::Relaxed) {
            return SimDuration::ZERO;
        }
        if shard_pages.iter().all(|&n| n == 0) {
            return SimDuration::ZERO;
        }
        let Some(attachment) = self.fabric.read().clone() else {
            return SimDuration::ZERO;
        };
        let port_bytes: Vec<u64> = shard_pages.iter().map(|n| n * PAGE_SIZE).collect();
        attachment
            .link
            .charge_transfer(attachment.device_index, now, &port_bytes)
    }

    /// Charges a batched transfer of the given pages to the attached
    /// fabric (their [`CxlDevice::shard_partition`] grouped per shard).
    /// Exactly zero when no fabric is attached or `pages` is empty.
    pub fn fabric_charge_pages(&self, now: SimTime, pages: &[CxlPageId]) -> SimDuration {
        if !self.fabric_armed.load(Ordering::Relaxed) || pages.is_empty() {
            return SimDuration::ZERO;
        }
        self.fabric_charge(now, &self.shard_partition(pages))
    }

    /// Creates a device with a capacity given in MiB (the evaluation
    /// platform has a 16 GiB DIMM; tests use much smaller devices).
    pub fn with_capacity_mib(mib: u64) -> Self {
        CxlDevice::new(mib * 1024 * 1024 / PAGE_SIZE)
    }

    /// Total device capacity, in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Number of page-pool shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pages per shard (the offset-range partition stride). Page id `p`
    /// lives in shard `p / pages_per_shard()`; fabric tooling uses this
    /// to map pages onto switch ports without holding device locks.
    pub fn pages_per_shard(&self) -> u64 {
        self.pages_per_shard
    }

    /// Maps a global page id to `(shard index, shard-local index)`, or
    /// `None` if the id is outside the device.
    fn shard_of(&self, page: CxlPageId) -> Option<(usize, u64)> {
        if page.0 >= self.capacity_pages {
            return None;
        }
        let s = (page.0 / self.pages_per_shard) as usize;
        Some((s, page.0 - self.shards[s].base))
    }

    /// Currently allocated pages.
    pub fn used_pages(&self) -> u64 {
        self.regions.read().used_pages
    }

    /// Currently free pages.
    pub fn free_pages(&self) -> u64 {
        self.capacity_pages - self.used_pages()
    }

    /// Fraction of the device in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_pages == 0 {
            return 1.0;
        }
        self.used_pages() as f64 / self.capacity_pages as f64
    }

    /// Per-shard usage summary (the `used_pages` values sum to
    /// [`CxlDevice::used_pages`]; the `cxl-check` shard audit verifies
    /// exactly that). Taken under the region-table lock, so the snapshot
    /// is consistent.
    pub fn shard_usage(&self) -> Vec<ShardUsage> {
        let _pin = self.regions.read();
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardUsage {
                index,
                base_page: shard.base,
                capacity_pages: shard.capacity,
                used_pages: shard.state.read().used,
            })
            .collect()
    }

    /// Creates a new (empty) region.
    pub fn create_region(&self, name: &str) -> RegionId {
        self.create_region_inner(name, true, None, 0, RegionKind::Data)
    }

    /// Creates a new (empty, committed) *metadata* region — device-
    /// resident bookkeeping such as the store's write-ahead journal.
    /// Crash recovery locates these by [`RegionKind::Metadata`] via
    /// [`CxlDevice::regions`], before any catalog exists to name them.
    pub fn create_region_meta(&self, name: &str) -> RegionId {
        self.create_region_inner(name, true, None, 0, RegionKind::Metadata)
    }

    /// Creates a new *staging* region for a two-phase checkpoint commit:
    /// the region exists and accepts allocations/writes, but stays
    /// uncommitted — invisible to restore — until
    /// [`CxlDevice::commit_region`] atomically publishes it. `owner` and
    /// `epoch` identify the checkpointing node so lease-based GC can
    /// reclaim the region if that node dies mid-checkpoint.
    pub fn create_region_staged(&self, name: &str, owner: NodeId, epoch: u64) -> RegionId {
        self.create_region_inner(name, false, Some(owner), epoch, RegionKind::Data)
    }

    fn create_region_inner(
        &self,
        name: &str,
        committed: bool,
        owner: Option<NodeId>,
        epoch: u64,
        kind: RegionKind,
    ) -> RegionId {
        let mut rt = self.regions.write();
        let id = RegionId(rt.next_region);
        rt.next_region += 1;
        rt.regions.insert(
            id,
            Region {
                name: name.to_owned(),
                pages: 0,
                committed,
                owner,
                epoch,
                kind,
            },
        );
        id
    }

    /// Atomically publishes a staging region (phase two of the checkpoint
    /// commit). Idempotent on already-committed regions.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn commit_region(&self, region: RegionId) -> Result<(), CxlError> {
        let mut rt = self.regions.write();
        let r = rt
            .regions
            .get_mut(&region)
            .ok_or(CxlError::BadRegion(region))?;
        r.committed = true;
        Ok(())
    }

    /// Whether `region` has been committed (`None` if it does not exist).
    pub fn region_committed(&self, region: RegionId) -> Option<bool> {
        let rt = self.regions.read();
        rt.regions.get(&region).map(|r| r.committed)
    }

    /// Lists every *uncommitted* staging region, for orphan reclamation
    /// and the `cxl-check` staging audit.
    pub fn staging_regions(&self) -> Vec<StagingRegion> {
        let rt = self.regions.read();
        rt.regions
            .iter()
            .filter(|(_, r)| !r.committed)
            .map(|(id, r)| StagingRegion {
                region: *id,
                name: r.name.clone(),
                owner: r.owner.unwrap_or(NodeId(u32::MAX)),
                epoch: r.epoch,
                pages: r.pages,
            })
            .collect()
    }

    /// Allocates one zeroed page into `region`.
    ///
    /// # Errors
    ///
    /// [`CxlError::OutOfDeviceMemory`] if the device is full;
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn alloc_page(&self, region: RegionId) -> Result<CxlPageId, CxlError> {
        Ok(self.alloc_batch(region, 1)?[0])
    }

    /// Allocates `n` zeroed pages into `region`. Alias for
    /// [`CxlDevice::alloc_batch`], kept for the scalar-era callers.
    ///
    /// # Errors
    ///
    /// Same as [`CxlDevice::alloc_batch`].
    pub fn alloc_pages(&self, region: RegionId, n: u64) -> Result<Vec<CxlPageId>, CxlError> {
        self.alloc_batch(region, n)
    }

    /// Allocates `n` zeroed pages into `region` as one batch.
    ///
    /// All-or-nothing: on failure no pages are allocated. Shards are
    /// filled first-fit in ascending offset order, recycling freed slots
    /// (LIFO) before extending a shard's slab — which keeps page-id
    /// sequences identical to the pre-shard allocator for alloc-only
    /// workloads. The fault hook is consulted once per *non-empty*
    /// batch (exactly as the scalar-era `alloc_pages` consulted it once
    /// per call); a zero-page batch is a no-op — it cannot fault, costs
    /// nothing and touches no telemetry.
    ///
    /// # Errors
    ///
    /// [`CxlError::OutOfDeviceMemory`] if fewer than `n` pages are free;
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn alloc_batch(&self, region: RegionId, n: u64) -> Result<Vec<CxlPageId>, CxlError> {
        if n == 0 {
            // Still validate the region — an empty batch must be free,
            // not a way to smuggle a dangling region id past the table.
            if !self.regions.read().regions.contains_key(&region) {
                return Err(CxlError::BadRegion(region));
            }
            return Ok(Vec::new());
        }
        // Allocations are not attributed to a node at this layer; the
        // sentinel id keeps the hook signature uniform.
        if let Some(err) = self.injected(DeviceOp::Alloc, None, NodeId(u32::MAX)) {
            return Err(err);
        }
        let mut rt = self.regions.write();
        if !rt.regions.contains_key(&region) {
            return Err(CxlError::BadRegion(region));
        }
        let available = self.capacity_pages - rt.used_pages;
        if n > available {
            return Err(CxlError::OutOfDeviceMemory {
                requested: n,
                available,
            });
        }
        let mut out = Vec::with_capacity(n as usize);
        let mut remaining = n;
        for shard in &self.shards {
            if remaining == 0 {
                break;
            }
            remaining -= Self::fill_from_shard(shard, region, remaining, &mut out);
        }
        debug_assert_eq!(remaining, 0, "capacity check vs shard sweep drifted");
        rt.used_pages += n;
        if let Some(r) = rt.regions.get_mut(&region) {
            r.pages += n;
        }
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "pages_allocated", None, n);
        Ok(out)
    }

    /// Fills up to `want` zeroed pages from one shard into `out`,
    /// recycling freed slots (LIFO) before extending the slab; returns
    /// how many pages it produced (less than `want` only when the shard
    /// is full). The caller holds the region-table write lock, so page
    /// liveness is pinned across the per-shard lock acquisitions.
    fn fill_from_shard(
        shard: &PageShard,
        region: RegionId,
        want: u64,
        out: &mut Vec<CxlPageId>,
    ) -> u64 {
        let mut st = shard.state.write();
        let mut got = 0u64;
        while got < want {
            let local = if let Some(l) = st.free.pop() {
                st.slots[l as usize] = Some(PageSlot {
                    data: PageData::zeroed(),
                    region,
                });
                l
            } else if (st.slots.len() as u64) < shard.capacity {
                st.slots.push(Some(PageSlot {
                    data: PageData::zeroed(),
                    region,
                }));
                (st.slots.len() - 1) as u64
            } else {
                break;
            };
            st.used += 1;
            out.push(CxlPageId(shard.base + local));
            got += 1;
        }
        got
    }

    /// Allocates `n` zeroed pages into `region`, **striping** the batch
    /// across up to `streams` shards in balanced shares so a pipelined
    /// transfer has real per-bank work to overlap. First-fit allocation
    /// ([`CxlDevice::alloc_batch`]) packs small working sets entirely
    /// into shard 0, which would leave a multi-stream pipeline with one
    /// populated bank; checkpointing with `parallelism > 1` allocates
    /// through this path instead. `streams <= 1` (and `n == 0`)
    /// delegates to `alloc_batch`, byte-identical page ids included.
    ///
    /// Shares that do not fit their target shard (a full bank) fall back
    /// to a first-fit sweep over every shard, so the call succeeds
    /// whenever `alloc_batch` would — striping is a placement hint, not
    /// a capacity contract. All-or-nothing on failure, and the fault
    /// hook is consulted once per non-empty batch, exactly like
    /// `alloc_batch`.
    ///
    /// # Errors
    ///
    /// Same as [`CxlDevice::alloc_batch`].
    pub fn alloc_batch_striped(
        &self,
        region: RegionId,
        n: u64,
        streams: u32,
    ) -> Result<Vec<CxlPageId>, CxlError> {
        if streams <= 1 || n == 0 {
            return self.alloc_batch(region, n);
        }
        if let Some(err) = self.injected(DeviceOp::Alloc, None, NodeId(u32::MAX)) {
            return Err(err);
        }
        let mut rt = self.regions.write();
        if !rt.regions.contains_key(&region) {
            return Err(CxlError::BadRegion(region));
        }
        let available = self.capacity_pages - rt.used_pages;
        if n > available {
            return Err(CxlError::OutOfDeviceMemory {
                requested: n,
                available,
            });
        }
        let lanes = (streams as usize).min(self.shards.len()).max(1) as u64;
        let mut out = Vec::with_capacity(n as usize);
        let mut remaining = n;
        for (i, shard) in self.shards.iter().take(lanes as usize).enumerate() {
            let share = (n / lanes + u64::from((i as u64) < n % lanes)).min(remaining);
            remaining -= Self::fill_from_shard(shard, region, share, &mut out);
        }
        // Shortfall from full banks: first-fit over the whole pool.
        for shard in &self.shards {
            if remaining == 0 {
                break;
            }
            remaining -= Self::fill_from_shard(shard, region, remaining, &mut out);
        }
        debug_assert_eq!(remaining, 0, "capacity check vs striped sweep drifted");
        rt.used_pages += n;
        if let Some(r) = rt.regions.get_mut(&region) {
            r.pages += n;
        }
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "pages_allocated", None, n);
        Ok(out)
    }

    /// Partitions a page set by owning shard: returns one count per
    /// shard (`len == shard_count`), in shard order, of how many of the
    /// given pages each bank holds. Pages outside the device are
    /// skipped — the caller is costing a transfer, not validating ids.
    /// This is the shape [`simclock::PipelineModel`]-style critical-path
    /// costing consumes.
    pub fn shard_partition(&self, pages: &[CxlPageId]) -> Vec<u64> {
        let mut counts = vec![0u64; self.shards.len()];
        for &p in pages {
            if let Some((s, _)) = self.shard_of(p) {
                counts[s] += 1;
            }
        }
        counts
    }

    /// Allocates enough pages in `region` to back `bytes` of checkpointed
    /// metadata, returning the pages. Zero bytes allocates zero pages.
    ///
    /// # Errors
    ///
    /// Same as [`CxlDevice::alloc_batch`].
    pub fn alloc_bytes(&self, region: RegionId, bytes: u64) -> Result<Vec<CxlPageId>, CxlError> {
        let pages = bytes.div_ceil(PAGE_SIZE);
        self.alloc_batch(region, pages)
    }

    /// Frees one page.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    pub fn free_page(&self, page: CxlPageId) -> Result<(), CxlError> {
        self.free_batch(std::slice::from_ref(&page)).map(|_| ())
    }

    /// Frees a batch of pages, returning how many were freed (always
    /// `pages.len()` on success).
    ///
    /// All-or-nothing: every page must be live and listed exactly once,
    /// or nothing is freed. The fault hook is consulted once per page in
    /// input order — the same consult sequence the scalar-era per-page
    /// loop produced, so seeded fault schedules fire identically.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] on the first dead, duplicate or
    /// out-of-range page.
    pub fn free_batch(&self, pages: &[CxlPageId]) -> Result<u64, CxlError> {
        for &p in pages {
            if let Some(err) = self.injected(DeviceOp::Free, Some(p), NodeId(u32::MAX)) {
                return Err(err);
            }
        }
        if pages.is_empty() {
            return Ok(0);
        }
        let mut by_shard: BTreeMap<usize, Vec<(u64, CxlPageId)>> = BTreeMap::new();
        let mut seen = BTreeSet::new();
        for &p in pages {
            let (s, l) = self.shard_of(p).ok_or(CxlError::BadPage(p))?;
            if !seen.insert(p) {
                return Err(CxlError::BadPage(p));
            }
            by_shard.entry(s).or_default().push((l, p));
        }
        let mut rt = self.regions.write();
        // Validate-then-free in two sweeps. Holding the region-table
        // write lock pins page liveness (alloc/free/destroy all need it),
        // so the validation verdict cannot go stale between sweeps, and
        // each sweep takes only one shard lock at a time, in ascending
        // order.
        for (&s, locals) in &by_shard {
            let st = self.shards[s].state.read();
            for &(l, p) in locals {
                if st.slots.get(l as usize).and_then(Option::as_ref).is_none() {
                    return Err(CxlError::BadPage(p));
                }
            }
        }
        let mut freed = 0u64;
        for (&s, locals) in &by_shard {
            let mut st = self.shards[s].state.write();
            for &(l, _) in locals {
                let slot = st.slots[l as usize]
                    .take()
                    // cxl-lint: allow(device-unwrap): liveness is pinned by the region-table write lock held since the batch was validated
                    .expect("liveness pinned under the region-table lock");
                st.free.push(l);
                st.used -= 1;
                if let Some(r) = rt.regions.get_mut(&slot.region) {
                    r.pages -= 1;
                }
                freed += 1;
            }
        }
        rt.used_pages -= freed;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "pages_freed", None, freed);
        Ok(freed)
    }

    /// Destroys a region, freeing all its pages. Returns the number of pages
    /// freed. This is CXLporter's checkpoint-reclamation primitive (§5).
    ///
    /// # Errors
    ///
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn destroy_region(&self, region: RegionId) -> Result<u64, CxlError> {
        let mut rt = self.regions.write();
        let info = rt
            .regions
            .remove(&region)
            .ok_or(CxlError::BadRegion(region))?;
        let mut freed = 0;
        for shard in &self.shards {
            let mut st = shard.state.write();
            let ShardState {
                slots, free, used, ..
            } = &mut *st;
            for (l, slot) in slots.iter_mut().enumerate() {
                if matches!(slot, Some(s) if s.region == region) {
                    *slot = None;
                    free.push(l as u64);
                    *used -= 1;
                    freed += 1;
                }
            }
        }
        debug_assert_eq!(freed, info.pages, "region page accounting drifted");
        rt.used_pages -= freed;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "pages_freed", None, freed);
        Ok(freed)
    }

    /// Usage summary of one region.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn region_usage(&self, region: RegionId) -> Result<RegionUsage, CxlError> {
        let rt = self.regions.read();
        let r = rt.regions.get(&region).ok_or(CxlError::BadRegion(region))?;
        Ok(RegionUsage {
            name: r.name.clone(),
            pages: r.pages,
            bytes: r.pages * PAGE_SIZE,
            kind: r.kind,
        })
    }

    /// Lists all live regions with their usage.
    pub fn regions(&self) -> Vec<(RegionId, RegionUsage)> {
        let rt = self.regions.read();
        rt.regions
            .iter()
            .map(|(id, r)| {
                (
                    *id,
                    RegionUsage {
                        name: r.name.clone(),
                        pages: r.pages,
                        bytes: r.pages * PAGE_SIZE,
                        kind: r.kind,
                    },
                )
            })
            .collect()
    }

    /// Lists every live page with its owning region, for cross-layer
    /// auditing (`cxl-check` validates that region page counts, the used
    /// counter, per-shard counts and per-page ownership all agree).
    /// Taken under the region-table lock so the sweep over shards sees a
    /// consistent liveness snapshot.
    pub fn live_pages(&self) -> Vec<(CxlPageId, RegionId)> {
        let _pin = self.regions.read();
        let mut out = Vec::new();
        for shard in &self.shards {
            let st = shard.state.read();
            out.extend(st.slots.iter().enumerate().filter_map(|(l, slot)| {
                slot.as_ref()
                    .map(|s| (CxlPageId(shard.base + l as u64), s.region))
            }));
        }
        out
    }

    /// Returns the region owning `page`, or `None` if the page is not
    /// live (freed, or never allocated).
    pub fn page_region(&self, page: CxlPageId) -> Option<RegionId> {
        let (s, l) = self.shard_of(page)?;
        let st = self.shards[s].state.read();
        st.slots
            .get(l as usize)
            .and_then(Option::as_ref)
            .map(|slot| slot.region)
    }

    /// Reads `buf.len()` bytes at `offset` within `page`, on behalf of
    /// `node`.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    ///
    /// # Panics
    ///
    /// Panics if the byte range leaves the page.
    pub fn read(
        &self,
        page: CxlPageId,
        offset: u64,
        buf: &mut [u8],
        node: NodeId,
    ) -> Result<(), CxlError> {
        if let Some(err) = self.injected(DeviceOp::Read, Some(page), node) {
            return Err(err);
        }
        let (s, l) = self.shard_of(page).ok_or(CxlError::BadPage(page))?;
        let mut st = self.shards[s].state.write();
        let len = buf.len() as u64;
        let slot = st
            .slots
            .get(l as usize)
            .and_then(Option::as_ref)
            .ok_or(CxlError::BadPage(page))?;
        slot.data.read(offset, buf);
        *st.stats.reads.entry(node).or_insert(0) += 1;
        *st.stats.bytes_read.entry(node).or_insert(0) += len;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "reads", Some(node.0), 1);
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "bytes_read", Some(node.0), len);
        Ok(())
    }

    /// Writes `data` at `offset` within `page`, on behalf of `node`.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    ///
    /// # Panics
    ///
    /// Panics if the byte range leaves the page.
    pub fn write(
        &self,
        page: CxlPageId,
        offset: u64,
        data: &[u8],
        node: NodeId,
    ) -> Result<(), CxlError> {
        if let Some(err) = self.injected(DeviceOp::Write, Some(page), node) {
            return Err(err);
        }
        let (s, l) = self.shard_of(page).ok_or(CxlError::BadPage(page))?;
        let mut st = self.shards[s].state.write();
        let slot = st
            .slots
            .get_mut(l as usize)
            .and_then(Option::as_mut)
            .ok_or(CxlError::BadPage(page))?;
        slot.data.write(offset, data);
        *st.stats.writes.entry(node).or_insert(0) += 1;
        *st.stats.bytes_written.entry(node).or_insert(0) += data.len() as u64;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "writes", Some(node.0), 1);
        cxl_telemetry::counter_add(
            TELEMETRY_LAYER,
            "bytes_written",
            Some(node.0),
            data.len() as u64,
        );
        Ok(())
    }

    /// Replaces the full contents of `page` (the checkpoint bulk-copy path,
    /// modelling non-temporal stores, §8). Scalar form of
    /// [`CxlDevice::write_pages`] — a batch of one, with identical
    /// counter increments.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    pub fn write_page(
        &self,
        page: CxlPageId,
        data: PageData,
        node: NodeId,
    ) -> Result<(), CxlError> {
        self.write_pages(&[(page, data)], node)
    }

    /// Replaces the full contents of every `(page, data)` pair as one
    /// batched transfer. Counters advance by exactly the same amounts as
    /// the equivalent sequence of scalar [`CxlDevice::write_page`] calls
    /// (grouped per shard), and the fault hook is consulted once per page
    /// in input order before any data moves. Callers charge
    /// `LatencyModel::cxl_batch_write(pairs.len())` for the transfer.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if any page is not live; earlier pages in
    /// the batch may already have been written (exactly like a failed
    /// scalar loop), but no counters are recorded for a shard whose
    /// sweep failed.
    pub fn write_pages(
        &self,
        writes: &[(CxlPageId, PageData)],
        node: NodeId,
    ) -> Result<(), CxlError> {
        for (p, _) in writes {
            if let Some(err) = self.injected(DeviceOp::Write, Some(*p), node) {
                return Err(err);
            }
        }
        let mut by_shard: BTreeMap<usize, Vec<(u64, usize)>> = BTreeMap::new();
        for (pos, (p, _)) in writes.iter().enumerate() {
            let (s, l) = self.shard_of(*p).ok_or(CxlError::BadPage(*p))?;
            by_shard.entry(s).or_default().push((l, pos));
        }
        for (&s, entries) in &by_shard {
            let mut st = self.shards[s].state.write();
            for &(l, pos) in entries {
                let (p, data) = &writes[pos];
                let slot = st
                    .slots
                    .get_mut(l as usize)
                    .and_then(Option::as_mut)
                    .ok_or(CxlError::BadPage(*p))?;
                slot.data = data.clone();
            }
            let k = entries.len() as u64;
            *st.stats.writes.entry(node).or_insert(0) += k;
            *st.stats.bytes_written.entry(node).or_insert(0) += k * PAGE_SIZE;
            cxl_telemetry::counter_add(TELEMETRY_LAYER, "writes", Some(node.0), k);
            cxl_telemetry::counter_add(
                TELEMETRY_LAYER,
                "bytes_written",
                Some(node.0),
                k * PAGE_SIZE,
            );
        }
        Ok(())
    }

    /// Returns a copy of the full contents of `page` (the CoW-fault /
    /// migrate-on-access pull path). Scalar form of
    /// [`CxlDevice::read_pages`] — a batch of one, with identical
    /// counter increments.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    pub fn read_page(&self, page: CxlPageId, node: NodeId) -> Result<PageData, CxlError> {
        let mut out = self.read_pages(std::slice::from_ref(&page), node)?;
        Ok(out.remove(0))
    }

    /// Reads the full contents of every page as one batched transfer,
    /// returning the copies **in input order**. Counters advance by
    /// exactly the same amounts as the equivalent sequence of scalar
    /// [`CxlDevice::read_page`] calls (grouped per shard), and the fault
    /// hook is consulted once per page in input order before any data
    /// moves. Callers charge `LatencyModel::cxl_batch_read(pages.len())`
    /// for the transfer.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if any page is not live; no counters are
    /// recorded for a shard whose sweep failed.
    pub fn read_pages(&self, pages: &[CxlPageId], node: NodeId) -> Result<Vec<PageData>, CxlError> {
        for &p in pages {
            if let Some(err) = self.injected(DeviceOp::Read, Some(p), node) {
                return Err(err);
            }
        }
        let mut by_shard: BTreeMap<usize, Vec<(u64, usize)>> = BTreeMap::new();
        for (pos, &p) in pages.iter().enumerate() {
            let (s, l) = self.shard_of(p).ok_or(CxlError::BadPage(p))?;
            by_shard.entry(s).or_default().push((l, pos));
        }
        let mut out: Vec<Option<PageData>> = pages.iter().map(|_| None).collect();
        for (&s, entries) in &by_shard {
            let mut st = self.shards[s].state.write();
            for &(l, pos) in entries {
                let data = st
                    .slots
                    .get(l as usize)
                    .and_then(Option::as_ref)
                    .map(|slot| slot.data.clone())
                    .ok_or(CxlError::BadPage(pages[pos]))?;
                out[pos] = Some(data);
            }
            let k = entries.len() as u64;
            *st.stats.reads.entry(node).or_insert(0) += k;
            *st.stats.bytes_read.entry(node).or_insert(0) += k * PAGE_SIZE;
            cxl_telemetry::counter_add(TELEMETRY_LAYER, "reads", Some(node.0), k);
            cxl_telemetry::counter_add(TELEMETRY_LAYER, "bytes_read", Some(node.0), k * PAGE_SIZE);
        }
        Ok(out
            .into_iter()
            // cxl-lint: allow(device-unwrap): the shard sweep above wrote every input position or returned Err before reaching here
            .map(|d| d.expect("every input position visited in the shard sweep"))
            .collect())
    }

    /// Content fingerprint of a page, for immutability assertions in tests.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    pub fn fingerprint(&self, page: CxlPageId) -> Result<u64, CxlError> {
        let (s, l) = self.shard_of(page).ok_or(CxlError::BadPage(page))?;
        let st = self.shards[s].state.read();
        let slot = st
            .slots
            .get(l as usize)
            .and_then(Option::as_ref)
            .ok_or(CxlError::BadPage(page))?;
        Ok(slot.data.fingerprint())
    }

    /// Content fingerprints of every page, **in input order**, grouped by
    /// shard (like [`CxlDevice::read_pages`]) so hashing a whole
    /// checkpoint image acquires each shard lock once instead of once per
    /// page. Like the scalar [`CxlDevice::fingerprint`], this is an
    /// integrity primitive, not a modelled transfer: no traffic counters
    /// advance and the fault hook is not consulted. A batch of one
    /// returns exactly what the scalar call does.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if any page is not live.
    pub fn fingerprint_pages(&self, pages: &[CxlPageId]) -> Result<Vec<u64>, CxlError> {
        let mut by_shard: BTreeMap<usize, Vec<(u64, usize)>> = BTreeMap::new();
        for (pos, &p) in pages.iter().enumerate() {
            let (s, l) = self.shard_of(p).ok_or(CxlError::BadPage(p))?;
            by_shard.entry(s).or_default().push((l, pos));
        }
        let mut out: Vec<Option<u64>> = pages.iter().map(|_| None).collect();
        for (&s, entries) in &by_shard {
            let st = self.shards[s].state.read();
            for &(l, pos) in entries {
                let fp = st
                    .slots
                    .get(l as usize)
                    .and_then(Option::as_ref)
                    .map(|slot| slot.data.fingerprint())
                    .ok_or(CxlError::BadPage(pages[pos]))?;
                out[pos] = Some(fp);
            }
        }
        Ok(out
            .into_iter()
            // cxl-lint: allow(device-unwrap): the shard sweep above wrote every input position or returned Err before reaching here
            .map(|f| f.expect("every input position visited in the shard sweep"))
            .collect())
    }

    /// Copies the full contents of every page **in input order** without
    /// advancing traffic counters or consulting the fault hook — an
    /// integrity/audit primitive like [`CxlDevice::fingerprint_pages`],
    /// not a modelled transfer. Recovery audits use it to compare journal
    /// claims against resident bytes; callers that *model* the read (and
    /// want fault injection) use [`CxlDevice::read_pages`] instead.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if any page is not live.
    pub fn snapshot_pages(&self, pages: &[CxlPageId]) -> Result<Vec<PageData>, CxlError> {
        let mut by_shard: BTreeMap<usize, Vec<(u64, usize)>> = BTreeMap::new();
        for (pos, &p) in pages.iter().enumerate() {
            let (s, l) = self.shard_of(p).ok_or(CxlError::BadPage(p))?;
            by_shard.entry(s).or_default().push((l, pos));
        }
        let mut out: Vec<Option<PageData>> = pages.iter().map(|_| None).collect();
        for (&s, entries) in &by_shard {
            let st = self.shards[s].state.read();
            for &(l, pos) in entries {
                let data = st
                    .slots
                    .get(l as usize)
                    .and_then(Option::as_ref)
                    .map(|slot| slot.data.clone())
                    .ok_or(CxlError::BadPage(pages[pos]))?;
                out[pos] = Some(data);
            }
        }
        Ok(out
            .into_iter()
            // cxl-lint: allow(device-unwrap): the shard sweep above wrote every input position or returned Err before reaching here
            .map(|d| d.expect("every input position visited in the shard sweep"))
            .collect())
    }

    /// Creates a region wrapped in a [`RegionGuard`] that destroys it on
    /// drop unless [`RegionGuard::commit`]ed — the pattern checkpoint
    /// builders use so a failed (e.g. out-of-device-memory) checkpoint
    /// never leaks a partial region.
    pub fn create_region_guarded<'d>(&'d self, name: &str) -> RegionGuard<'d> {
        RegionGuard {
            device: self,
            region: self.create_region(name),
            armed: true,
        }
    }

    /// Like [`CxlDevice::create_region_guarded`], but the region starts
    /// as an uncommitted staging region (see
    /// [`CxlDevice::create_region_staged`]). Callers publish with
    /// [`CxlDevice::commit_region`] and then disarm the guard with
    /// [`RegionGuard::commit`].
    pub fn create_region_staged_guarded<'d>(
        &'d self,
        name: &str,
        owner: NodeId,
        epoch: u64,
    ) -> RegionGuard<'d> {
        RegionGuard {
            device: self,
            region: self.create_region_staged(name, owner, epoch),
            armed: true,
        }
    }

    /// Snapshot of the traffic counters, merged across shards. Totals are
    /// increment-exact: every scalar or batch operation advanced exactly
    /// one shard's counters by the amounts the scalar path always used.
    pub fn stats(&self) -> CxlDeviceStats {
        let mut merged = CxlDeviceStats::default();
        for shard in &self.shards {
            merged.merge(&shard.state.read().stats);
        }
        merged
    }

    /// Resets all traffic counters (between experiment phases).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.state.write().stats = CxlDeviceStats::default();
        }
    }
}

/// A region that is destroyed (with all its pages) when dropped, unless
/// committed.
///
/// # Example
///
/// ```
/// use cxl_mem::CxlDevice;
///
/// let dev = CxlDevice::new(8);
/// {
///     let guard = dev.create_region_guarded("ckpt");
///     dev.alloc_page(guard.id()).unwrap();
///     // guard dropped without commit: pages freed
/// }
/// assert_eq!(dev.used_pages(), 0);
/// let guard = dev.create_region_guarded("ckpt2");
/// dev.alloc_page(guard.id()).unwrap();
/// let region = guard.commit(); // keep it
/// assert_eq!(dev.used_pages(), 1);
/// # let _ = region;
/// ```
#[derive(Debug)]
pub struct RegionGuard<'d> {
    device: &'d CxlDevice,
    region: RegionId,
    armed: bool,
}

impl RegionGuard<'_> {
    /// The guarded region's id.
    pub fn id(&self) -> RegionId {
        self.region
    }

    /// Disarms the guard and returns the region, which now lives until
    /// explicitly destroyed.
    pub fn commit(mut self) -> RegionId {
        self.armed = false;
        self.region
    }

    /// Disarms the guard *without* destroying the region, leaving it in
    /// whatever commit state it has. Simulates the owner crashing
    /// mid-checkpoint: the staging region stays behind for the lease GC
    /// (or the `cxl-check` staging audit) to find.
    pub fn abandon(mut self) -> RegionId {
        self.armed = false;
        self.region
    }
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.device.destroy_region(self.region);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> CxlDevice {
        CxlDevice::new(64)
    }

    #[test]
    fn region_guard_cleans_up_on_drop_and_commits() {
        let d = dev();
        {
            let g = d.create_region_guarded("tmp");
            d.alloc_pages(g.id(), 3).unwrap();
            assert_eq!(d.used_pages(), 3);
        }
        assert_eq!(d.used_pages(), 0, "dropped guard frees pages");
        let g = d.create_region_guarded("kept");
        d.alloc_pages(g.id(), 2).unwrap();
        let region = g.commit();
        assert_eq!(d.used_pages(), 2);
        assert!(d.region_usage(region).is_ok());
    }

    #[test]
    fn alloc_and_free_track_usage() {
        let d = dev();
        let r = d.create_region("r");
        let pages = d.alloc_pages(r, 10).unwrap();
        assert_eq!(d.used_pages(), 10);
        assert_eq!(d.free_pages(), 54);
        d.free_page(pages[3]).unwrap();
        assert_eq!(d.used_pages(), 9);
        // Freed slot is recycled.
        let p = d.alloc_page(r).unwrap();
        assert_eq!(p, pages[3]);
    }

    #[test]
    fn alloc_is_all_or_nothing() {
        let d = dev();
        let r = d.create_region("r");
        let err = d.alloc_pages(r, 65).unwrap_err();
        assert_eq!(
            err,
            CxlError::OutOfDeviceMemory {
                requested: 65,
                available: 64
            }
        );
        assert_eq!(d.used_pages(), 0);
    }

    #[test]
    fn alloc_into_missing_region_fails() {
        let d = dev();
        let bogus = RegionId(99);
        assert_eq!(d.alloc_page(bogus).unwrap_err(), CxlError::BadRegion(bogus));
    }

    #[test]
    fn fresh_pages_are_zeroed_even_after_reuse() {
        let d = dev();
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        d.write(p, 0, &[0xFF; 8], NodeId(0)).unwrap();
        d.free_page(p).unwrap();
        let p2 = d.alloc_page(r).unwrap();
        assert_eq!(p2, p);
        let mut buf = [0xAAu8; 8];
        d.read(p2, 0, &mut buf, NodeId(0)).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn cross_node_visibility() {
        let d = dev();
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        d.write_page(p, PageData::pattern(5), NodeId(0)).unwrap();
        assert_eq!(d.read_page(p, NodeId(1)).unwrap(), PageData::pattern(5));
    }

    #[test]
    fn destroy_region_frees_all_its_pages_only() {
        let d = dev();
        let ra = d.create_region("a");
        let rb = d.create_region("b");
        let pa = d.alloc_pages(ra, 5).unwrap();
        let pb = d.alloc_pages(rb, 3).unwrap();
        assert_eq!(d.destroy_region(ra).unwrap(), 5);
        assert_eq!(d.used_pages(), 3);
        assert_eq!(d.fingerprint(pa[0]).unwrap_err(), CxlError::BadPage(pa[0]));
        assert!(d.fingerprint(pb[0]).is_ok());
        // Region gone.
        assert!(d.region_usage(ra).is_err());
        assert_eq!(d.region_usage(rb).unwrap().pages, 3);
    }

    #[test]
    fn stats_count_per_node_traffic() {
        let d = dev();
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        d.write(p, 0, &[1, 2, 3], NodeId(0)).unwrap();
        let mut buf = [0u8; 2];
        d.read(p, 0, &mut buf, NodeId(1)).unwrap();
        d.read(p, 0, &mut buf, NodeId(1)).unwrap();
        let s = d.stats();
        assert_eq!(s.writes[&NodeId(0)], 1);
        assert_eq!(s.bytes_written[&NodeId(0)], 3);
        assert_eq!(s.reads[&NodeId(1)], 2);
        assert_eq!(s.bytes_read[&NodeId(1)], 4);
        assert_eq!(s.total_reads(), 2);
        d.reset_stats();
        assert_eq!(d.stats().total_reads(), 0);
    }

    #[test]
    fn utilization_and_alloc_bytes() {
        let d = dev();
        let r = d.create_region("r");
        let pages = d.alloc_bytes(r, PAGE_SIZE * 3 + 1).unwrap();
        assert_eq!(pages.len(), 4);
        assert!((d.utilization() - 4.0 / 64.0).abs() < 1e-12);
        assert!(d.alloc_bytes(r, 0).unwrap().is_empty());
    }

    #[test]
    fn device_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CxlDevice>();
    }

    #[test]
    fn sharded_layout_partitions_capacity() {
        let d = CxlDevice::with_shards(64, 8);
        assert_eq!(d.shard_count(), 8);
        let su = d.shard_usage();
        assert_eq!(su.iter().map(|s| s.capacity_pages).sum::<u64>(), 64);
        let mut next = 0;
        for s in &su {
            assert_eq!(s.base_page, next, "shard ranges must be contiguous");
            next += s.capacity_pages;
        }
        // Uneven capacity still partitions exactly, possibly with fewer
        // shards than requested.
        let d = CxlDevice::with_shards(10, 8);
        let su = d.shard_usage();
        assert_eq!(su.iter().map(|s| s.capacity_pages).sum::<u64>(), 10);
        assert!(su.len() <= 8);
        // Single shard degenerates to the pre-shard layout.
        assert_eq!(CxlDevice::with_shards(64, 1).shard_count(), 1);
        // Requested counts are clamped to the class table.
        assert!(CxlDevice::with_shards(1 << 20, 10_000).shard_count() <= MAX_SHARDS);
    }

    #[test]
    fn batch_ops_round_trip_across_shards_in_input_order() {
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let pages = d.alloc_batch(r, 20).unwrap(); // spans three shards
        assert_eq!(d.used_pages(), 20);
        // Request order deliberately interleaves shards.
        let mut order: Vec<CxlPageId> = Vec::new();
        for i in 0..10 {
            order.push(pages[19 - i]);
            order.push(pages[i]);
        }
        let writes: Vec<(CxlPageId, PageData)> = order
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, PageData::pattern(i as u64)))
            .collect();
        d.write_pages(&writes, NodeId(0)).unwrap();
        let datas = d.read_pages(&order, NodeId(1)).unwrap();
        assert_eq!(datas.len(), order.len());
        for (i, data) in datas.iter().enumerate() {
            assert_eq!(*data, PageData::pattern(i as u64), "batch slot {i}");
        }
    }

    #[test]
    fn batch_stats_match_scalar_increments_exactly() {
        let batch = CxlDevice::with_shards(64, 8);
        let scalar = CxlDevice::with_shards(64, 8);
        let rb = batch.create_region("r");
        let rs = scalar.create_region("r");
        let pb = batch.alloc_batch(rb, 12).unwrap();
        let ps: Vec<_> = (0..12).map(|_| scalar.alloc_page(rs).unwrap()).collect();
        assert_eq!(pb, ps, "batch and scalar allocation orders agree");
        let writes: Vec<_> = pb.iter().map(|&p| (p, PageData::pattern(9))).collect();
        batch.write_pages(&writes, NodeId(2)).unwrap();
        batch.read_pages(&pb, NodeId(3)).unwrap();
        for &p in &ps {
            scalar
                .write_page(p, PageData::pattern(9), NodeId(2))
                .unwrap();
            scalar.read_page(p, NodeId(3)).unwrap();
        }
        assert_eq!(
            batch.stats(),
            scalar.stats(),
            "counters must stay increment-exact"
        );
    }

    #[test]
    fn fingerprint_pages_matches_scalar_and_input_order() {
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let pages = d.alloc_batch(r, 20).unwrap(); // spans three shards
        let writes: Vec<(CxlPageId, PageData)> = pages
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, PageData::pattern(i as u64)))
            .collect();
        d.write_pages(&writes, NodeId(0)).unwrap();
        // Request order deliberately interleaves shards.
        let mut order: Vec<CxlPageId> = Vec::new();
        for i in 0..10 {
            order.push(pages[19 - i]);
            order.push(pages[i]);
        }
        let stats_before = d.stats();
        let batch = d.fingerprint_pages(&order).unwrap();
        assert_eq!(batch.len(), order.len());
        for (i, (&p, &fp)) in order.iter().zip(&batch).enumerate() {
            assert_eq!(fp, d.fingerprint(p).unwrap(), "batch slot {i}");
        }
        // Batch-of-1 ≡ scalar, and fingerprinting (either form) records
        // no traffic.
        assert_eq!(
            d.fingerprint_pages(std::slice::from_ref(&pages[3]))
                .unwrap(),
            vec![d.fingerprint(pages[3]).unwrap()]
        );
        assert_eq!(d.stats(), stats_before, "fingerprinting is traffic-free");
        // A dead page fails the whole batch.
        let mut doomed = order.clone();
        doomed.push(CxlPageId(63));
        assert_eq!(
            d.fingerprint_pages(&doomed).unwrap_err(),
            CxlError::BadPage(CxlPageId(63))
        );
        assert!(d.fingerprint_pages(&[]).unwrap().is_empty());
    }

    #[test]
    fn free_batch_is_all_or_nothing() {
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let pages = d.alloc_batch(r, 10).unwrap();
        let mut doomed = pages.clone();
        doomed.push(CxlPageId(63)); // never allocated
        assert_eq!(
            d.free_batch(&doomed).unwrap_err(),
            CxlError::BadPage(CxlPageId(63))
        );
        assert_eq!(d.used_pages(), 10, "failed batch free must free nothing");
        // Duplicates are rejected before any page is freed.
        let dup = [pages[0], pages[1], pages[0]];
        assert_eq!(d.free_batch(&dup).unwrap_err(), CxlError::BadPage(pages[0]));
        assert_eq!(d.used_pages(), 10);
        assert_eq!(d.free_batch(&pages).unwrap(), 10);
        assert_eq!(d.used_pages(), 0);
    }

    #[test]
    fn empty_batches_are_noops() {
        let d = CxlDevice::with_shards(16, 4);
        let r = d.create_region("r");
        assert!(d.alloc_batch(r, 0).unwrap().is_empty());
        assert!(d.read_pages(&[], NodeId(0)).unwrap().is_empty());
        d.write_pages(&[], NodeId(0)).unwrap();
        assert_eq!(d.free_batch(&[]).unwrap(), 0);
        assert_eq!(d.stats(), CxlDeviceStats::default());
        assert_eq!(d.used_pages(), 0);
    }

    #[test]
    fn shard_usage_reconciles_with_used_pages() {
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let pages = d.alloc_batch(r, 23).unwrap();
        d.free_batch(&pages[5..9]).unwrap();
        let su = d.shard_usage();
        assert_eq!(
            su.iter().map(|s| s.used_pages).sum::<u64>(),
            d.used_pages(),
            "per-shard used counts must sum to the device total"
        );
        // Every live page falls inside exactly one shard's offset range.
        for (p, _) in d.live_pages() {
            let owners = su
                .iter()
                .filter(|s| p.0 >= s.base_page && p.0 < s.base_page + s.capacity_pages)
                .count();
            assert_eq!(owners, 1, "page {p:?} must map to exactly one shard");
        }
    }

    #[test]
    fn staged_regions_commit_atomically() {
        let d = dev();
        let r = d.create_region_staged("staging", NodeId(3), 7);
        d.alloc_pages(r, 2).unwrap();
        assert_eq!(d.region_committed(r), Some(false));
        let staged = d.staging_regions();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].owner, NodeId(3));
        assert_eq!(staged[0].epoch, 7);
        assert_eq!(staged[0].pages, 2);
        d.commit_region(r).unwrap();
        assert_eq!(d.region_committed(r), Some(true));
        assert!(d.staging_regions().is_empty());
        // Idempotent; plain regions are born committed.
        d.commit_region(r).unwrap();
        assert_eq!(d.region_committed(d.create_region("plain")), Some(true));
        assert_eq!(d.region_committed(RegionId(99)), None);
        assert_eq!(
            d.commit_region(RegionId(99)).unwrap_err(),
            CxlError::BadRegion(RegionId(99))
        );
    }

    #[test]
    fn abandoned_staged_guard_leaves_orphan_behind() {
        let d = dev();
        let region = {
            let g = d.create_region_staged_guarded("staging", NodeId(1), 4);
            d.alloc_pages(g.id(), 3).unwrap();
            g.abandon()
        };
        assert_eq!(d.used_pages(), 3, "abandon keeps pages");
        assert_eq!(d.region_committed(region), Some(false));
        assert_eq!(d.staging_regions().len(), 1);
    }

    #[derive(Debug)]
    struct FailNthRead {
        // cxl-lint: allow(raw-lock): test-local countdown; tracking it would pollute the lockdep class graph the tests assert on
        countdown: std::sync::Mutex<u64>,
    }

    impl FaultHook for FailNthRead {
        fn inject(
            &self,
            op: DeviceOp,
            _page: Option<CxlPageId>,
            _node: NodeId,
        ) -> Option<CxlError> {
            if op != DeviceOp::Read {
                return None;
            }
            let mut n = self.countdown.lock().unwrap();
            if *n == 0 {
                *n = u64::MAX; // fire once
                Some(CxlError::Transient { op: op.name() })
            } else {
                *n -= 1;
                None
            }
        }
    }

    #[test]
    fn fault_hook_vetoes_operations_and_unhooks_cleanly() {
        let d = dev();
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        d.set_fault_hook(Some(Arc::new(FailNthRead {
            // cxl-lint: allow(raw-lock): test-local countdown (see FailNthRead)
            countdown: std::sync::Mutex::new(1),
        })));
        assert!(d.read_page(p, NodeId(0)).is_ok(), "first read passes");
        assert_eq!(
            d.read_page(p, NodeId(0)).unwrap_err(),
            CxlError::Transient { op: "read" }
        );
        assert!(d.read_page(p, NodeId(0)).is_ok(), "hook fires once");
        d.set_fault_hook(None);
        assert!(d.read_page(p, NodeId(0)).is_ok());
    }

    #[test]
    fn fault_hook_sees_batch_reads_per_page_in_input_order() {
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let pages = d.alloc_batch(r, 4).unwrap();
        d.set_fault_hook(Some(Arc::new(FailNthRead {
            // cxl-lint: allow(raw-lock): test-local countdown (see FailNthRead)
            countdown: std::sync::Mutex::new(2),
        })));
        // The batch consults the hook once per page in input order, so the
        // third page trips the schedule — exactly where the scalar loop
        // would have tripped it — and the whole batch fails before any
        // counter advances.
        assert_eq!(
            d.read_pages(&pages, NodeId(0)).unwrap_err(),
            CxlError::Transient { op: "read" }
        );
        assert_eq!(d.stats().total_reads(), 0, "failed batch counts nothing");
    }

    #[derive(Debug, Default)]
    struct CountAllocConsults {
        // cxl-lint: allow(raw-lock): test-local counter; tracking it would pollute the lockdep class graph the tests assert on
        consults: std::sync::Mutex<u64>,
    }

    impl FaultHook for CountAllocConsults {
        fn inject(&self, op: DeviceOp, _: Option<CxlPageId>, _: NodeId) -> Option<CxlError> {
            if op == DeviceOp::Alloc {
                *self.consults.lock().unwrap() += 1;
            }
            None
        }
    }

    #[test]
    fn zero_length_alloc_batch_is_free_and_skips_the_fault_hook() {
        let d = dev();
        let r = d.create_region("r");
        let hook = Arc::new(CountAllocConsults::default());
        d.set_fault_hook(Some(hook.clone()));
        assert!(d.alloc_batch(r, 0).unwrap().is_empty());
        assert!(d.alloc_batch_striped(r, 0, 8).unwrap().is_empty());
        assert!(d.alloc_bytes(r, 0).unwrap().is_empty());
        assert_eq!(
            *hook.consults.lock().unwrap(),
            0,
            "an empty batch must not consult the fault hook"
        );
        assert_eq!(d.used_pages(), 0);
        // A non-empty batch still consults exactly once.
        d.alloc_batch(r, 1).unwrap();
        assert_eq!(*hook.consults.lock().unwrap(), 1);
        // An empty batch is free, not unvalidated: a dangling region id
        // still errors.
        let bogus = RegionId(99);
        assert_eq!(
            d.alloc_batch(bogus, 0).unwrap_err(),
            CxlError::BadRegion(bogus)
        );
    }

    /// A fabric stub that charges 1 ns per byte seen and records calls.
    #[derive(Debug, Default)]
    struct RecordingLink {
        // cxl-lint: allow(raw-lock): test-local call log; tracking it would pollute the lockdep class graph the tests assert on
        calls: std::sync::Mutex<Vec<(u32, u64, Vec<u64>)>>,
    }

    impl FabricLink for RecordingLink {
        fn charge_transfer(&self, device: u32, now: SimTime, port_bytes: &[u64]) -> SimDuration {
            let total: u64 = port_bytes.iter().sum();
            self.calls
                .lock()
                .unwrap()
                .push((device, now.as_nanos(), port_bytes.to_vec()));
            SimDuration::from_nanos(total)
        }
    }

    #[test]
    fn fabric_attachment_charges_only_when_armed_and_non_empty() {
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let pages = d.alloc_batch_striped(r, 8, 4).unwrap();
        let now = SimTime::from_nanos(5);

        // Detached: zero delay, no fabric consulted.
        assert!(!d.fabric_armed());
        assert_eq!(d.fabric_charge_pages(now, &pages), SimDuration::ZERO);

        let link = Arc::new(RecordingLink::default());
        d.attach_fabric(Some((link.clone(), 3)));
        assert!(d.fabric_armed());

        // Empty batches stay free and never reach the link.
        assert_eq!(d.fabric_charge_pages(now, &[]), SimDuration::ZERO);
        assert_eq!(d.fabric_charge(now, &[0, 0, 0]), SimDuration::ZERO);
        assert!(link.calls.lock().unwrap().is_empty());

        // A real batch forwards its per-shard byte counts and device id.
        let delay = d.fabric_charge_pages(now, &pages);
        assert_eq!(delay, SimDuration::from_nanos(8 * PAGE_SIZE));
        {
            let calls = link.calls.lock().unwrap();
            assert_eq!(calls.len(), 1);
            let (device, t, bytes) = &calls[0];
            assert_eq!(*device, 3);
            assert_eq!(*t, 5);
            assert_eq!(
                bytes,
                &vec![
                    2 * PAGE_SIZE,
                    2 * PAGE_SIZE,
                    2 * PAGE_SIZE,
                    2 * PAGE_SIZE,
                    0,
                    0,
                    0,
                    0
                ]
            );
        }

        d.attach_fabric(None);
        assert!(!d.fabric_armed());
        assert_eq!(d.fabric_charge_pages(now, &pages), SimDuration::ZERO);
        assert_eq!(link.calls.lock().unwrap().len(), 1);
    }

    #[test]
    fn striped_alloc_spreads_the_batch_across_shards() {
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let pages = d.alloc_batch_striped(r, 16, 4).unwrap();
        assert_eq!(pages.len(), 16);
        let counts = d.shard_partition(&pages);
        assert_eq!(counts, vec![4, 4, 4, 4, 0, 0, 0, 0]);
        // More streams than shards clamps to the shard count.
        let more = d.alloc_batch_striped(r, 8, 32).unwrap();
        let counts = d.shard_partition(&more);
        assert_eq!(counts, vec![1; 8]);
        assert_eq!(d.used_pages(), 24);
    }

    #[test]
    fn striped_alloc_with_one_stream_matches_first_fit_exactly() {
        let a = CxlDevice::with_shards(64, 8);
        let b = CxlDevice::with_shards(64, 8);
        let ra = a.create_region("r");
        let rb = b.create_region("r");
        // streams <= 1 must delegate: byte-identical page-id sequences.
        assert_eq!(
            a.alloc_batch_striped(ra, 10, 1).unwrap(),
            b.alloc_batch(rb, 10).unwrap()
        );
        assert_eq!(
            a.alloc_batch_striped(ra, 5, 0).unwrap(),
            b.alloc_batch(rb, 5).unwrap()
        );
    }

    #[test]
    fn striped_alloc_falls_back_when_target_banks_are_full() {
        // 8 pages per shard (64 / 8). Fill shard 0 completely, then
        // stripe 14 pages over 2 streams: stream 0's share cannot fit in
        // shard 0, so the shortfall first-fits into later shards — the
        // call still succeeds whenever a plain batch would.
        let d = CxlDevice::with_shards(64, 8);
        let r = d.create_region("r");
        let fill = d.alloc_batch(r, 8).unwrap();
        assert_eq!(d.shard_partition(&fill), vec![8, 0, 0, 0, 0, 0, 0, 0]);
        let pages = d.alloc_batch_striped(r, 14, 2).unwrap();
        assert_eq!(pages.len(), 14);
        let counts = d.shard_partition(&pages);
        assert_eq!(counts.iter().sum::<u64>(), 14);
        assert_eq!(counts[0], 0, "shard 0 was full");
        assert_eq!(counts[1], 8, "stream 1's share landed in shard 1");
        // All-or-nothing past capacity, even striped.
        assert_eq!(
            d.alloc_batch_striped(r, 64, 4).unwrap_err(),
            CxlError::OutOfDeviceMemory {
                requested: 64,
                available: 42
            }
        );
        assert_eq!(d.used_pages(), 22);
    }

    #[test]
    fn shard_partition_counts_pages_per_bank() {
        let d = CxlDevice::with_shards(64, 4);
        let r = d.create_region("r");
        let pages = d.alloc_batch_striped(r, 6, 3).unwrap();
        let counts = d.shard_partition(&pages);
        assert_eq!(counts.len(), d.shard_count());
        assert_eq!(counts, vec![2, 2, 2, 0]);
        // Out-of-range ids are skipped, not counted.
        let bogus = [CxlPageId(u64::MAX)];
        assert_eq!(d.shard_partition(&bogus), vec![0; 4]);
        assert!(d.shard_partition(&[]).iter().all(|&c| c == 0));
    }
}
