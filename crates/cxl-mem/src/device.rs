//! The shared CXL memory device.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::injection::{DeviceOp, FaultHook};
use crate::lockdep::TrackedRwLock;

use crate::{CxlError, CxlPageId, NodeId, PageData, RegionId, PAGE_SIZE};

/// Telemetry layer name for device metrics (`cxl_mem.reads{node=}` …).
/// Counters mirror [`CxlDeviceStats`] exactly — same increment sites,
/// same units — so telemetry can be reconciled against device stats as a
/// second witness. Lock order: telemetry is recorded while the device
/// state lock is held and never calls back into the device.
const TELEMETRY_LAYER: &str = "cxl_mem";

/// The fabric-attached CXL memory device, shared by all nodes.
///
/// Thread-safe: all methods take `&self`; wrap the device in an
/// [`std::sync::Arc`] and hand one handle to each simulated node. Every
/// access records per-node counters so experiments can report locality and
/// traffic; latency is charged by callers via
/// [`simclock::LatencyModel`].
///
/// # Example
///
/// ```
/// use cxl_mem::{CxlDevice, NodeId, PageData};
///
/// # fn main() -> Result<(), cxl_mem::CxlError> {
/// let dev = CxlDevice::with_capacity_mib(16);
/// let region = dev.create_region("ckpt");
/// let pages = dev.alloc_pages(region, 4)?;
/// dev.write_page(pages[0], PageData::pattern(1), NodeId(0))?;
/// assert_eq!(dev.read_page(pages[0], NodeId(1))?, PageData::pattern(1));
/// assert_eq!(dev.used_pages(), 4);
/// dev.destroy_region(region)?;
/// assert_eq!(dev.used_pages(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CxlDevice {
    capacity_pages: u64,
    state: TrackedRwLock<DeviceState>,
    /// Fault-injection hook (see [`crate::FaultHook`]). Kept outside the
    /// state lock: the hook fires *before* state is touched, and an armed
    /// flag keeps the unhooked fast path to one relaxed atomic load.
    hook: RwLock<Option<Arc<dyn FaultHook>>>,
    hook_armed: AtomicBool,
}

#[derive(Debug, Default)]
struct DeviceState {
    /// Slab of page slots; `None` marks a freed slot awaiting reuse.
    pages: Vec<Option<PageSlot>>,
    /// Recycled slot indexes.
    free: Vec<u64>,
    used_pages: u64,
    regions: BTreeMap<RegionId, Region>,
    next_region: u64,
    stats: CxlDeviceStats,
}

#[derive(Debug)]
struct PageSlot {
    data: PageData,
    region: RegionId,
}

#[derive(Debug)]
struct Region {
    name: String,
    pages: u64,
    /// Two-phase commit state: regions start committed unless created via
    /// the staged API; an uncommitted region is a checkpoint in flight and
    /// must never be restored from.
    committed: bool,
    /// Node that owns the staging region (for lease-based orphan GC).
    owner: Option<NodeId>,
    /// Owner-supplied epoch (checkpoint sequence number).
    epoch: u64,
}

/// Per-node traffic counters for the device.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CxlDeviceStats {
    /// Read operations per node.
    pub reads: BTreeMap<NodeId, u64>,
    /// Written bytes per node.
    pub bytes_written: BTreeMap<NodeId, u64>,
    /// Read bytes per node.
    pub bytes_read: BTreeMap<NodeId, u64>,
    /// Write operations per node.
    pub writes: BTreeMap<NodeId, u64>,
}

impl CxlDeviceStats {
    /// Total read operations across all nodes.
    pub fn total_reads(&self) -> u64 {
        self.reads.values().sum()
    }

    /// Total write operations across all nodes.
    pub fn total_writes(&self) -> u64 {
        self.writes.values().sum()
    }
}

/// Usage summary for one region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionUsage {
    /// Region name supplied at creation.
    pub name: String,
    /// Live pages in the region.
    pub pages: u64,
    /// Live bytes (pages × 4 KiB).
    pub bytes: u64,
}

/// Summary of one *uncommitted* (staging) region, as reported by
/// [`CxlDevice::staging_regions`] for lease-based orphan reclamation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagingRegion {
    /// The region id.
    pub region: RegionId,
    /// Region name supplied at creation.
    pub name: String,
    /// Node that was building the checkpoint.
    pub owner: NodeId,
    /// Owner-supplied epoch (checkpoint sequence number).
    pub epoch: u64,
    /// Pages currently allocated into the region.
    pub pages: u64,
}

impl CxlDevice {
    /// Creates a device with a capacity given in pages.
    pub fn new(capacity_pages: u64) -> Self {
        CxlDevice {
            capacity_pages,
            state: TrackedRwLock::new("cxl_mem.device", DeviceState::default()),
            hook: RwLock::new(None),
            hook_armed: AtomicBool::new(false),
        }
    }

    /// Installs (or, with `None`, removes) the fault-injection hook.
    ///
    /// The hook is consulted before every read, write, allocation and
    /// free; see [`FaultHook`]. With no hook installed the data path pays
    /// one relaxed atomic load.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        let mut slot = self.hook.write();
        self.hook_armed.store(hook.is_some(), Ordering::Release);
        *slot = hook;
    }

    /// Consults the fault hook (if armed) about one operation.
    fn injected(&self, op: DeviceOp, page: Option<CxlPageId>, node: NodeId) -> Option<CxlError> {
        if !self.hook_armed.load(Ordering::Relaxed) {
            return None;
        }
        let hook = self.hook.read().clone()?;
        hook.inject(op, page, node)
    }

    /// Creates a device with a capacity given in MiB (the evaluation
    /// platform has a 16 GiB DIMM; tests use much smaller devices).
    pub fn with_capacity_mib(mib: u64) -> Self {
        CxlDevice::new(mib * 1024 * 1024 / PAGE_SIZE)
    }

    /// Total device capacity, in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Currently allocated pages.
    pub fn used_pages(&self) -> u64 {
        self.state.read().used_pages
    }

    /// Currently free pages.
    pub fn free_pages(&self) -> u64 {
        self.capacity_pages - self.used_pages()
    }

    /// Fraction of the device in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_pages == 0 {
            return 1.0;
        }
        self.used_pages() as f64 / self.capacity_pages as f64
    }

    /// Creates a new (empty) region.
    pub fn create_region(&self, name: &str) -> RegionId {
        self.create_region_inner(name, true, None, 0)
    }

    /// Creates a new *staging* region for a two-phase checkpoint commit:
    /// the region exists and accepts allocations/writes, but stays
    /// uncommitted — invisible to restore — until
    /// [`CxlDevice::commit_region`] atomically publishes it. `owner` and
    /// `epoch` identify the checkpointing node so lease-based GC can
    /// reclaim the region if that node dies mid-checkpoint.
    pub fn create_region_staged(&self, name: &str, owner: NodeId, epoch: u64) -> RegionId {
        self.create_region_inner(name, false, Some(owner), epoch)
    }

    fn create_region_inner(
        &self,
        name: &str,
        committed: bool,
        owner: Option<NodeId>,
        epoch: u64,
    ) -> RegionId {
        let mut st = self.state.write();
        let id = RegionId(st.next_region);
        st.next_region += 1;
        st.regions.insert(
            id,
            Region {
                name: name.to_owned(),
                pages: 0,
                committed,
                owner,
                epoch,
            },
        );
        id
    }

    /// Atomically publishes a staging region (phase two of the checkpoint
    /// commit). Idempotent on already-committed regions.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn commit_region(&self, region: RegionId) -> Result<(), CxlError> {
        let mut st = self.state.write();
        let r = st
            .regions
            .get_mut(&region)
            .ok_or(CxlError::BadRegion(region))?;
        r.committed = true;
        Ok(())
    }

    /// Whether `region` has been committed (`None` if it does not exist).
    pub fn region_committed(&self, region: RegionId) -> Option<bool> {
        let st = self.state.read();
        st.regions.get(&region).map(|r| r.committed)
    }

    /// Lists every *uncommitted* staging region, for orphan reclamation
    /// and the `cxl-check` staging audit.
    pub fn staging_regions(&self) -> Vec<StagingRegion> {
        let st = self.state.read();
        st.regions
            .iter()
            .filter(|(_, r)| !r.committed)
            .map(|(id, r)| StagingRegion {
                region: *id,
                name: r.name.clone(),
                owner: r.owner.unwrap_or(NodeId(u32::MAX)),
                epoch: r.epoch,
                pages: r.pages,
            })
            .collect()
    }

    /// Allocates one zeroed page into `region`.
    ///
    /// # Errors
    ///
    /// [`CxlError::OutOfDeviceMemory`] if the device is full;
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn alloc_page(&self, region: RegionId) -> Result<CxlPageId, CxlError> {
        Ok(self.alloc_pages(region, 1)?[0])
    }

    /// Allocates `n` zeroed pages into `region`.
    ///
    /// All-or-nothing: on failure no pages are allocated.
    ///
    /// # Errors
    ///
    /// [`CxlError::OutOfDeviceMemory`] if fewer than `n` pages are free;
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn alloc_pages(&self, region: RegionId, n: u64) -> Result<Vec<CxlPageId>, CxlError> {
        // Allocations are not attributed to a node at this layer; the
        // sentinel id keeps the hook signature uniform.
        if let Some(err) = self.injected(DeviceOp::Alloc, None, NodeId(u32::MAX)) {
            return Err(err);
        }
        let mut st = self.state.write();
        if !st.regions.contains_key(&region) {
            return Err(CxlError::BadRegion(region));
        }
        let available = self.capacity_pages - st.used_pages;
        if n > available {
            return Err(CxlError::OutOfDeviceMemory {
                requested: n,
                available,
            });
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let idx = match st.free.pop() {
                Some(idx) => {
                    st.pages[idx as usize] = Some(PageSlot {
                        data: PageData::zeroed(),
                        region,
                    });
                    idx
                }
                None => {
                    st.pages.push(Some(PageSlot {
                        data: PageData::zeroed(),
                        region,
                    }));
                    (st.pages.len() - 1) as u64
                }
            };
            out.push(CxlPageId(idx));
        }
        st.used_pages += n;
        if let Some(r) = st.regions.get_mut(&region) {
            r.pages += n;
        }
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "pages_allocated", None, n);
        Ok(out)
    }

    /// Allocates enough pages in `region` to back `bytes` of checkpointed
    /// metadata, returning the pages. Zero bytes allocates zero pages.
    ///
    /// # Errors
    ///
    /// Same as [`CxlDevice::alloc_pages`].
    pub fn alloc_bytes(&self, region: RegionId, bytes: u64) -> Result<Vec<CxlPageId>, CxlError> {
        let pages = bytes.div_ceil(PAGE_SIZE);
        self.alloc_pages(region, pages)
    }

    /// Frees one page.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    pub fn free_page(&self, page: CxlPageId) -> Result<(), CxlError> {
        if let Some(err) = self.injected(DeviceOp::Free, Some(page), NodeId(u32::MAX)) {
            return Err(err);
        }
        let mut st = self.state.write();
        let slot = st
            .pages
            .get_mut(page.0 as usize)
            .and_then(Option::take)
            .ok_or(CxlError::BadPage(page))?;
        st.free.push(page.0);
        st.used_pages -= 1;
        if let Some(r) = st.regions.get_mut(&slot.region) {
            r.pages -= 1;
        }
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "pages_freed", None, 1);
        Ok(())
    }

    /// Destroys a region, freeing all its pages. Returns the number of pages
    /// freed. This is CXLporter's checkpoint-reclamation primitive (§5).
    ///
    /// # Errors
    ///
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn destroy_region(&self, region: RegionId) -> Result<u64, CxlError> {
        let mut st = self.state.write();
        let info = st
            .regions
            .remove(&region)
            .ok_or(CxlError::BadRegion(region))?;
        let mut freed = 0;
        for idx in 0..st.pages.len() {
            let belongs = matches!(&st.pages[idx], Some(slot) if slot.region == region);
            if belongs {
                st.pages[idx] = None;
                st.free.push(idx as u64);
                freed += 1;
            }
        }
        debug_assert_eq!(freed, info.pages, "region page accounting drifted");
        st.used_pages -= freed;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "pages_freed", None, freed);
        Ok(freed)
    }

    /// Usage summary of one region.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadRegion`] if the region does not exist.
    pub fn region_usage(&self, region: RegionId) -> Result<RegionUsage, CxlError> {
        let st = self.state.read();
        let r = st.regions.get(&region).ok_or(CxlError::BadRegion(region))?;
        Ok(RegionUsage {
            name: r.name.clone(),
            pages: r.pages,
            bytes: r.pages * PAGE_SIZE,
        })
    }

    /// Lists all live regions with their usage.
    pub fn regions(&self) -> Vec<(RegionId, RegionUsage)> {
        let st = self.state.read();
        st.regions
            .iter()
            .map(|(id, r)| {
                (
                    *id,
                    RegionUsage {
                        name: r.name.clone(),
                        pages: r.pages,
                        bytes: r.pages * PAGE_SIZE,
                    },
                )
            })
            .collect()
    }

    /// Lists every live page with its owning region, for cross-layer
    /// auditing (`cxl-check` validates that region page counts, the used
    /// counter, and per-page ownership all agree).
    pub fn live_pages(&self) -> Vec<(CxlPageId, RegionId)> {
        let st = self.state.read();
        st.pages
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|s| (CxlPageId(i as u64), s.region)))
            .collect()
    }

    /// Returns the region owning `page`, or `None` if the page is not
    /// live (freed, or never allocated).
    pub fn page_region(&self, page: CxlPageId) -> Option<RegionId> {
        let st = self.state.read();
        st.pages
            .get(page.0 as usize)
            .and_then(Option::as_ref)
            .map(|s| s.region)
    }

    /// Reads `buf.len()` bytes at `offset` within `page`, on behalf of
    /// `node`.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    ///
    /// # Panics
    ///
    /// Panics if the byte range leaves the page.
    pub fn read(
        &self,
        page: CxlPageId,
        offset: u64,
        buf: &mut [u8],
        node: NodeId,
    ) -> Result<(), CxlError> {
        if let Some(err) = self.injected(DeviceOp::Read, Some(page), node) {
            return Err(err);
        }
        let mut st = self.state.write();
        let len = buf.len() as u64;
        let slot = st
            .pages
            .get(page.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(CxlError::BadPage(page))?;
        slot.data.read(offset, buf);
        *st.stats.reads.entry(node).or_insert(0) += 1;
        *st.stats.bytes_read.entry(node).or_insert(0) += len;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "reads", Some(node.0), 1);
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "bytes_read", Some(node.0), len);
        Ok(())
    }

    /// Writes `data` at `offset` within `page`, on behalf of `node`.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    ///
    /// # Panics
    ///
    /// Panics if the byte range leaves the page.
    pub fn write(
        &self,
        page: CxlPageId,
        offset: u64,
        data: &[u8],
        node: NodeId,
    ) -> Result<(), CxlError> {
        if let Some(err) = self.injected(DeviceOp::Write, Some(page), node) {
            return Err(err);
        }
        let mut st = self.state.write();
        let slot = st
            .pages
            .get_mut(page.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(CxlError::BadPage(page))?;
        slot.data.write(offset, data);
        *st.stats.writes.entry(node).or_insert(0) += 1;
        *st.stats.bytes_written.entry(node).or_insert(0) += data.len() as u64;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "writes", Some(node.0), 1);
        cxl_telemetry::counter_add(
            TELEMETRY_LAYER,
            "bytes_written",
            Some(node.0),
            data.len() as u64,
        );
        Ok(())
    }

    /// Replaces the full contents of `page` (the checkpoint bulk-copy path,
    /// modelling non-temporal stores, §8).
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    pub fn write_page(
        &self,
        page: CxlPageId,
        data: PageData,
        node: NodeId,
    ) -> Result<(), CxlError> {
        if let Some(err) = self.injected(DeviceOp::Write, Some(page), node) {
            return Err(err);
        }
        let mut st = self.state.write();
        let slot = st
            .pages
            .get_mut(page.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(CxlError::BadPage(page))?;
        slot.data = data;
        *st.stats.writes.entry(node).or_insert(0) += 1;
        *st.stats.bytes_written.entry(node).or_insert(0) += PAGE_SIZE;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "writes", Some(node.0), 1);
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "bytes_written", Some(node.0), PAGE_SIZE);
        Ok(())
    }

    /// Returns a copy of the full contents of `page` (the CoW-fault /
    /// migrate-on-access pull path).
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    pub fn read_page(&self, page: CxlPageId, node: NodeId) -> Result<PageData, CxlError> {
        if let Some(err) = self.injected(DeviceOp::Read, Some(page), node) {
            return Err(err);
        }
        let mut st = self.state.write();
        let slot = st
            .pages
            .get(page.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(CxlError::BadPage(page))?;
        let data = slot.data.clone();
        *st.stats.reads.entry(node).or_insert(0) += 1;
        *st.stats.bytes_read.entry(node).or_insert(0) += PAGE_SIZE;
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "reads", Some(node.0), 1);
        cxl_telemetry::counter_add(TELEMETRY_LAYER, "bytes_read", Some(node.0), PAGE_SIZE);
        Ok(data)
    }

    /// Content fingerprint of a page, for immutability assertions in tests.
    ///
    /// # Errors
    ///
    /// [`CxlError::BadPage`] if the page is not live.
    pub fn fingerprint(&self, page: CxlPageId) -> Result<u64, CxlError> {
        let st = self.state.read();
        let slot = st
            .pages
            .get(page.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(CxlError::BadPage(page))?;
        Ok(slot.data.fingerprint())
    }

    /// Creates a region wrapped in a [`RegionGuard`] that destroys it on
    /// drop unless [`RegionGuard::commit`]ed — the pattern checkpoint
    /// builders use so a failed (e.g. out-of-device-memory) checkpoint
    /// never leaks a partial region.
    pub fn create_region_guarded<'d>(&'d self, name: &str) -> RegionGuard<'d> {
        RegionGuard {
            device: self,
            region: self.create_region(name),
            armed: true,
        }
    }

    /// Like [`CxlDevice::create_region_guarded`], but the region starts
    /// as an uncommitted staging region (see
    /// [`CxlDevice::create_region_staged`]). Callers publish with
    /// [`CxlDevice::commit_region`] and then disarm the guard with
    /// [`RegionGuard::commit`].
    pub fn create_region_staged_guarded<'d>(
        &'d self,
        name: &str,
        owner: NodeId,
        epoch: u64,
    ) -> RegionGuard<'d> {
        RegionGuard {
            device: self,
            region: self.create_region_staged(name, owner, epoch),
            armed: true,
        }
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> CxlDeviceStats {
        self.state.read().stats.clone()
    }

    /// Resets all traffic counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.state.write().stats = CxlDeviceStats::default();
    }
}

/// A region that is destroyed (with all its pages) when dropped, unless
/// committed.
///
/// # Example
///
/// ```
/// use cxl_mem::CxlDevice;
///
/// let dev = CxlDevice::new(8);
/// {
///     let guard = dev.create_region_guarded("ckpt");
///     dev.alloc_page(guard.id()).unwrap();
///     // guard dropped without commit: pages freed
/// }
/// assert_eq!(dev.used_pages(), 0);
/// let guard = dev.create_region_guarded("ckpt2");
/// dev.alloc_page(guard.id()).unwrap();
/// let region = guard.commit(); // keep it
/// assert_eq!(dev.used_pages(), 1);
/// # let _ = region;
/// ```
#[derive(Debug)]
pub struct RegionGuard<'d> {
    device: &'d CxlDevice,
    region: RegionId,
    armed: bool,
}

impl RegionGuard<'_> {
    /// The guarded region's id.
    pub fn id(&self) -> RegionId {
        self.region
    }

    /// Disarms the guard and returns the region, which now lives until
    /// explicitly destroyed.
    pub fn commit(mut self) -> RegionId {
        self.armed = false;
        self.region
    }

    /// Disarms the guard *without* destroying the region, leaving it in
    /// whatever commit state it has. Simulates the owner crashing
    /// mid-checkpoint: the staging region stays behind for the lease GC
    /// (or the `cxl-check` staging audit) to find.
    pub fn abandon(mut self) -> RegionId {
        self.armed = false;
        self.region
    }
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.device.destroy_region(self.region);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> CxlDevice {
        CxlDevice::new(64)
    }

    #[test]
    fn region_guard_cleans_up_on_drop_and_commits() {
        let d = dev();
        {
            let g = d.create_region_guarded("tmp");
            d.alloc_pages(g.id(), 3).unwrap();
            assert_eq!(d.used_pages(), 3);
        }
        assert_eq!(d.used_pages(), 0, "dropped guard frees pages");
        let g = d.create_region_guarded("kept");
        d.alloc_pages(g.id(), 2).unwrap();
        let region = g.commit();
        assert_eq!(d.used_pages(), 2);
        assert!(d.region_usage(region).is_ok());
    }

    #[test]
    fn alloc_and_free_track_usage() {
        let d = dev();
        let r = d.create_region("r");
        let pages = d.alloc_pages(r, 10).unwrap();
        assert_eq!(d.used_pages(), 10);
        assert_eq!(d.free_pages(), 54);
        d.free_page(pages[3]).unwrap();
        assert_eq!(d.used_pages(), 9);
        // Freed slot is recycled.
        let p = d.alloc_page(r).unwrap();
        assert_eq!(p, pages[3]);
    }

    #[test]
    fn alloc_is_all_or_nothing() {
        let d = dev();
        let r = d.create_region("r");
        let err = d.alloc_pages(r, 65).unwrap_err();
        assert_eq!(
            err,
            CxlError::OutOfDeviceMemory {
                requested: 65,
                available: 64
            }
        );
        assert_eq!(d.used_pages(), 0);
    }

    #[test]
    fn alloc_into_missing_region_fails() {
        let d = dev();
        let bogus = RegionId(99);
        assert_eq!(d.alloc_page(bogus).unwrap_err(), CxlError::BadRegion(bogus));
    }

    #[test]
    fn fresh_pages_are_zeroed_even_after_reuse() {
        let d = dev();
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        d.write(p, 0, &[0xFF; 8], NodeId(0)).unwrap();
        d.free_page(p).unwrap();
        let p2 = d.alloc_page(r).unwrap();
        assert_eq!(p2, p);
        let mut buf = [0xAAu8; 8];
        d.read(p2, 0, &mut buf, NodeId(0)).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn cross_node_visibility() {
        let d = dev();
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        d.write_page(p, PageData::pattern(5), NodeId(0)).unwrap();
        assert_eq!(d.read_page(p, NodeId(1)).unwrap(), PageData::pattern(5));
    }

    #[test]
    fn destroy_region_frees_all_its_pages_only() {
        let d = dev();
        let ra = d.create_region("a");
        let rb = d.create_region("b");
        let pa = d.alloc_pages(ra, 5).unwrap();
        let pb = d.alloc_pages(rb, 3).unwrap();
        assert_eq!(d.destroy_region(ra).unwrap(), 5);
        assert_eq!(d.used_pages(), 3);
        assert_eq!(d.fingerprint(pa[0]).unwrap_err(), CxlError::BadPage(pa[0]));
        assert!(d.fingerprint(pb[0]).is_ok());
        // Region gone.
        assert!(d.region_usage(ra).is_err());
        assert_eq!(d.region_usage(rb).unwrap().pages, 3);
    }

    #[test]
    fn stats_count_per_node_traffic() {
        let d = dev();
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        d.write(p, 0, &[1, 2, 3], NodeId(0)).unwrap();
        let mut buf = [0u8; 2];
        d.read(p, 0, &mut buf, NodeId(1)).unwrap();
        d.read(p, 0, &mut buf, NodeId(1)).unwrap();
        let s = d.stats();
        assert_eq!(s.writes[&NodeId(0)], 1);
        assert_eq!(s.bytes_written[&NodeId(0)], 3);
        assert_eq!(s.reads[&NodeId(1)], 2);
        assert_eq!(s.bytes_read[&NodeId(1)], 4);
        assert_eq!(s.total_reads(), 2);
        d.reset_stats();
        assert_eq!(d.stats().total_reads(), 0);
    }

    #[test]
    fn utilization_and_alloc_bytes() {
        let d = dev();
        let r = d.create_region("r");
        let pages = d.alloc_bytes(r, PAGE_SIZE * 3 + 1).unwrap();
        assert_eq!(pages.len(), 4);
        assert!((d.utilization() - 4.0 / 64.0).abs() < 1e-12);
        assert!(d.alloc_bytes(r, 0).unwrap().is_empty());
    }

    #[test]
    fn device_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CxlDevice>();
    }

    #[test]
    fn staged_regions_commit_atomically() {
        let d = dev();
        let r = d.create_region_staged("staging", NodeId(3), 7);
        d.alloc_pages(r, 2).unwrap();
        assert_eq!(d.region_committed(r), Some(false));
        let staged = d.staging_regions();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].owner, NodeId(3));
        assert_eq!(staged[0].epoch, 7);
        assert_eq!(staged[0].pages, 2);
        d.commit_region(r).unwrap();
        assert_eq!(d.region_committed(r), Some(true));
        assert!(d.staging_regions().is_empty());
        // Idempotent; plain regions are born committed.
        d.commit_region(r).unwrap();
        assert_eq!(d.region_committed(d.create_region("plain")), Some(true));
        assert_eq!(d.region_committed(RegionId(99)), None);
        assert_eq!(
            d.commit_region(RegionId(99)).unwrap_err(),
            CxlError::BadRegion(RegionId(99))
        );
    }

    #[test]
    fn abandoned_staged_guard_leaves_orphan_behind() {
        let d = dev();
        let region = {
            let g = d.create_region_staged_guarded("staging", NodeId(1), 4);
            d.alloc_pages(g.id(), 3).unwrap();
            g.abandon()
        };
        assert_eq!(d.used_pages(), 3, "abandon keeps pages");
        assert_eq!(d.region_committed(region), Some(false));
        assert_eq!(d.staging_regions().len(), 1);
    }

    #[derive(Debug)]
    struct FailNthRead {
        countdown: std::sync::Mutex<u64>,
    }

    impl FaultHook for FailNthRead {
        fn inject(
            &self,
            op: DeviceOp,
            _page: Option<CxlPageId>,
            _node: NodeId,
        ) -> Option<CxlError> {
            if op != DeviceOp::Read {
                return None;
            }
            let mut n = self.countdown.lock().unwrap();
            if *n == 0 {
                *n = u64::MAX; // fire once
                Some(CxlError::Transient { op: op.name() })
            } else {
                *n -= 1;
                None
            }
        }
    }

    #[test]
    fn fault_hook_vetoes_operations_and_unhooks_cleanly() {
        let d = dev();
        let r = d.create_region("r");
        let p = d.alloc_page(r).unwrap();
        d.set_fault_hook(Some(Arc::new(FailNthRead {
            countdown: std::sync::Mutex::new(1),
        })));
        assert!(d.read_page(p, NodeId(0)).is_ok(), "first read passes");
        assert_eq!(
            d.read_page(p, NodeId(0)).unwrap_err(),
            CxlError::Transient { op: "read" }
        );
        assert!(d.read_page(p, NodeId(0)).is_ok(), "hook fires once");
        d.set_fault_hook(None);
        assert!(d.read_page(p, NodeId(0)).is_ok());
    }
}
