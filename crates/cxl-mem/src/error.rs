//! Error type for CXL device operations.

use std::error::Error;
use std::fmt;

use crate::{CxlPageId, RegionId};

/// Errors returned by [`CxlDevice`](crate::CxlDevice) and
/// [`CxlFs`](crate::CxlFs) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CxlError {
    /// The device has no free pages left for the requested allocation.
    OutOfDeviceMemory {
        /// Pages the caller asked for.
        requested: u64,
        /// Pages currently free on the device.
        available: u64,
    },
    /// The page id does not name a live page (never allocated, or freed).
    BadPage(CxlPageId),
    /// The region id does not name a live region.
    BadRegion(RegionId),
    /// A filesystem path was not found.
    FileNotFound(String),
    /// A filesystem path already exists and overwrite was not requested.
    FileExists(String),
    /// The page's media reported an uncorrectable (poison/ECC) error.
    /// Permanent: retrying the access cannot succeed.
    Poisoned(CxlPageId),
    /// A transient fabric/link error (CRC retry exhaustion, credit stall).
    /// The operation may succeed if retried; see
    /// [`CxlError::is_transient`].
    Transient {
        /// The device operation that hit the link error.
        op: &'static str,
    },
}

impl CxlError {
    /// Whether the error is worth retrying (transient link faults are;
    /// poison, bad handles and exhaustion are not).
    pub fn is_transient(&self) -> bool {
        matches!(self, CxlError::Transient { .. })
    }
}

impl fmt::Display for CxlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CxlError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "out of CXL device memory: requested {requested} pages, {available} free"
            ),
            CxlError::BadPage(p) => write!(f, "no such CXL page: {p}"),
            CxlError::BadRegion(r) => write!(f, "no such CXL region: {r}"),
            CxlError::FileNotFound(p) => write!(f, "no such file on CXL fs: {p}"),
            CxlError::FileExists(p) => write!(f, "file already exists on CXL fs: {p}"),
            CxlError::Poisoned(p) => write!(f, "uncorrectable (poisoned) CXL page: {p}"),
            CxlError::Transient { op } => {
                write!(f, "transient CXL link error during {op}")
            }
        }
    }
}

impl Error for CxlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CxlError::OutOfDeviceMemory {
            requested: 8,
            available: 2,
        };
        assert_eq!(
            e.to_string(),
            "out of CXL device memory: requested 8 pages, 2 free"
        );
        assert!(CxlError::BadPage(CxlPageId(3)).to_string().contains("pfn"));
        assert!(CxlError::FileNotFound("a/b".into())
            .to_string()
            .contains("a/b"));
    }

    #[test]
    fn only_link_errors_are_transient() {
        assert!(CxlError::Transient { op: "read" }.is_transient());
        assert!(!CxlError::Poisoned(CxlPageId(1)).is_transient());
        assert!(!CxlError::BadPage(CxlPageId(1)).is_transient());
        assert!(!CxlError::OutOfDeviceMemory {
            requested: 1,
            available: 0
        }
        .is_transient());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CxlError>();
    }
}
