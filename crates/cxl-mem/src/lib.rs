//! A simulated CXL 3.0 fabric-attached shared memory device.
//!
//! This crate models the memory device CXLfork checkpoints to: a
//! byte-addressable pool of 4 KiB pages that every node in the cluster can
//! map and access coherently, addressed by **device-stable page numbers**
//! ([`CxlPageId`]) and byte offsets ([`CxlOffset`]) that mean the same thing
//! on every node — the property CXLfork's pointer *rebase* (§4.1) depends
//! on.
//!
//! What is real and what is modelled:
//!
//! * Page *contents* are real ([`PageData`]): copy-on-write isolation,
//!   checkpoint immutability, and cross-node sharing are functionally
//!   verified by byte comparison, not assumed. Contents use a compact
//!   zero/pattern/bytes representation so that multi-gigabyte simulated
//!   footprints do not cost multi-gigabyte host memory.
//! * Access *latency* is modelled by the caller using
//!   [`simclock::LatencyModel`]; the device records access counts per node
//!   so that bandwidth/locality experiments can be reported.
//!
//! The device also hosts:
//!
//! * **Regions** ([`RegionId`]): named page groups used for whole-checkpoint
//!   accounting and reclamation (CXLporter reclaims checkpoints under CXL
//!   memory pressure, §5).
//! * **An in-CXL shared filesystem** ([`CxlFs`]): the CRIU-CXL baseline
//!   serializes its image files onto this filesystem, exactly like the
//!   paper's evaluation setup (§6.2 "in-CXL-memory filesystem shared
//!   between the two VMs").
//!
//! # Example
//!
//! ```
//! use cxl_mem::{CxlDevice, NodeId};
//!
//! # fn main() -> Result<(), cxl_mem::CxlError> {
//! let dev = CxlDevice::with_capacity_mib(64);
//! let region = dev.create_region("checkpoint:bert");
//! let page = dev.alloc_page(region)?;
//! dev.write(page, 128, &[0xAB; 16], NodeId(0))?;
//! let mut buf = [0u8; 16];
//! dev.read(page, 128, &mut buf, NodeId(1))?;
//! assert_eq!(buf, [0xAB; 16]); // node 1 sees node 0's write
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod fabric;
mod fs;
mod ids;
mod injection;
pub mod lockdep;
mod page;

pub use device::{
    CxlDevice, CxlDeviceStats, RegionGuard, RegionKind, RegionUsage, ShardUsage, StagingRegion,
    DEFAULT_SHARDS, MAX_SHARDS,
};
pub use error::CxlError;
pub use fabric::FabricLink;
pub use fs::{CxlFile, CxlFs};
pub use ids::{CxlOffset, CxlPageId, NodeId, RegionId};
pub use injection::{DeviceOp, FaultHook};
pub use page::PageData;

/// Size of one device page in bytes (shared constant, re-exported from
/// [`simclock`]).
pub const PAGE_SIZE: u64 = simclock::PAGE_SIZE;
