//! Fabric attachment point for the device.
//!
//! The device itself has no notion of bandwidth: a [`FabricLink`]
//! installed via [`CxlDevice::attach_fabric`](crate::CxlDevice::attach_fabric)
//! is charged after each batched transfer and answers with the queueing
//! delay the transfer experienced on its switch port(s). With no fabric
//! attached the check is a single relaxed atomic load and the delay is
//! exactly [`SimDuration::ZERO`] — the flat calibrated round-trip model
//! survives bit-for-bit. The stateful topology (sliding-window credit
//! accounting, multi-device switch) lives in `crates/cxl-fabric`;
//! keeping only the trait here keeps `cxl-mem` free of any policy
//! dependency, mirroring [`crate::FaultHook`].

use simclock::{SimDuration, SimTime};

/// One device's view of the shared fabric.
///
/// `charge_transfer` both *queries* and *records*: the returned delay is
/// computed from the bytes already in flight on the involved ports
/// **before** this transfer's own bytes are added, then the transfer is
/// recorded so later traffic sees it. An isolated transfer therefore
/// always sees zero delay, which is the zero-load calibration contract.
///
/// Implementations must be deterministic given the call sequence — the
/// simulator's reproducibility guarantee extends to fabric contention —
/// and must treat the link as a leaf lock (never call back into the
/// device).
pub trait FabricLink: Send + Sync + std::fmt::Debug {
    /// Charges one batched transfer issued by fabric-port-attached
    /// device `device` at virtual time `now`.
    ///
    /// `port_bytes[i]` is the byte count the transfer moves through the
    /// device's shard `i` (shards map onto switch ports modulo the
    /// port count). Returns the queueing delay the transfer suffers;
    /// an all-zero batch must cost zero and leave the link untouched.
    fn charge_transfer(&self, device: u32, now: SimTime, port_bytes: &[u64]) -> SimDuration;
}

/// A [`FabricLink`] plus this device's index on it, as installed by
/// [`CxlDevice::attach_fabric`](crate::CxlDevice::attach_fabric).
#[derive(Debug, Clone)]
pub(crate) struct FabricAttachment {
    pub(crate) link: std::sync::Arc<dyn FabricLink>,
    pub(crate) device_index: u32,
}
