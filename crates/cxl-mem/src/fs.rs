//! An in-CXL-memory shared filesystem.
//!
//! The CRIU-CXL baseline in the paper's evaluation "create[s] an
//! in-CXL-memory filesystem which [is] share[d] between the two VMs.
//! The first VM serializes checkpoint files on the shared filesystem,
//! which the second VM deserializes to clone a new function instance"
//! (§6.2). [`CxlFs`] is that filesystem: a flat path → file map whose
//! contents are stored in device pages, so capacity pressure and traffic
//! accounting flow through the [`CxlDevice`] like any other CXL user.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::lockdep::TrackedRwLock;

use crate::{CxlDevice, CxlError, CxlPageId, NodeId, RegionId, PAGE_SIZE};

/// Metadata for one file stored on the CXL filesystem.
#[derive(Debug, Clone)]
pub struct CxlFile {
    /// Device pages backing the file contents, in order.
    pages: Vec<CxlPageId>,
    /// Logical file length in bytes.
    len: u64,
}

impl CxlFile {
    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of device pages backing the file.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// A shared filesystem backed by CXL device pages.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cxl_mem::{CxlDevice, CxlFs, NodeId};
///
/// # fn main() -> Result<(), cxl_mem::CxlError> {
/// let dev = Arc::new(CxlDevice::with_capacity_mib(4));
/// let fs = CxlFs::new(Arc::clone(&dev));
/// fs.write_file("images/pages-1.img", b"serialized state", NodeId(0))?;
/// let data = fs.read_file("images/pages-1.img", NodeId(1))?;
/// assert_eq!(data, b"serialized state");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CxlFs {
    device: Arc<CxlDevice>,
    region: RegionId,
    files: TrackedRwLock<BTreeMap<String, CxlFile>>,
}

impl CxlFs {
    /// Mounts a fresh filesystem on `device`.
    pub fn new(device: Arc<CxlDevice>) -> Self {
        let region = device.create_region("cxlfs");
        CxlFs {
            device,
            region,
            files: TrackedRwLock::new("cxl_mem.fs", BTreeMap::new()),
        }
    }

    /// The device this filesystem lives on.
    pub fn device(&self) -> &Arc<CxlDevice> {
        &self.device
    }

    /// Creates or replaces `path` with `data`, written on behalf of `node`.
    ///
    /// # Errors
    ///
    /// [`CxlError::OutOfDeviceMemory`] if the device cannot back the file;
    /// in that case any previous version of the file is left intact.
    pub fn write_file(&self, path: &str, data: &[u8], node: NodeId) -> Result<(), CxlError> {
        let pages = self.device.alloc_bytes(self.region, data.len() as u64)?;
        for (i, page) in pages.iter().enumerate() {
            let start = i * PAGE_SIZE as usize;
            let end = (start + PAGE_SIZE as usize).min(data.len());
            self.device.write(*page, 0, &data[start..end], node)?;
        }
        let new = CxlFile {
            pages,
            len: data.len() as u64,
        };
        let old = self.files.write().insert(path.to_owned(), new);
        if let Some(old) = old {
            for p in old.pages {
                self.device.free_page(p)?;
            }
        }
        Ok(())
    }

    /// Reads the whole contents of `path` on behalf of `node`.
    ///
    /// # Errors
    ///
    /// [`CxlError::FileNotFound`] if the path does not exist.
    pub fn read_file(&self, path: &str, node: NodeId) -> Result<Vec<u8>, CxlError> {
        let file = self
            .files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| CxlError::FileNotFound(path.to_owned()))?;
        let mut out = vec![0u8; file.len as usize];
        for (i, page) in file.pages.iter().enumerate() {
            let start = i * PAGE_SIZE as usize;
            let end = (start + PAGE_SIZE as usize).min(out.len());
            self.device.read(*page, 0, &mut out[start..end], node)?;
        }
        Ok(out)
    }

    /// Returns the file metadata for `path`.
    ///
    /// # Errors
    ///
    /// [`CxlError::FileNotFound`] if the path does not exist.
    pub fn stat(&self, path: &str) -> Result<CxlFile, CxlError> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| CxlError::FileNotFound(path.to_owned()))
    }

    /// Removes `path`, freeing its device pages.
    ///
    /// # Errors
    ///
    /// [`CxlError::FileNotFound`] if the path does not exist.
    pub fn remove(&self, path: &str) -> Result<(), CxlError> {
        let file = self
            .files
            .write()
            .remove(path)
            .ok_or_else(|| CxlError::FileNotFound(path.to_owned()))?;
        for p in file.pages {
            self.device.free_page(p)?;
        }
        Ok(())
    }

    /// Removes every file whose path starts with `prefix`, returning how
    /// many were removed. Used to reclaim a whole checkpoint image
    /// directory.
    pub fn remove_prefix(&self, prefix: &str) -> Result<usize, CxlError> {
        let paths: Vec<String> = {
            let files = self.files.read();
            files
                .keys()
                .filter(|p| p.starts_with(prefix))
                .cloned()
                .collect()
        };
        for p in &paths {
            self.remove(p)?;
        }
        Ok(paths.len())
    }

    /// Lists paths under a prefix (sorted).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Total bytes stored across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|f| f.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> CxlFs {
        CxlFs::new(Arc::new(CxlDevice::with_capacity_mib(1)))
    }

    #[test]
    fn write_read_roundtrip_multi_page() {
        let fs = fs();
        let data: Vec<u8> = (0..PAGE_SIZE as usize * 2 + 100)
            .map(|i| (i % 251) as u8)
            .collect();
        fs.write_file("a", &data, NodeId(0)).unwrap();
        assert_eq!(fs.read_file("a", NodeId(1)).unwrap(), data);
        assert_eq!(fs.stat("a").unwrap().page_count(), 3);
        assert_eq!(fs.stat("a").unwrap().len(), data.len() as u64);
    }

    #[test]
    fn empty_file_is_valid() {
        let fs = fs();
        fs.write_file("empty", &[], NodeId(0)).unwrap();
        assert!(fs.stat("empty").unwrap().is_empty());
        assert_eq!(fs.read_file("empty", NodeId(0)).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overwrite_replaces_and_frees_old_pages() {
        let fs = fs();
        let used0 = fs.device().used_pages();
        fs.write_file("f", &[1u8; 8192], NodeId(0)).unwrap();
        assert_eq!(fs.device().used_pages(), used0 + 2);
        fs.write_file("f", &[2u8; 100], NodeId(0)).unwrap();
        assert_eq!(fs.device().used_pages(), used0 + 1);
        assert_eq!(fs.read_file("f", NodeId(0)).unwrap(), vec![2u8; 100]);
    }

    #[test]
    fn missing_file_errors() {
        let fs = fs();
        assert!(matches!(
            fs.read_file("nope", NodeId(0)),
            Err(CxlError::FileNotFound(_))
        ));
        assert!(fs.remove("nope").is_err());
        assert!(fs.stat("nope").is_err());
    }

    #[test]
    fn remove_frees_pages() {
        let fs = fs();
        fs.write_file("x", &[0u8; 4096], NodeId(0)).unwrap();
        let used = fs.device().used_pages();
        fs.remove("x").unwrap();
        assert_eq!(fs.device().used_pages(), used - 1);
    }

    #[test]
    fn remove_prefix_clears_image_directory() {
        let fs = fs();
        fs.write_file("ckpt/bert/pages.img", &[1; 10], NodeId(0))
            .unwrap();
        fs.write_file("ckpt/bert/mm.img", &[2; 10], NodeId(0))
            .unwrap();
        fs.write_file("ckpt/rnn/mm.img", &[3; 10], NodeId(0))
            .unwrap();
        assert_eq!(fs.list("ckpt/").len(), 3);
        assert_eq!(fs.remove_prefix("ckpt/bert/").unwrap(), 2);
        assert_eq!(fs.list("ckpt/"), vec!["ckpt/rnn/mm.img".to_owned()]);
    }

    #[test]
    fn out_of_space_leaves_old_version_intact() {
        let dev = Arc::new(CxlDevice::new(2));
        let fs = CxlFs::new(Arc::clone(&dev));
        fs.write_file("f", &[7u8; 4096], NodeId(0)).unwrap();
        let err = fs
            .write_file("f", &vec![8u8; 3 * 4096], NodeId(0))
            .unwrap_err();
        assert!(matches!(err, CxlError::OutOfDeviceMemory { .. }));
        assert_eq!(fs.read_file("f", NodeId(0)).unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn total_bytes_sums_files() {
        let fs = fs();
        fs.write_file("a", &[0; 100], NodeId(0)).unwrap();
        fs.write_file("b", &[0; 50], NodeId(0)).unwrap();
        assert_eq!(fs.total_bytes(), 150);
    }
}
