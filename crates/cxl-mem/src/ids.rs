//! Identifier newtypes for the CXL device address space.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::PAGE_SIZE;

/// A compute node attached to the CXL fabric.
///
/// The evaluation platform models a two-node cluster (one VM per socket,
/// §6.1), but nothing in the simulation limits the node count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A device-stable page number on the CXL device.
///
/// Page numbers are the machine-independent currency of CXLfork checkpoints:
/// the rebase pass (§4.1) rewrites node-local frame numbers into
/// `CxlPageId`s so that any OS instance can dereference checkpointed
/// metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CxlPageId(pub u64);

impl CxlPageId {
    /// The byte offset of the start of this page on the device.
    #[inline]
    pub const fn offset(self) -> CxlOffset {
        CxlOffset(self.0 * PAGE_SIZE)
    }
}

impl fmt::Display for CxlPageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cxl:pfn{:#x}", self.0)
    }
}

/// A byte offset into the CXL device's physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CxlOffset(pub u64);

impl CxlOffset {
    /// The page containing this offset.
    #[inline]
    pub const fn page(self) -> CxlPageId {
        CxlPageId(self.0 / PAGE_SIZE)
    }

    /// The offset within its page.
    #[inline]
    pub const fn in_page(self) -> u64 {
        self.0 % PAGE_SIZE
    }
}

impl fmt::Display for CxlOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cxl+{:#x}", self.0)
    }
}

/// A named group of device pages, used for checkpoint-granularity
/// accounting and reclamation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u64);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_offset_roundtrip() {
        let p = CxlPageId(5);
        assert_eq!(p.offset(), CxlOffset(5 * PAGE_SIZE));
        assert_eq!(p.offset().page(), p);
        assert_eq!(p.offset().in_page(), 0);
        let o = CxlOffset(5 * PAGE_SIZE + 17);
        assert_eq!(o.page(), p);
        assert_eq!(o.in_page(), 17);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(CxlPageId(16).to_string(), "cxl:pfn0x10");
        assert_eq!(CxlOffset(32).to_string(), "cxl+0x20");
        assert_eq!(RegionId(2).to_string(), "region#2");
    }
}
