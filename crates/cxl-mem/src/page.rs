//! Compact page contents.
//!
//! Simulated address spaces reach hundreds of megabytes per function
//! instance and the CXLporter experiments keep hundreds of instances alive,
//! so storing every 4 KiB page verbatim would cost the host real gigabytes.
//! [`PageData`] instead stores a page as one of:
//!
//! * `Zero` — an untouched, zero-filled page;
//! * `Pattern` — a page procedurally filled from a 64-bit seed (what the
//!   workload generators write);
//! * `Bytes` — a verbatim 4 KiB buffer, used as soon as a caller writes
//!   arbitrary data.
//!
//! All three compare by *content*, so tests can verify copy-on-write
//! isolation and checkpoint immutability by byte equality regardless of
//! representation.

use std::fmt;

use crate::PAGE_SIZE;

/// The contents of one 4 KiB page.
///
/// # Example
///
/// ```
/// use cxl_mem::PageData;
///
/// let mut page = PageData::pattern(42);
/// let before = page.byte_at(100);
/// page.write(100, &[before ^ 0xFF]);
/// assert_ne!(page, PageData::pattern(42));
/// let mut copy = page.clone();
/// copy.write(0, &[1, 2, 3]);
/// assert_ne!(copy, page); // copies are independent
/// ```
#[derive(Clone, Default)]
pub enum PageData {
    /// A zero-filled page.
    #[default]
    Zero,
    /// A page deterministically filled from a seed.
    Pattern {
        /// The fill seed; byte `i` is `mix(seed, i)`.
        seed: u64,
    },
    /// A verbatim page.
    Bytes(Box<[u8]>),
}

impl PageData {
    /// A fresh zero page.
    pub const fn zeroed() -> Self {
        PageData::Zero
    }

    /// A page filled from `seed`.
    pub const fn pattern(seed: u64) -> Self {
        PageData::Pattern { seed }
    }

    /// A page initialized from up to [`PAGE_SIZE`] literal bytes
    /// (zero-padded).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than a page.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() as u64 <= PAGE_SIZE,
            "page literal of {} bytes exceeds page size",
            bytes.len()
        );
        let mut buf = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
        buf[..bytes.len()].copy_from_slice(bytes);
        PageData::Bytes(buf)
    }

    #[inline]
    fn pattern_byte(seed: u64, index: u64) -> u8 {
        // SplitMix64-style mix of (seed, index); cheap and well distributed.
        let mut z = seed ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as u8
    }

    /// The byte at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= PAGE_SIZE`.
    #[inline]
    pub fn byte_at(&self, index: u64) -> u8 {
        assert!(index < PAGE_SIZE, "byte index {index} out of page");
        match self {
            PageData::Zero => 0,
            PageData::Pattern { seed } => Self::pattern_byte(*seed, index),
            PageData::Bytes(b) => b[index as usize],
        }
    }

    /// Copies `buf.len()` bytes starting at `offset` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range `offset..offset + buf.len()` leaves the page.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let end = offset + buf.len() as u64;
        assert!(end <= PAGE_SIZE, "read range {offset}..{end} out of page");
        match self {
            PageData::Zero => buf.fill(0),
            PageData::Pattern { seed } => {
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = Self::pattern_byte(*seed, offset + i as u64);
                }
            }
            PageData::Bytes(bytes) => {
                buf.copy_from_slice(&bytes[offset as usize..end as usize]);
            }
        }
    }

    /// Writes `data` starting at `offset`, upgrading the representation to
    /// `Bytes` if needed.
    ///
    /// # Panics
    ///
    /// Panics if the range `offset..offset + data.len()` leaves the page.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        let end = offset + data.len() as u64;
        assert!(end <= PAGE_SIZE, "write range {offset}..{end} out of page");
        if data.is_empty() {
            return;
        }
        // Whole-page writes and pattern-preserving fast paths.
        let bytes = match self {
            PageData::Bytes(b) => b,
            other => {
                let mut buf = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
                other.read(0, &mut buf);
                *other = PageData::Bytes(buf);
                match other {
                    PageData::Bytes(b) => b,
                    _ => unreachable!("just upgraded to Bytes"),
                }
            }
        };
        bytes[offset as usize..end as usize].copy_from_slice(data);
    }

    /// Replaces the entire page content with a pattern fill, keeping the
    /// compact representation. This is what workload generators use to
    /// "dirty" a page cheaply.
    pub fn fill_pattern(&mut self, seed: u64) {
        *self = PageData::Pattern { seed };
    }

    /// Approximate host-memory footprint of this representation, in bytes.
    /// Used only for simulator self-diagnostics, never for experiment
    /// accounting (experiments always account full pages).
    pub fn host_footprint(&self) -> usize {
        match self {
            PageData::Zero | PageData::Pattern { .. } => std::mem::size_of::<PageData>(),
            PageData::Bytes(_) => std::mem::size_of::<PageData>() + PAGE_SIZE as usize,
        }
    }

    /// A 64-bit content fingerprint: FNV-1a over all 4096 logical bytes,
    /// independent of the storage representation (two content-equal pages
    /// always fingerprint identically).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        match self {
            PageData::Bytes(b) => {
                for &byte in b.iter() {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
            other => {
                for i in 0..PAGE_SIZE {
                    h ^= u64::from(other.byte_at(i));
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
        h
    }
}

impl PartialEq for PageData {
    /// Content equality: two pages are equal iff all 4096 bytes are equal,
    /// regardless of representation.
    fn eq(&self, other: &Self) -> bool {
        use PageData::*;
        match (self, other) {
            (Zero, Zero) => true,
            (Pattern { seed: a }, Pattern { seed: b }) if a == b => true,
            _ => (0..PAGE_SIZE).all(|i| self.byte_at(i) == other.byte_at(i)),
        }
    }
}

impl Eq for PageData {}

impl fmt::Debug for PageData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageData::Zero => write!(f, "PageData::Zero"),
            PageData::Pattern { seed } => write!(f, "PageData::Pattern({seed:#x})"),
            PageData::Bytes(b) => write!(
                f,
                "PageData::Bytes[{:02x}{:02x}{:02x}{:02x}..]",
                b[0], b[1], b[2], b[3]
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_page_reads_zero() {
        let p = PageData::zeroed();
        let mut buf = [0xFFu8; 8];
        p.read(100, &mut buf);
        assert_eq!(buf, [0u8; 8]);
        assert_eq!(p.byte_at(PAGE_SIZE - 1), 0);
    }

    #[test]
    fn pattern_is_deterministic_and_nontrivial() {
        let p = PageData::pattern(7);
        let q = PageData::pattern(7);
        assert_eq!(p, q);
        // Different seeds should (overwhelmingly) produce different bytes
        // somewhere early in the page.
        let r = PageData::pattern(8);
        assert_ne!(p, r);
        // Not all bytes identical.
        let first = p.byte_at(0);
        assert!((1..64).any(|i| p.byte_at(i) != first));
    }

    #[test]
    fn write_upgrades_and_preserves_other_bytes() {
        let mut p = PageData::pattern(3);
        let keep = p.byte_at(0);
        let sentinel = p.byte_at(512);
        p.write(256, &[9, 9, 9]);
        assert_eq!(p.byte_at(0), keep);
        assert_eq!(p.byte_at(512), sentinel);
        assert_eq!(p.byte_at(257), 9);
        assert!(matches!(p, PageData::Bytes(_)));
    }

    #[test]
    fn empty_write_does_not_upgrade() {
        let mut p = PageData::pattern(3);
        p.write(0, &[]);
        assert!(matches!(p, PageData::Pattern { .. }));
    }

    #[test]
    fn content_equality_crosses_representations() {
        let zero_bytes = PageData::from_bytes(&[]);
        assert_eq!(zero_bytes, PageData::Zero);
        let mut pat_as_bytes = PageData::pattern(11);
        pat_as_bytes.write(0, &[pat_as_bytes.byte_at(0)]); // force upgrade, same content
        assert_eq!(pat_as_bytes, PageData::pattern(11));
    }

    #[test]
    fn clone_is_independent() {
        let mut a = PageData::from_bytes(&[1, 2, 3]);
        let b = a.clone();
        a.write(0, &[9]);
        assert_eq!(b.byte_at(0), 1);
        assert_eq!(a.byte_at(0), 9);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut p = PageData::zeroed();
        let data: Vec<u8> = (0..64).map(|i| i as u8 ^ 0x5A).collect();
        p.write(1000, &data);
        let mut out = vec![0u8; 64];
        p.read(1000, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn write_past_end_panics() {
        let mut p = PageData::zeroed();
        p.write(PAGE_SIZE - 2, &[0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn read_past_end_panics() {
        let p = PageData::zeroed();
        let mut buf = [0u8; 4];
        p.read(PAGE_SIZE - 1, &mut buf);
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        assert_ne!(
            PageData::pattern(1).fingerprint(),
            PageData::pattern(2).fingerprint()
        );
        assert_ne!(
            PageData::Zero.fingerprint(),
            PageData::from_bytes(&[1]).fingerprint()
        );
        assert_eq!(
            PageData::from_bytes(&[1, 2]).fingerprint(),
            PageData::from_bytes(&[1, 2]).fingerprint()
        );
    }

    #[test]
    fn host_footprint_reflects_representation() {
        assert!(PageData::Zero.host_footprint() < 64);
        assert!(PageData::from_bytes(&[1]).host_footprint() >= PAGE_SIZE as usize);
    }
}
