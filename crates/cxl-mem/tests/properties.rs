//! Property-based tests for page contents and device allocation
//! invariants.

use proptest::prelude::*;

use cxl_mem::{CxlDevice, CxlError, NodeId, PageData, PAGE_SIZE};

proptest! {
    /// PageData behaves exactly like a reference 4096-byte array under any
    /// interleaving of reads and writes.
    #[test]
    fn page_data_matches_reference_model(
        seed in any::<u64>(),
        writes in prop::collection::vec(
            (0u64..PAGE_SIZE, prop::collection::vec(any::<u8>(), 1..32)),
            0..24
        ),
        probes in prop::collection::vec(0u64..PAGE_SIZE, 1..32),
    ) {
        let mut page = PageData::pattern(seed);
        let mut reference = vec![0u8; PAGE_SIZE as usize];
        page.read(0, &mut reference); // capture the pattern

        for (offset, data) in &writes {
            let len = data.len().min((PAGE_SIZE - offset) as usize);
            page.write(*offset, &data[..len]);
            reference[*offset as usize..*offset as usize + len]
                .copy_from_slice(&data[..len]);
        }
        for p in probes {
            prop_assert_eq!(page.byte_at(p), reference[p as usize]);
        }
        // Content equality with a from-scratch byte page.
        prop_assert_eq!(&page, &PageData::from_bytes(&reference));
        prop_assert_eq!(page.fingerprint(), PageData::from_bytes(&reference).fingerprint());
    }

    /// Random alloc/free sequences keep the device's usage accounting
    /// exact and never hand out the same live page twice.
    #[test]
    fn device_accounting_is_exact(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let device = CxlDevice::new(64);
        let region = device.create_region("prop");
        let mut live = Vec::new();
        for op in ops {
            if op {
                match device.alloc_page(region) {
                    Ok(p) => {
                        prop_assert!(!live.contains(&p), "double allocation of {p}");
                        live.push(p);
                    }
                    Err(CxlError::OutOfDeviceMemory { .. }) => {
                        prop_assert_eq!(live.len() as u64, 64);
                    }
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            } else if let Some(p) = live.pop() {
                device.free_page(p).unwrap();
            }
            prop_assert_eq!(device.used_pages(), live.len() as u64);
            prop_assert_eq!(device.free_pages(), 64 - live.len() as u64);
        }
        prop_assert_eq!(device.region_usage(region).unwrap().pages, live.len() as u64);
    }

    /// Writes by one node are always visible to every other node, and
    /// freed+reallocated pages never leak stale contents.
    #[test]
    fn cross_node_coherence_and_zeroing(
        values in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let device = CxlDevice::new(8);
        let region = device.create_region("coherence");
        let page = device.alloc_page(region).unwrap();
        for (i, v) in values.iter().enumerate() {
            let writer = NodeId((i % 4) as u32);
            let reader = NodeId(((i + 1) % 4) as u32);
            device.write(page, 100, &[*v], writer).unwrap();
            let mut buf = [0u8; 1];
            device.read(page, 100, &mut buf, reader).unwrap();
            prop_assert_eq!(buf[0], *v);
        }
        device.free_page(page).unwrap();
        let fresh = device.alloc_page(region).unwrap();
        let mut buf = [0xFFu8; 4];
        device.read(fresh, 100, &mut buf, NodeId(0)).unwrap();
        prop_assert_eq!(buf, [0u8; 4]);
    }
}
