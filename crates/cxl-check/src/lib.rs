//! Cross-layer invariant checker for the simulated memory system.
//!
//! The simulation spreads one logical fact — "who owns this page" — over
//! four data structures on different layers: page-table entries
//! ([`node_os::page_table::PageTable`]), the refcounting frame allocator
//! ([`node_os::frame::FrameAllocator`]), the per-node page cache
//! ([`node_os::pagecache::PageCache`]) and the shared device's region map
//! ([`cxl_mem::CxlDevice`]). Each layer keeps its own books; a bug in any
//! fork, restore or reclamation path shows up as the books disagreeing
//! long before it corrupts an observable result. This crate audits the
//! books against each other and returns every disagreement as a typed
//! [`Violation`] — it never panics on a broken invariant, so tests can
//! assert on the exact violation class they seeded.
//!
//! Three checkers live here:
//!
//! * [`audit`] — walks a [`node_os::Node`] (PTEs ↔ frame refcounts ↔ page
//!   cache ↔ VMAs) and a [`cxl_mem::CxlDevice`] (slab ↔ region
//!   accounting), cross-validating every reference.
//! * [`seal`] — a [`SealRegistry`] records content fingerprints of every
//!   device page a checkpoint owns at seal time and re-verifies them
//!   after restores, catching in-place mutation of "immutable"
//!   checkpoints.
//! * [`lockorder`] — DFS cycle detection over the lock-order graph that
//!   [`cxl_mem::lockdep`] records under the `check` cargo feature,
//!   lockdep-style: a cycle is a potential deadlock even if the unlucky
//!   interleaving never ran.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use cxl_mem::{CxlPageId, NodeId, RegionId};
use node_os::{Pfn, Pid};

pub mod audit;
pub mod lockorder;
pub mod seal;

pub use audit::{
    audit_device, audit_device_with_live, audit_journal, audit_node, audit_staging, audit_store,
    NodeAudit,
};
pub use lockorder::{check_lock_order, lock_order_cycles};
pub use seal::SealRegistry;

/// One detected cross-layer invariant violation.
///
/// Violations are data, not panics: auditors return every disagreement
/// they find so negative tests can assert on the exact class they seeded
/// and production callers can log or fail as they prefer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A PTE targets a local frame the allocator says is dead.
    DanglingLocalPte {
        /// Node the process runs on.
        node: NodeId,
        /// Owning process.
        pid: Pid,
        /// Virtual page number of the entry.
        vpn: u64,
        /// The dead frame.
        pfn: Pfn,
    },
    /// A PTE (present or armed) targets a CXL page the device says is
    /// free.
    DanglingCxlPte {
        /// Node the process runs on.
        node: NodeId,
        /// Owning process.
        pid: Pid,
        /// Virtual page number of the entry.
        vpn: u64,
        /// The freed device page.
        page: CxlPageId,
    },
    /// A checkpoint backing map references a CXL page the device says is
    /// free (the checkpoint was reclaimed under a live restore).
    DanglingBackingPage {
        /// Node the process runs on.
        node: NodeId,
        /// Owning process.
        pid: Pid,
        /// Virtual page number of the backing entry.
        vpn: u64,
        /// The freed device page.
        page: CxlPageId,
    },
    /// The page cache holds a frame the allocator says is dead.
    DanglingCacheEntry {
        /// Node whose cache is broken.
        node: NodeId,
        /// Cached file path.
        path: String,
        /// Page index within the file.
        file_page: u64,
        /// The dead frame.
        pfn: Pfn,
    },
    /// A frame's refcount disagrees with the number of references the
    /// audit can account for (PTEs + page-cache entries + declared
    /// external pins).
    RefcountSkew {
        /// Node owning the frame.
        node: NodeId,
        /// The frame.
        pfn: Pfn,
        /// Refcount the allocator reports.
        actual: u32,
        /// References the audit counted.
        expected: u32,
    },
    /// A live frame with no accountable reference at all — local memory
    /// that can never be reclaimed.
    FrameLeak {
        /// Node owning the frame.
        node: NodeId,
        /// The leaked frame.
        pfn: Pfn,
        /// Refcount the allocator still reports.
        refcount: u32,
    },
    /// A writable present mapping of a frame shared with other references
    /// — a store through it would be visible to every sharer, breaking
    /// copy-on-write isolation.
    WritableSharedFrame {
        /// Node the process runs on.
        node: NodeId,
        /// Owning process.
        pid: Pid,
        /// Virtual page number of the writable mapping.
        vpn: u64,
        /// The shared frame.
        pfn: Pfn,
        /// Its refcount (> 1).
        refcount: u32,
    },
    /// A PTE with both `COW` and `WRITABLE` set — contradictory flags
    /// that make a write skip its copy.
    CowWritablePte {
        /// Node the process runs on.
        node: NodeId,
        /// Owning process.
        pid: Pid,
        /// Virtual page number of the entry.
        vpn: u64,
    },
    /// A populated PTE at an address no VMA covers — `munmap` tore down
    /// the area but left the translation behind.
    PteOutsideVma {
        /// Node the process runs on.
        node: NodeId,
        /// Owning process.
        pid: Pid,
        /// Virtual page number of the stray entry.
        vpn: u64,
    },
    /// The device's `used_pages` counter disagrees with its page slab.
    DeviceAccounting {
        /// What `used_pages()` reports.
        counted: u64,
        /// Live slots actually in the slab.
        live: u64,
    },
    /// A region's page counter disagrees with the slab pages that name it
    /// as their owner.
    RegionAccounting {
        /// The region.
        region: RegionId,
        /// What the region map records.
        counted: u64,
        /// Live slab pages owned by the region.
        live: u64,
    },
    /// A page-pool shard's `used_pages` counter disagrees with the live
    /// slab pages whose global ids fall inside its offset range.
    ShardAccounting {
        /// Shard index (ascending offset ranges).
        shard: usize,
        /// First global page id the shard owns.
        base_page: u64,
        /// What the shard's counter records.
        counted: u64,
        /// Live slab pages bucketed into the shard's range.
        live: u64,
    },
    /// The per-shard `used_pages` counters do not sum to the device-wide
    /// `used_pages` counter — the region-table books and the shard books
    /// have diverged.
    ShardSumSkew {
        /// What the device-wide `used_pages()` counter reports.
        counted: u64,
        /// Sum of the per-shard counters.
        shard_sum: u64,
    },
    /// A live device page whose owning region is gone from the region map
    /// — unreclaimable device memory.
    OrphanCxlPage {
        /// The orphaned page.
        page: CxlPageId,
        /// The region it still names as owner.
        region: RegionId,
    },
    /// A region that none of the declared live owners (checkpoints,
    /// stores) references — a leaked checkpoint.
    RegionLeak {
        /// The leaked region.
        region: RegionId,
        /// Region name given at creation.
        name: String,
        /// Pages still held.
        pages: u64,
    },
    /// A sealed checkpoint page whose content changed after seal time.
    SealMismatch {
        /// Region the seal covers.
        region: RegionId,
        /// The mutated page.
        page: CxlPageId,
        /// Fingerprint recorded at seal time.
        expected: u64,
        /// Fingerprint observed now.
        actual: u64,
    },
    /// A sealed checkpoint page that is no longer live on the device.
    SealMissingPage {
        /// Region the seal covers.
        region: RegionId,
        /// The freed page.
        page: CxlPageId,
    },
    /// A checkpoint-store content-index entry whose refcount disagrees
    /// with the image references the catalog can account for.
    ContentIndexSkew {
        /// Content fingerprint of the entry.
        fingerprint: u64,
        /// Device page the index maps the fingerprint to.
        page: CxlPageId,
        /// Refcount the index records.
        actual: u64,
        /// References counted across the image catalog (committed and
        /// pending images, with multiplicity).
        expected: u64,
    },
    /// A checkpoint-store content-index entry whose device page is gone,
    /// or whose stored content no longer hashes to the fingerprint that
    /// names it.
    DanglingIndexEntry {
        /// Content fingerprint the index records.
        fingerprint: u64,
        /// The dead or mutated device page.
        page: CxlPageId,
        /// Fingerprint of the page's current content (`None` if the
        /// page is no longer live on the device).
        observed: Option<u64>,
    },
    /// A cycle in the observed lock-order graph — a potential deadlock.
    LockOrderCycle {
        /// The lock classes forming the cycle, smallest class first; the
        /// last element acquires the first.
        cycle: Vec<&'static str>,
    },
    /// The store journal's committed stream is followed by a torn
    /// (unsealed or truncated) tail record. Recovery truncates torn
    /// tails; seeing one on a live store means a crashed append was
    /// never recovered — or no generation has a valid superblock at
    /// all (reported with zero `committed_bytes`).
    JournalTornTail {
        /// The journal generation's region.
        region: RegionId,
        /// Bytes of sealed, replayable records before the tear.
        committed_bytes: u64,
        /// Bytes of the torn tail record.
        torn_bytes: u64,
    },
    /// A content fingerprint whose journal-replayed reference count
    /// disagrees with the store's in-DRAM index — recovery (or a
    /// journaling bug) rebuilt different books than the store kept.
    RecoveryRefcountSkew {
        /// The fingerprint.
        fingerprint: u64,
        /// References the journal replay accounts for.
        journal_refs: u64,
        /// References the live index records.
        index_refs: u64,
    },
    /// An uncommitted checkpoint staging region whose owner is not in
    /// the live set — a torn checkpoint the lease GC failed to reclaim.
    OrphanStagingRegion {
        /// The orphaned staging region.
        region: RegionId,
        /// The (dead) owner recorded at creation.
        owner: cxl_mem::NodeId,
        /// The owner's checkpoint epoch.
        epoch: u64,
        /// Device pages stranded in the region.
        pages: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DanglingLocalPte {
                node,
                pid,
                vpn,
                pfn,
            } => write!(
                f,
                "{node} {pid}: pte at vpn{vpn:#x} targets dead frame {pfn}"
            ),
            Violation::DanglingCxlPte {
                node,
                pid,
                vpn,
                page,
            } => write!(
                f,
                "{node} {pid}: pte at vpn{vpn:#x} targets freed device page {page}"
            ),
            Violation::DanglingBackingPage {
                node,
                pid,
                vpn,
                page,
            } => write!(
                f,
                "{node} {pid}: backing map at vpn{vpn:#x} references freed device page {page}"
            ),
            Violation::DanglingCacheEntry {
                node,
                path,
                file_page,
                pfn,
            } => write!(
                f,
                "{node}: page cache entry {path}:{file_page} holds dead frame {pfn}"
            ),
            Violation::RefcountSkew {
                node,
                pfn,
                actual,
                expected,
            } => write!(
                f,
                "{node}: frame {pfn} refcount is {actual}, audit accounts for {expected}"
            ),
            Violation::FrameLeak {
                node,
                pfn,
                refcount,
            } => write!(
                f,
                "{node}: frame {pfn} is live (refcount {refcount}) with no accountable reference"
            ),
            Violation::WritableSharedFrame {
                node,
                pid,
                vpn,
                pfn,
                refcount,
            } => write!(
                f,
                "{node} {pid}: writable mapping at vpn{vpn:#x} of shared frame {pfn} \
                 (refcount {refcount})"
            ),
            Violation::CowWritablePte { node, pid, vpn } => write!(
                f,
                "{node} {pid}: pte at vpn{vpn:#x} is both COW and WRITABLE"
            ),
            Violation::PteOutsideVma { node, pid, vpn } => write!(
                f,
                "{node} {pid}: populated pte at vpn{vpn:#x} outside every vma"
            ),
            Violation::DeviceAccounting { counted, live } => write!(
                f,
                "device: used_pages says {counted} but the slab holds {live} live pages"
            ),
            Violation::RegionAccounting {
                region,
                counted,
                live,
            } => write!(
                f,
                "device: {region} records {counted} pages but owns {live} live slab pages"
            ),
            Violation::ShardAccounting {
                shard,
                base_page,
                counted,
                live,
            } => write!(
                f,
                "device: shard {shard} (base page {base_page}) records {counted} used pages \
                 but {live} live pages fall in its range"
            ),
            Violation::ShardSumSkew { counted, shard_sum } => write!(
                f,
                "device: used_pages says {counted} but the shard counters sum to {shard_sum}"
            ),
            Violation::OrphanCxlPage { page, region } => write!(
                f,
                "device: live page {page} names destroyed {region} as owner"
            ),
            Violation::RegionLeak {
                region,
                name,
                pages,
            } => write!(
                f,
                "device: {region} ({name:?}, {pages} pages) is referenced by no live owner"
            ),
            Violation::SealMismatch {
                region,
                page,
                expected,
                actual,
            } => write!(
                f,
                "seal {region}: page {page} fingerprint {actual:#018x}, sealed as {expected:#018x}"
            ),
            Violation::SealMissingPage { region, page } => {
                write!(f, "seal {region}: sealed page {page} is no longer live")
            }
            Violation::ContentIndexSkew {
                fingerprint,
                page,
                actual,
                expected,
            } => write!(
                f,
                "store: index entry {fingerprint:#018x} ({page}) records {actual} refs, \
                 catalog accounts for {expected}"
            ),
            Violation::DanglingIndexEntry {
                fingerprint,
                page,
                observed,
            } => match observed {
                Some(observed) => write!(
                    f,
                    "store: index entry {fingerprint:#018x} maps to {page} whose content \
                     hashes to {observed:#018x}"
                ),
                None => write!(
                    f,
                    "store: index entry {fingerprint:#018x} maps to dead device page {page}"
                ),
            },
            Violation::LockOrderCycle { cycle } => {
                write!(f, "lock-order cycle: ")?;
                for class in cycle {
                    write!(f, "{class} -> ")?;
                }
                write!(f, "{}", cycle.first().copied().unwrap_or("?"))
            }
            Violation::JournalTornTail {
                region,
                committed_bytes,
                torn_bytes,
            } => write!(
                f,
                "journal {region}: {torn_bytes} torn bytes after {committed_bytes} committed — \
                 a crashed append was never recovered"
            ),
            Violation::RecoveryRefcountSkew {
                fingerprint,
                journal_refs,
                index_refs,
            } => write!(
                f,
                "journal: fingerprint {fingerprint:#018x} replays to {journal_refs} refs, \
                 the live index records {index_refs}"
            ),
            Violation::OrphanStagingRegion {
                region,
                owner,
                epoch,
                pages,
            } => write!(
                f,
                "device: staging region {region} (owner {owner}, epoch {epoch}, {pages} pages) \
                 outlived its dead owner without reclamation"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = Violation::RefcountSkew {
            node: NodeId(0),
            pfn: Pfn(7),
            actual: 3,
            expected: 2,
        };
        let s = v.to_string();
        assert!(s.contains("refcount is 3"), "{s}");
        assert!(s.contains("accounts for 2"), "{s}");

        let c = Violation::LockOrderCycle {
            cycle: vec!["a", "b"],
        };
        assert_eq!(c.to_string(), "lock-order cycle: a -> b -> a");

        let s = Violation::ShardAccounting {
            shard: 3,
            base_page: 24,
            counted: 5,
            live: 4,
        }
        .to_string();
        assert!(s.contains("shard 3"), "{s}");
        assert!(s.contains("records 5"), "{s}");
        assert!(s.contains("4 live pages"), "{s}");
        let s = Violation::ShardSumSkew {
            counted: 9,
            shard_sum: 8,
        }
        .to_string();
        assert!(s.contains("says 9"), "{s}");
        assert!(s.contains("sum to 8"), "{s}");
    }
}
