//! Lock-order cycle detection (the analysis half of lockdep).
//!
//! [`cxl_mem::lockdep`] records one directed edge `held → acquired` for
//! every nested lock acquisition under the `check` feature. A cycle in
//! that graph means two code paths acquire some set of lock classes in
//! incompatible orders — a potential deadlock, reported even if the
//! unlucky thread interleaving never ran. This module finds every
//! elementary cycle reachable in the recorded graph with an iterative
//! DFS and reports each one once, as a [`Violation::LockOrderCycle`]
//! rotated to start at its lexicographically smallest class.

use std::collections::{BTreeMap, BTreeSet};

use crate::Violation;

/// Finds cycles in a lock-order edge list (as produced by
/// [`cxl_mem::lockdep::lock_order_edges`]).
///
/// Each distinct cycle is reported once, rotated to start at its
/// smallest class name. Self-edges (`a → a`, a class nested inside
/// itself) count as cycles of length one.
///
/// # Example
///
/// ```
/// let edges = [("a", "b"), ("b", "a"), ("b", "c")];
/// let cycles = cxl_check::lock_order_cycles(&edges);
/// assert_eq!(cycles.len(), 1); // a -> b -> a
/// ```
pub fn lock_order_cycles(edges: &[(&'static str, &'static str)]) -> Vec<Violation> {
    let mut graph: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
    for &(from, to) in edges {
        graph.entry(from).or_default().push(to);
        graph.entry(to).or_default();
    }

    // Iterative DFS with a gray (on-path) set: an edge back into the
    // current path closes a cycle. Visiting every node as a root and
    // deduplicating by canonical rotation reports each elementary cycle
    // that lockdep cares about exactly once.
    let mut seen: BTreeSet<Vec<&'static str>> = BTreeSet::new();
    let mut out = Vec::new();
    let mut black: BTreeSet<&'static str> = BTreeSet::new();

    for &root in graph.keys() {
        if black.contains(root) {
            continue;
        }
        let mut path: Vec<&'static str> = Vec::new();
        let mut on_path: BTreeSet<&'static str> = BTreeSet::new();
        // Stack of (node, next-successor index).
        let mut stack: Vec<(&'static str, usize)> = vec![(root, 0)];
        path.push(root);
        on_path.insert(root);

        while let Some((node, next)) = stack.last_mut() {
            let successors = &graph[node];
            if let Some(&succ) = successors.get(*next) {
                *next += 1;
                if on_path.contains(succ) {
                    // Close the cycle: the path suffix from `succ` on.
                    let start = path.iter().position(|&n| n == succ).expect("on path");
                    let cycle = canonical(&path[start..]);
                    if seen.insert(cycle.clone()) {
                        out.push(Violation::LockOrderCycle { cycle });
                    }
                } else if !black.contains(succ) {
                    stack.push((succ, 0));
                    path.push(succ);
                    on_path.insert(succ);
                }
            } else {
                black.insert(node);
                on_path.remove(node);
                path.pop();
                stack.pop();
            }
        }
    }
    out
}

/// Snapshots the globally recorded lock-order graph and returns any
/// cycles in it. Always empty when the `check` feature is off (nothing
/// is recorded).
pub fn check_lock_order() -> Vec<Violation> {
    lock_order_cycles(&cxl_mem::lockdep::lock_order_edges())
}

/// Rotates a cycle to start at its smallest element.
fn canonical(cycle: &[&'static str]) -> Vec<&'static str> {
    let pivot = cycle
        .iter()
        .enumerate()
        .min_by_key(|&(_, &name)| name)
        .map_or(0, |(i, _)| i);
    let mut rotated = Vec::with_capacity(cycle.len());
    rotated.extend_from_slice(&cycle[pivot..]);
    rotated.extend_from_slice(&cycle[..pivot]);
    rotated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_is_clean() {
        let edges = [("a", "b"), ("b", "c"), ("a", "c")];
        assert_eq!(lock_order_cycles(&edges), Vec::new());
        assert_eq!(lock_order_cycles(&[]), Vec::new());
    }

    #[test]
    fn two_cycle_is_found_once() {
        let edges = [("b", "a"), ("a", "b"), ("b", "c")];
        let cycles = lock_order_cycles(&edges);
        assert_eq!(
            cycles,
            vec![Violation::LockOrderCycle {
                cycle: vec!["a", "b"],
            }]
        );
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let cycles = lock_order_cycles(&[("a", "a")]);
        assert_eq!(cycles, vec![Violation::LockOrderCycle { cycle: vec!["a"] }]);
    }

    #[test]
    fn long_cycle_reported_canonically() {
        let edges = [("c", "d"), ("d", "b"), ("b", "c")];
        let cycles = lock_order_cycles(&edges);
        assert_eq!(
            cycles,
            vec![Violation::LockOrderCycle {
                cycle: vec!["b", "c", "d"],
            }]
        );
    }

    #[test]
    fn disjoint_cycles_each_reported() {
        let edges = [("a", "b"), ("b", "a"), ("x", "y"), ("y", "x")];
        assert_eq!(lock_order_cycles(&edges).len(), 2);
    }
}
