//! Checkpoint seal verification.
//!
//! A CXLfork checkpoint is immutable by design: restores attach or copy
//! its pages but never write them (§4.2.1 routes every OS update through
//! leaf-level CoW). The simulation can't make device pages physically
//! read-only, so the [`SealRegistry`] enforces immutability after the
//! fact — it records a content fingerprint of every page a checkpoint's
//! region owns at seal time (via [`CxlDevice::fingerprint`]) and
//! re-verifies them after restores and remote forks. A fingerprint
//! mismatch means some code path wrote through a sealed checkpoint; a
//! missing page means the checkpoint was (partially) reclaimed while
//! still sealed.

use std::collections::BTreeMap;

use cxl_mem::{CxlDevice, CxlError, CxlPageId, RegionId};

use crate::Violation;

/// Records the sealed fingerprints of checkpoint regions and re-verifies
/// them on demand.
///
/// # Example
///
/// ```
/// use cxl_mem::{CxlDevice, NodeId, PageData};
/// use cxl_check::SealRegistry;
///
/// # fn main() -> Result<(), cxl_mem::CxlError> {
/// let device = CxlDevice::with_capacity_mib(16);
/// let region = device.create_region("ckpt");
/// let page = device.alloc_page(region)?;
/// device.write_page(page, PageData::pattern(3), NodeId(0))?;
///
/// let mut seals = SealRegistry::new();
/// seals.seal_region(&device, region)?;
/// assert!(seals.verify(&device).is_empty());
///
/// device.write_page(page, PageData::pattern(4), NodeId(0))?; // mutate!
/// assert_eq!(seals.verify(&device).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SealRegistry {
    seals: BTreeMap<RegionId, BTreeMap<CxlPageId, u64>>,
}

impl SealRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SealRegistry::default()
    }

    /// Seals every page `region` currently owns on `device`, replacing
    /// any earlier seal of the same region. Returns the number of pages
    /// sealed.
    ///
    /// # Errors
    ///
    /// [`CxlError`] if a page vanishes between enumeration and
    /// fingerprinting.
    pub fn seal_region(&mut self, device: &CxlDevice, region: RegionId) -> Result<usize, CxlError> {
        let mut pages = BTreeMap::new();
        for (page, owner) in device.live_pages() {
            if owner == region {
                pages.insert(page, device.fingerprint(page)?);
            }
        }
        let sealed = pages.len();
        self.seals.insert(region, pages);
        Ok(sealed)
    }

    /// Drops the seal of `region` (the checkpoint is being released; its
    /// pages may legitimately disappear now).
    pub fn release(&mut self, region: RegionId) {
        self.seals.remove(&region);
    }

    /// Re-verifies every sealed region against the device, returning a
    /// violation per missing or mutated page.
    pub fn verify(&self, device: &CxlDevice) -> Vec<Violation> {
        let mut out = Vec::new();
        for (&region, pages) in &self.seals {
            out.extend(verify_pages(device, region, pages));
        }
        out
    }

    /// Re-verifies a single sealed region. A region that was never sealed
    /// verifies vacuously clean.
    pub fn verify_region(&self, device: &CxlDevice, region: RegionId) -> Vec<Violation> {
        self.seals
            .get(&region)
            .map(|pages| verify_pages(device, region, pages))
            .unwrap_or_default()
    }

    /// Regions currently under seal.
    pub fn sealed_regions(&self) -> Vec<RegionId> {
        self.seals.keys().copied().collect()
    }

    /// Number of regions under seal.
    pub fn len(&self) -> usize {
        self.seals.len()
    }

    /// `true` if nothing is sealed.
    pub fn is_empty(&self) -> bool {
        self.seals.is_empty()
    }
}

fn verify_pages(
    device: &CxlDevice,
    region: RegionId,
    pages: &BTreeMap<CxlPageId, u64>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (&page, &expected) in pages {
        match device.fingerprint(page) {
            Err(_) => out.push(Violation::SealMissingPage { region, page }),
            Ok(actual) if actual != expected => out.push(Violation::SealMismatch {
                region,
                page,
                expected,
                actual,
            }),
            Ok(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use cxl_mem::{NodeId, PageData};

    use super::*;

    fn device_with_region() -> (CxlDevice, RegionId, Vec<CxlPageId>) {
        let device = CxlDevice::with_capacity_mib(16);
        let region = device.create_region("ckpt");
        let pages: Vec<CxlPageId> = (0..4)
            .map(|i| {
                let p = device.alloc_page(region).unwrap();
                device
                    .write_page(p, PageData::pattern(i + 1), NodeId(0))
                    .unwrap();
                p
            })
            .collect();
        (device, region, pages)
    }

    #[test]
    fn untouched_region_verifies_clean() {
        let (device, region, _) = device_with_region();
        let mut seals = SealRegistry::new();
        assert_eq!(seals.seal_region(&device, region).unwrap(), 4);
        assert_eq!(seals.verify(&device), Vec::new());
        assert_eq!(seals.sealed_regions(), vec![region]);
    }

    #[test]
    fn mutation_after_seal_is_reported() {
        let (device, region, pages) = device_with_region();
        let mut seals = SealRegistry::new();
        seals.seal_region(&device, region).unwrap();
        device
            .write_page(pages[2], PageData::pattern(0xBAD), NodeId(0))
            .unwrap();
        let violations = seals.verify(&device);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            Violation::SealMismatch { page, .. } if page == pages[2]
        ));
    }

    #[test]
    fn freed_page_under_seal_is_reported() {
        let (device, region, pages) = device_with_region();
        let mut seals = SealRegistry::new();
        seals.seal_region(&device, region).unwrap();
        device.free_page(pages[0]).unwrap();
        let violations = seals.verify_region(&device, region);
        assert_eq!(
            violations,
            vec![Violation::SealMissingPage {
                region,
                page: pages[0],
            }]
        );
    }

    #[test]
    fn release_forgets_the_seal() {
        let (device, region, _) = device_with_region();
        let mut seals = SealRegistry::new();
        seals.seal_region(&device, region).unwrap();
        seals.release(region);
        assert!(seals.is_empty());
        device.destroy_region(region).unwrap();
        assert_eq!(seals.verify(&device), Vec::new());
    }
}
