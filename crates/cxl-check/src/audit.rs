//! The cross-layer invariant auditor.
//!
//! [`audit_node`] walks every process on a [`Node`] and balances the four
//! reference ledgers against each other:
//!
//! * every PTE target must resolve — local targets to a live frame,
//!   CXL targets (present, armed or in a backing map) to a live device
//!   page;
//! * every live frame's refcount must equal the references the walk can
//!   account for: mapping PTEs, page-cache entries, and external pins the
//!   caller declares (template registries, measurement harnesses);
//! * copy-on-write isolation must hold — no writable mapping of a shared
//!   frame, no PTE that is simultaneously `COW` and `WRITABLE`;
//! * no translation may outlive its VMA.
//!
//! [`audit_device`] checks the device's own books (slab ↔ `used_pages`
//! counter ↔ per-region accounting), and [`audit_device_with_live`]
//! additionally reports regions no declared owner references — leaked
//! checkpoints.
//!
//! All checks are read-only walks over accessor APIs; the auditor holds
//! no state between runs and never mutates the structures it audits.

use std::collections::{BTreeMap, BTreeSet};

use cxl_mem::{CxlDevice, RegionId};
use node_os::addr::PhysAddr;
use node_os::mm::{BackingSource, CxlTierPolicy};
use node_os::pte::PteFlags;
use node_os::{Node, Pfn};

use crate::Violation;

/// A configurable audit of one node's memory ledgers.
///
/// The plain [`audit_node`] entry point covers nodes whose frames are
/// referenced only by PTEs and the page cache. Subsystems that hold frame
/// references *outside* any process — e.g. a template registry pinning a
/// warmed page set — declare those pins with
/// [`with_external_refs`](NodeAudit::with_external_refs) so the refcount
/// balance still closes.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cxl_mem::CxlDevice;
/// use node_os::{mm::Access, vma::Protection, Node, NodeConfig};
///
/// # fn main() -> Result<(), node_os::OsError> {
/// let device = Arc::new(CxlDevice::with_capacity_mib(16));
/// let mut node = Node::new(NodeConfig::default(), device);
/// let pid = node.spawn("worker")?;
/// node.process_mut(pid)?.mm.map_anonymous(0, 4, Protection::read_write(), "heap")?;
/// node.access(pid, 0, Access::Write)?;
/// assert!(cxl_check::audit_node(&node).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NodeAudit<'a> {
    node: &'a Node,
    external: BTreeMap<u64, u32>,
}

impl<'a> NodeAudit<'a> {
    /// Starts an audit of `node` with no external frame references.
    pub fn new(node: &'a Node) -> Self {
        NodeAudit {
            node,
            external: BTreeMap::new(),
        }
    }

    /// Declares frame references held outside any process or the page
    /// cache (one reference per occurrence in `pins`).
    #[must_use]
    pub fn with_external_refs(mut self, pins: impl IntoIterator<Item = Pfn>) -> Self {
        for pfn in pins {
            *self.external.entry(pfn.0).or_insert(0) += 1;
        }
        self
    }

    /// Runs the audit, returning every violation found (empty = clean).
    pub fn run(&self) -> Vec<Violation> {
        let node = self.node;
        let node_id = node.id();
        let device = node.device();
        let frames = node.frames();
        let mut out = Vec::new();
        // Accountable references per frame: external pins, then PTEs and
        // page-cache entries as the walk finds them.
        let mut expected: BTreeMap<u64, u32> = self.external.clone();

        for pid in node.pids() {
            let process = node.process(pid).expect("listed pid exists");
            let mm = &process.mm;
            for (vpn, pte) in mm.page_table.iter_populated() {
                let flags = pte.flags();
                if flags.contains(PteFlags::COW) && flags.contains(PteFlags::WRITABLE) {
                    out.push(Violation::CowWritablePte {
                        node: node_id,
                        pid,
                        vpn: vpn.0,
                    });
                }
                let vma = mm.vmas.find(vpn);
                if vma.is_none() {
                    out.push(Violation::PteOutsideVma {
                        node: node_id,
                        pid,
                        vpn: vpn.0,
                    });
                }
                match pte.target() {
                    None => {}
                    Some(PhysAddr::Local(pfn)) => {
                        let refcount = frames.refcount(pfn);
                        if refcount == 0 {
                            out.push(Violation::DanglingLocalPte {
                                node: node_id,
                                pid,
                                vpn: vpn.0,
                                pfn,
                            });
                            continue;
                        }
                        *expected.entry(pfn.0).or_insert(0) += 1;
                        let shared_anon = vma.is_some_and(|v| v.kind.is_shared_anonymous());
                        if pte.is_present() && pte.is_writable() && refcount > 1 && !shared_anon {
                            out.push(Violation::WritableSharedFrame {
                                node: node_id,
                                pid,
                                vpn: vpn.0,
                                pfn,
                                refcount,
                            });
                        }
                    }
                    Some(PhysAddr::Cxl(page)) if device.page_region(page).is_none() => {
                        out.push(Violation::DanglingCxlPte {
                            node: node_id,
                            pid,
                            vpn: vpn.0,
                            page,
                        });
                    }
                    Some(PhysAddr::Cxl(_)) => {}
                }
            }

            // A migrate-on-access backing map is consulted on every fault
            // at a vpn with no installed translation, so its device
            // sources must stay live as long as such a fault can happen.
            // (Already-pulled pages leave a stale-but-never-consulted
            // entry behind; those are exempt.)
            if mm.policy() == CxlTierPolicy::MigrateOnAccess {
                if let Some(backing) = mm.backing() {
                    for (vpn, bp) in backing.iter() {
                        if !mm.page_table.get(vpn).is_present() {
                            if let BackingSource::Device(page) = bp.source {
                                if device.page_region(page).is_none() {
                                    out.push(Violation::DanglingBackingPage {
                                        node: node_id,
                                        pid,
                                        vpn: vpn.0,
                                        page,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        for (path, file_page, pfn) in node.page_cache().entries() {
            if frames.refcount(pfn) == 0 {
                out.push(Violation::DanglingCacheEntry {
                    node: node_id,
                    path: path.to_owned(),
                    file_page,
                    pfn,
                });
            } else {
                *expected.entry(pfn.0).or_insert(0) += 1;
            }
        }

        for (pfn, refcount) in frames.live_pfns() {
            let counted = expected.get(&pfn.0).copied().unwrap_or(0);
            if counted == 0 {
                out.push(Violation::FrameLeak {
                    node: node_id,
                    pfn,
                    refcount,
                });
            } else if counted != refcount {
                out.push(Violation::RefcountSkew {
                    node: node_id,
                    pfn,
                    actual: refcount,
                    expected: counted,
                });
            }
        }

        out
    }
}

/// Audits one node with no external frame references. See [`NodeAudit`]
/// for the full builder.
pub fn audit_node(node: &Node) -> Vec<Violation> {
    NodeAudit::new(node).run()
}

/// Audits the device's internal accounting: the `used_pages` counter
/// against the page slab, every region's page count against the slab
/// pages that name it as owner, and every page-pool shard's counter
/// against the live pages bucketed into its offset range (the per-shard
/// counters must also sum to the device-wide counter).
pub fn audit_device(device: &CxlDevice) -> Vec<Violation> {
    let mut out = Vec::new();
    let live = device.live_pages();
    let regions: BTreeMap<RegionId, _> = device.regions().into_iter().collect();

    let counted = device.used_pages();
    if counted != live.len() as u64 {
        out.push(Violation::DeviceAccounting {
            counted,
            live: live.len() as u64,
        });
    }

    // Bucket every live page into the shard whose offset range contains
    // it; each shard's own counter must agree with its bucket, and the
    // counters must sum back to the device-wide ledger.
    let shards = device.shard_usage();
    let mut per_shard: Vec<u64> = vec![0; shards.len()];
    for (page, _) in &live {
        if let Some(i) = shards
            .iter()
            .position(|s| page.0 >= s.base_page && page.0 < s.base_page + s.capacity_pages)
        {
            per_shard[i] += 1;
        }
    }
    for (shard, bucketed) in shards.iter().zip(&per_shard) {
        if shard.used_pages != *bucketed {
            out.push(Violation::ShardAccounting {
                shard: shard.index,
                base_page: shard.base_page,
                counted: shard.used_pages,
                live: *bucketed,
            });
        }
    }
    let shard_sum: u64 = shards.iter().map(|s| s.used_pages).sum();
    if shard_sum != counted {
        out.push(Violation::ShardSumSkew { counted, shard_sum });
    }

    let mut per_region: BTreeMap<RegionId, u64> = BTreeMap::new();
    for (page, region) in live {
        if regions.contains_key(&region) {
            *per_region.entry(region).or_insert(0) += 1;
        } else {
            out.push(Violation::OrphanCxlPage { page, region });
        }
    }
    for (region, usage) in &regions {
        let live_owned = per_region.get(region).copied().unwrap_or(0);
        if usage.pages != live_owned {
            out.push(Violation::RegionAccounting {
                region: *region,
                counted: usage.pages,
                live: live_owned,
            });
        }
    }
    out
}

/// Audits the device and additionally reports every region absent from
/// `known_live` — device memory no declared owner (checkpoint store,
/// live checkpoint handle) can ever reclaim.
pub fn audit_device_with_live(
    device: &CxlDevice,
    known_live: impl IntoIterator<Item = RegionId>,
) -> Vec<Violation> {
    let mut out = audit_device(device);
    let known: BTreeSet<RegionId> = known_live.into_iter().collect();
    for (region, usage) in device.regions() {
        if !known.contains(&region) {
            out.push(Violation::RegionLeak {
                region,
                name: usage.name,
                pages: usage.pages,
            });
        }
    }
    out
}

/// Audits the checkpoint store's content index against the image catalog
/// and the device:
///
/// * every index entry's refcount must equal the references the
///   committed + pending images account for (with multiplicity), and
///   every image-held fingerprint must have an index entry — otherwise
///   [`Violation::ContentIndexSkew`];
/// * every index entry's device page must be live and its current
///   content must still hash to the fingerprint that names it —
///   otherwise [`Violation::DanglingIndexEntry`].
///
/// Like the other auditors this is a read-only walk: content is verified
/// through [`CxlDevice::fingerprint_pages`], which moves no counters and
/// triggers no fault hooks.
pub fn audit_store(store: &cxl_store::Store) -> Vec<Violation> {
    let mut out = Vec::new();
    let device = store.device();
    let index = store.index_snapshot();
    let mut expected = store.live_reference_counts();

    // Batch-fingerprint the whole index; one dead page fails the batch,
    // so fall back to per-page probes to attribute the failure.
    let pages: Vec<cxl_mem::CxlPageId> = index.iter().map(|e| e.page).collect();
    let observed: Vec<Option<u64>> = match device.fingerprint_pages(&pages) {
        Ok(fps) => fps.into_iter().map(Some).collect(),
        Err(_) => pages.iter().map(|&p| device.fingerprint(p).ok()).collect(),
    };

    for (entry, observed) in index.iter().zip(observed) {
        if observed != Some(entry.fingerprint) {
            out.push(Violation::DanglingIndexEntry {
                fingerprint: entry.fingerprint,
                page: entry.page,
                observed,
            });
        }
        let counted = expected.remove(&entry.fingerprint).unwrap_or(0);
        if entry.refs != counted {
            out.push(Violation::ContentIndexSkew {
                fingerprint: entry.fingerprint,
                page: entry.page,
                actual: entry.refs,
                expected: counted,
            });
        }
    }
    // Fingerprints some image still references but the index forgot.
    for (fingerprint, counted) in expected {
        out.push(Violation::ContentIndexSkew {
            fingerprint,
            page: cxl_mem::CxlPageId(u64::MAX),
            actual: 0,
            expected: counted,
        });
    }
    out
}

/// Audits a durable store's journal against its in-DRAM books.
///
/// Loads the highest journal generation with a valid superblock through
/// the unmodelled snapshot path (no clock charge, no fault hooks) and
/// checks two invariants a quiescent store must satisfy:
///
/// * the committed stream has **no torn tail** — a torn tail means a
///   crashed append that recovery never truncated
///   ([`Violation::JournalTornTail`]);
/// * replaying the stream yields exactly the reference counts the live
///   content index records, fingerprint by fingerprint
///   ([`Violation::RecoveryRefcountSkew`]).
///
/// A volatile store (no journal on the device) audits clean — there is
/// nothing to cross-check.
pub fn audit_journal(store: &cxl_store::Store) -> Vec<Violation> {
    use cxl_store::journal;

    let mut out = Vec::new();
    let device = store.device();
    let found = journal::find_generations(device);
    if found.is_empty() {
        return out;
    }
    let mut chosen = None;
    for f in found.iter().rev() {
        if let Some(loaded) = journal::snapshot_generation(device, f) {
            chosen = Some((f, loaded));
            break;
        }
    }
    let Some((gen, loaded)) = chosen else {
        // Generations exist but none has a valid superblock: the
        // journal root is lost. Flag the newest region.
        let newest = found.last().expect("found is non-empty");
        out.push(Violation::JournalTornTail {
            region: newest.region,
            committed_bytes: 0,
            torn_bytes: 0,
        });
        return out;
    };
    if loaded.log.torn_bytes > 0 {
        out.push(Violation::JournalTornTail {
            region: gen.region,
            committed_bytes: loaded.log.committed_bytes,
            torn_bytes: loaded.log.torn_bytes,
        });
    }

    let journal_refs = journal::replay_reference_counts(&loaded.log.entries);
    let mut index_refs: BTreeMap<u64, u64> = store
        .index_snapshot()
        .into_iter()
        .map(|e| (e.fingerprint, e.refs))
        .collect();
    for (fingerprint, jrefs) in journal_refs {
        let irefs = index_refs.remove(&fingerprint).unwrap_or(0);
        if jrefs != irefs {
            out.push(Violation::RecoveryRefcountSkew {
                fingerprint,
                journal_refs: jrefs,
                index_refs: irefs,
            });
        }
    }
    // Fingerprints the index holds but the journal never explains.
    for (fingerprint, irefs) in index_refs {
        out.push(Violation::RecoveryRefcountSkew {
            fingerprint,
            journal_refs: 0,
            index_refs: irefs,
        });
    }
    out
}

/// Audits checkpoint staging regions against the set of live owners:
/// every *uncommitted* region whose owner is not in `live_owners` is a
/// torn checkpoint that lease reclamation should have destroyed, and is
/// reported as an [`Violation::OrphanStagingRegion`].
///
/// Committed regions are never flagged — a published checkpoint
/// legitimately outlives its writer (that is the whole point of
/// two-phase commit). Run this after crash recovery to prove the orphan
/// GC actually ran.
pub fn audit_staging(
    device: &CxlDevice,
    live_owners: impl IntoIterator<Item = cxl_mem::NodeId>,
) -> Vec<Violation> {
    let live: BTreeSet<cxl_mem::NodeId> = live_owners.into_iter().collect();
    device
        .staging_regions()
        .into_iter()
        .filter(|s| !live.contains(&s.owner))
        .map(|s| Violation::OrphanStagingRegion {
            region: s.region,
            owner: s.owner,
            epoch: s.epoch,
            pages: s.pages,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cxl_mem::{CxlDevice, PageData};
    use node_os::mm::Access;
    use node_os::vma::Protection;
    use node_os::{NodeConfig, NodeId};

    use super::*;

    fn test_node() -> Node {
        let device = Arc::new(CxlDevice::with_capacity_mib(16));
        Node::new(NodeConfig::default().with_id(0), device)
    }

    #[test]
    fn fresh_process_audits_clean() {
        let mut node = test_node();
        let pid = node.spawn("w").unwrap();
        node.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 8, Protection::read_write(), "heap")
            .unwrap();
        for vpn in 0..4 {
            node.access(pid, vpn, Access::Write).unwrap();
        }
        assert_eq!(audit_node(&node), Vec::new());
    }

    #[test]
    fn local_fork_cow_audits_clean() {
        let mut node = test_node();
        let pid = node.spawn("parent").unwrap();
        node.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 8, Protection::read_write(), "heap")
            .unwrap();
        for vpn in 0..8 {
            node.access(pid, vpn, Access::Write).unwrap();
        }
        let (child, _) = node.local_fork(pid).unwrap();
        assert_eq!(audit_node(&node), Vec::new());
        // Child writes break the sharing; still clean.
        node.access(child, 3, Access::Write).unwrap();
        assert_eq!(audit_node(&node), Vec::new());
    }

    #[test]
    fn file_mappings_balance_through_page_cache() {
        let mut node = test_node();
        node.rootfs().create("/lib/a.so", 8 * 4096, 0xA5);
        let p1 = node.spawn("a").unwrap();
        let p2 = node.spawn("b").unwrap();
        for pid in [p1, p2] {
            node.process_mut(pid)
                .unwrap()
                .mm
                .map_file(0, 4, Protection::read_only(), "/lib/a.so", 0)
                .unwrap();
            for vpn in 0..4 {
                node.access(pid, vpn, Access::Read).unwrap();
            }
        }
        assert_eq!(audit_node(&node), Vec::new());
        // Reclaiming the cache keeps the books balanced too.
        node.drop_page_cache();
        assert_eq!(audit_node(&node), Vec::new());
    }

    #[test]
    fn skipped_dec_ref_reports_refcount_skew() {
        let mut node = test_node();
        let pid = node.spawn("w").unwrap();
        node.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 4, Protection::read_write(), "heap")
            .unwrap();
        node.access(pid, 0, Access::Write).unwrap();
        let pte = node
            .process(pid)
            .unwrap()
            .mm
            .page_table
            .get(node_os::VirtPageNum(0));
        let Some(PhysAddr::Local(pfn)) = pte.target() else {
            panic!("expected local mapping");
        };
        // A fork path that bumps the refcount and then forgets the
        // matching dec_ref leaves the allocator one reference high.
        node.frames_mut().inc_ref(pfn);
        let violations = audit_node(&node);
        // The phantom reference both skews the count and makes the
        // (still writable) mapping a CoW-isolation hazard.
        assert!(violations.contains(&Violation::RefcountSkew {
            node: NodeId(0),
            pfn,
            actual: 2,
            expected: 1,
        }));
        assert!(violations.contains(&Violation::WritableSharedFrame {
            node: NodeId(0),
            pid,
            vpn: 0,
            pfn,
            refcount: 2,
        }));
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn unreferenced_frame_reports_leak() {
        let mut node = test_node();
        let pfn = node.frames_mut().alloc(PageData::pattern(1)).unwrap();
        let violations = audit_node(&node);
        assert_eq!(
            violations,
            vec![Violation::FrameLeak {
                node: NodeId(0),
                pfn,
                refcount: 1,
            }]
        );
        // Declaring the pin as external closes the balance again.
        assert_eq!(
            NodeAudit::new(&node).with_external_refs([pfn]).run(),
            Vec::new()
        );
    }

    #[test]
    fn skipped_lease_reclamation_is_flagged_and_gc_clears_it() {
        // Negative test proving the orphan GC is load-bearing: a node
        // dies mid-checkpoint, leaving an uncommitted staging region. If
        // lease reclamation is deliberately skipped, the auditor must
        // flag the orphan; after the GC runs, the books close again.
        let device = Arc::new(CxlDevice::with_capacity_mib(16));
        let dead = cxl_mem::NodeId(2);

        // The crashed writer got three pages into its copy.
        let staged = device.create_region_staged("ckpt:torn#4", dead, 4);
        for _ in 0..3 {
            let page = device.alloc_page(staged).unwrap();
            device.write_page(page, PageData::pattern(9), dead).unwrap();
        }
        // An earlier *committed* checkpoint of the same (now dead) owner
        // must never be flagged — published checkpoints legitimately
        // outlive their writer.
        let published = device.create_region_staged("ckpt:good#3", dead, 3);
        let page = device.alloc_page(published).unwrap();
        device.write_page(page, PageData::pattern(1), dead).unwrap();
        device.commit_region(published).unwrap();

        // GC skipped: exactly the torn region is reported as orphaned.
        let live = [cxl_mem::NodeId(0), cxl_mem::NodeId(1)];
        assert_eq!(
            audit_staging(&device, live),
            vec![Violation::OrphanStagingRegion {
                region: staged,
                owner: dead,
                epoch: 4,
                pages: 3,
            }]
        );
        // While its owner is still considered live, nothing is wrong.
        assert_eq!(audit_staging(&device, [dead]), Vec::new());

        // Run the GC the recovery path would have run; the audit closes.
        let report = cxl_fault::reclaim_dead(&device, &[dead]);
        assert_eq!(report.regions, 1);
        assert_eq!(report.pages, 3);
        assert_eq!(audit_staging(&device, live), Vec::new());
        assert_eq!(audit_device(&device), Vec::new());
        // The committed checkpoint survived reclamation.
        assert_eq!(device.region_committed(published), Some(true));
    }

    #[test]
    fn sharded_device_books_balance_through_batch_churn() {
        // The shard audit reconciles per-shard counters against live
        // pages bucketed by offset range, across allocation, partial
        // frees and region destruction.
        let device = CxlDevice::with_shards(64, 8);
        let a = device.create_region("ckpt:a");
        let b = device.create_region("ckpt:b");
        let pa = device.alloc_batch(a, 23).unwrap();
        let _pb = device.alloc_batch(b, 17).unwrap();
        assert!(
            device
                .shard_usage()
                .iter()
                .filter(|s| s.used_pages > 0)
                .count()
                > 1
        );
        assert_eq!(audit_device(&device), Vec::new());
        device.free_batch(&pa[3..11]).unwrap();
        assert_eq!(audit_device(&device), Vec::new());
        device.destroy_region(b).unwrap();
        assert_eq!(audit_device(&device), Vec::new());
    }

    #[test]
    fn store_index_balances_and_forced_refcount_skew_is_reported() {
        let device = Arc::new(CxlDevice::with_capacity_mib(16));
        let store = cxl_store::Store::new(Arc::clone(&device));
        let owner = cxl_mem::NodeId(0);
        let img = store.begin_image("fn:a#1", owner, 1, simclock::SimTime::ZERO);
        let datas = vec![PageData::pattern(7), PageData::pattern(7), PageData::Zero];
        let outcome = store.intern_pages(img, &datas, owner).unwrap();
        let meta = device.create_region("ckpt:a");
        store.commit_image(img, meta).unwrap();
        assert_eq!(audit_store(&store), Vec::new());

        // A lost dec_ref (or phantom inc) desynchronizes the index from
        // the catalog: exactly one ContentIndexSkew, naming the entry.
        let fp = PageData::pattern(7).fingerprint();
        store.debug_force_refs(fp, 9);
        assert_eq!(
            audit_store(&store),
            vec![Violation::ContentIndexSkew {
                fingerprint: fp,
                page: outcome.pages[0],
                actual: 9,
                expected: 2,
            }]
        );
        // Restoring the true count closes the books again.
        store.debug_force_refs(fp, 2);
        assert_eq!(audit_store(&store), Vec::new());
    }

    #[test]
    fn dead_or_mutated_index_pages_are_reported_as_dangling() {
        let device = Arc::new(CxlDevice::with_capacity_mib(16));
        let store = cxl_store::Store::new(Arc::clone(&device));
        let owner = cxl_mem::NodeId(0);
        let img = store.begin_image("fn:a#1", owner, 1, simclock::SimTime::ZERO);
        let outcome = store
            .intern_pages(img, &[PageData::pattern(7)], owner)
            .unwrap();
        let meta = device.create_region("ckpt:a");
        store.commit_image(img, meta).unwrap();

        // An index entry pointing at a freed device page: dangling (the
        // page is dead) and skewed (no image accounts for it).
        let scratch = device.create_region("scratch");
        let dead = device.alloc_page(scratch).unwrap();
        device.free_page(dead).unwrap();
        store.debug_plant_index_entry(0xDEAD, dead, 1);
        let violations = audit_store(&store);
        assert!(violations.contains(&Violation::DanglingIndexEntry {
            fingerprint: 0xDEAD,
            page: dead,
            observed: None,
        }));
        assert!(violations.contains(&Violation::ContentIndexSkew {
            fingerprint: 0xDEAD,
            page: dead,
            actual: 1,
            expected: 0,
        }));
        assert_eq!(violations.len(), 2);

        // Mutating an interned page behind the store's back breaks the
        // content addressing contract: the entry's fingerprint no longer
        // matches what the page holds.
        store.debug_plant_index_entry(0xDEAD, outcome.pages[0], 0);
        let fp = PageData::pattern(7).fingerprint();
        device
            .write_page(outcome.pages[0], PageData::pattern(99), owner)
            .unwrap();
        let violations = audit_store(&store);
        assert!(violations.contains(&Violation::DanglingIndexEntry {
            fingerprint: fp,
            page: outcome.pages[0],
            observed: Some(PageData::pattern(99).fingerprint()),
        }));
    }

    #[test]
    fn journal_audit_flags_replay_skew_and_torn_tail() {
        use cxl_store::journal;

        let device = Arc::new(CxlDevice::with_capacity_mib(16));
        let store = cxl_store::Store::with_config(
            Arc::clone(&device),
            cxl_store::StoreConfig {
                durable: true,
                ..cxl_store::StoreConfig::default()
            },
        );
        let owner = cxl_mem::NodeId(0);
        let img = store.begin_image("fn:a#1", owner, 1, simclock::SimTime::ZERO);
        store
            .intern_pages(img, &[PageData::pattern(7)], owner)
            .unwrap();
        let meta = device.create_region("ckpt:a");
        store.commit_image(img, meta).unwrap();
        assert_eq!(audit_journal(&store), Vec::new());

        // A volatile store has no journal to disagree with.
        let volatile = cxl_store::Store::new(Arc::new(CxlDevice::with_capacity_mib(1)));
        assert_eq!(audit_journal(&volatile), Vec::new());

        // Forge a *sealed* Intern record claiming a phantom reference:
        // replay now accounts for one more ref than the live index.
        let gen = journal::find_generations(&device).pop().unwrap();
        let loaded = journal::snapshot_generation(&device, &gen).unwrap();
        let entry = &store.index_snapshot()[0];
        let (fp, page) = (entry.fingerprint, entry.page);
        let payload = journal::encode_payload(&journal::JournalEntry {
            seq: 999,
            owner: 0,
            epoch: 0,
            record: journal::Record::Intern {
                image: 999,
                entries: vec![(fp, page.0)],
            },
        });
        let mut rec = Vec::new();
        rec.extend_from_slice(&0x4A4C_5843u32.to_le_bytes()); // record magic
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&payload);
        rec.push(0xA5); // seal marker
        let off = loaded.log.committed_bytes as usize;
        let page_idx = off / cxl_mem::PAGE_SIZE as usize;
        let in_off = off % cxl_mem::PAGE_SIZE as usize;
        assert!(
            in_off + rec.len() <= cxl_mem::PAGE_SIZE as usize,
            "forged record must fit in the tail page's slack"
        );
        let jpage = loaded.data_pages[page_idx];
        let mut raw = vec![0u8; cxl_mem::PAGE_SIZE as usize];
        device.snapshot_pages(&[jpage]).unwrap()[0].read(0, &mut raw);
        raw[in_off..in_off + rec.len()].copy_from_slice(&rec);
        device
            .write_page(jpage, PageData::from_bytes(&raw), owner)
            .unwrap();
        assert_eq!(
            audit_journal(&store),
            vec![Violation::RecoveryRefcountSkew {
                fingerprint: fp,
                journal_refs: 2,
                index_refs: 1,
            }]
        );

        // Unseal the forged record (zero its marker): the phantom ref is
        // gone but the bytes are now a torn tail recovery never saw.
        raw[in_off + rec.len() - 1] = 0;
        device
            .write_page(jpage, PageData::from_bytes(&raw), owner)
            .unwrap();
        assert_eq!(
            audit_journal(&store),
            vec![Violation::JournalTornTail {
                region: gen.region,
                committed_bytes: loaded.log.committed_bytes,
                torn_bytes: 8 + payload.len() as u64,
            }]
        );
    }

    #[test]
    fn device_books_balance_and_region_leak_is_reported() {
        let device = Arc::new(CxlDevice::with_capacity_mib(16));
        let region = device.create_region("ckpt");
        let page = device.alloc_page(region).unwrap();
        device
            .write_page(page, PageData::pattern(7), NodeId(0))
            .unwrap();
        assert_eq!(audit_device(&device), Vec::new());
        assert_eq!(audit_device_with_live(&device, [region]), Vec::new());
        let leaks = audit_device_with_live(&device, []);
        assert_eq!(
            leaks,
            vec![Violation::RegionLeak {
                region,
                name: "ckpt".to_owned(),
                pages: 1,
            }]
        );
    }
}
