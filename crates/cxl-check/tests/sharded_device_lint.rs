//! CI gate for the sharded device (DESIGN.md §10): drives batched and
//! scalar traffic across every page-pool shard, then runs the full
//! device audit — shard-counter reconciliation included — and the
//! lockdep lock-order lint. With `--features check` the shard locks
//! record real acquisition edges (`cxl_mem.device.regions` → shardNN,
//! ascending); without it lockdep is compiled out and the lint is
//! trivially clean. `ci.sh` runs this binary in both feature states.
//!
//! Lives in its own test binary because the lockdep edge graph is
//! process-global.

use cxl_mem::lockdep::reset_lock_graph;
use cxl_mem::{CxlDevice, NodeId, PageData, DEFAULT_SHARDS};

#[test]
fn sharded_device_batch_churn_audits_clean_with_no_lock_cycle() {
    reset_lock_graph();
    let device = CxlDevice::with_shards(256, DEFAULT_SHARDS);
    let node = NodeId(0);

    // Batch allocation spanning several shards, from two regions.
    let a = device.create_region("ckpt:a");
    let b = device.create_region("ckpt:b");
    let pa = device.alloc_batch(a, 100).unwrap();
    let pb = device.alloc_batch(b, 60).unwrap();

    // Batched data traffic across every touched shard...
    let writes: Vec<_> = pa.iter().map(|&p| (p, PageData::pattern(p.0))).collect();
    device.write_pages(&writes, node).unwrap();
    let back = device.read_pages(&pa, node).unwrap();
    assert_eq!(back.len(), pa.len());

    // ...interleaved with scalar ops on the same shards.
    device
        .write_page(pb[0], PageData::pattern(7), node)
        .unwrap();
    assert_eq!(device.read_page(pb[0], node).unwrap(), PageData::pattern(7));

    // Partial free, then whole-region destruction.
    device.free_batch(&pa[10..40]).unwrap();
    device.destroy_region(b).unwrap();

    // The churn really exercised the partition, and all four ledgers
    // (slab ↔ used_pages ↔ regions ↔ shard counters) still balance.
    let active = device
        .shard_usage()
        .iter()
        .filter(|s| s.used_pages > 0)
        .count();
    assert!(active > 1, "batch churn must span shards, got {active}");
    assert_eq!(cxl_check::audit_device(&device), Vec::new());
    assert_eq!(cxl_check::check_lock_order(), Vec::new());
    reset_lock_graph();
}
