//! Negative tests: seed real cross-layer violations through the full
//! CXLfork checkpoint/restore stack and require the auditor to name
//! them. A checker that only ever sees clean states is untested — these
//! are the seeded-bug half of its contract.
//!
//! The dev-dependency on `cxlfork` pins the `check` feature on, so the
//! seal registry inside [`cxlfork::CxlFork`] is live in this binary
//! regardless of how the test suite itself was invoked.

use std::sync::Arc;

use cxl_check::Violation;
use cxl_mem::{CxlDevice, CxlPageId, NodeId};
use cxlfork::CxlFork;
use node_os::addr::PhysAddr;
use node_os::fs::SharedFs;
use node_os::mm::Access;
use node_os::vma::Protection;
use node_os::{Node, NodeConfig, Pid};
use rfork::{RemoteFork, RestoreOptions, TierPolicy};

const HEAP_PAGES: u64 = 16;

fn cluster() -> (Node, Node, Arc<CxlDevice>) {
    let device = Arc::new(CxlDevice::with_capacity_mib(64));
    let rootfs = Arc::new(SharedFs::new());
    let src = Node::with_rootfs(
        NodeConfig::default().with_id(0).with_local_mem_mib(64),
        Arc::clone(&device),
        Arc::clone(&rootfs),
    );
    let dst = Node::with_rootfs(
        NodeConfig::default().with_id(1).with_local_mem_mib(64),
        Arc::clone(&device),
        rootfs,
    );
    (src, dst, device)
}

fn build_victim(node: &mut Node) -> Pid {
    let pid = node.spawn("victim").unwrap();
    node.process_mut(pid)
        .unwrap()
        .mm
        .map_anonymous(0, HEAP_PAGES, Protection::read_write(), "heap")
        .unwrap();
    for i in 0..HEAP_PAGES {
        node.access(pid, i, Access::Write).unwrap();
    }
    pid
}

/// First CXL data page of a checkpoint.
fn first_ckpt_page(ckpt: &cxlfork::CxlForkCheckpoint) -> CxlPageId {
    let (_, pte) = ckpt.iter_pages().next().expect("checkpoint has pages");
    let Some(PhysAddr::Cxl(page)) = pte.target() else {
        panic!("checkpoint pages live on the device");
    };
    page
}

#[test]
fn freed_checkpoint_page_is_reported_as_dangling_and_unsealed() {
    let (mut src, mut dst, device) = cluster();
    let pid = build_victim(&mut src);
    let fork = CxlFork::new();
    let ckpt = fork.checkpoint(&mut src, pid).unwrap();
    // A zero-copy clone whose armed PTEs point straight at the device.
    let opts = RestoreOptions {
        policy: TierPolicy::MigrateOnWrite,
        prefetch_dirty: false,
        sync_hot_prefetch: false,
    };
    fork.restore_with(&ckpt, &mut dst, opts).unwrap();
    assert_eq!(
        cxl_check::audit_node(&dst),
        Vec::new(),
        "clean before sabotage"
    );
    assert_eq!(fork.verify_seals(&device), Vec::new());

    // Sabotage: free one checkpoint data page behind everyone's back —
    // the double-free / premature-release bug class.
    let page = first_ckpt_page(&ckpt);
    device.free_page(page).unwrap();

    // The auditor sees every armed mapping of that page as dangling.
    let violations = cxl_check::audit_node(&dst);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::DanglingCxlPte { page: p, .. } if *p == page)),
        "expected a DanglingCxlPte for {page}, got {violations:?}"
    );
    // The source keeps running on its local frames and stays clean.
    assert_eq!(cxl_check::audit_node(&src), Vec::new());
    // And the seal checker reports the sealed page as gone.
    let seals = fork.verify_seals(&device);
    assert!(
        seals
            .iter()
            .any(|v| matches!(v, Violation::SealMissingPage { page: p, .. } if *p == page)),
        "expected a SealMissingPage for {page}, got {seals:?}"
    );
}

#[test]
fn mutating_a_sealed_checkpoint_page_is_reported() {
    let (mut src, _dst, device) = cluster();
    let pid = build_victim(&mut src);
    let fork = CxlFork::new();
    let ckpt = fork.checkpoint(&mut src, pid).unwrap();
    assert_eq!(
        fork.verify_seals(&device),
        Vec::new(),
        "clean before sabotage"
    );

    // Sabotage: scribble over a checkpoint data page — the stray-writer
    // bug class the paper's immutable checkpoints exclude by design.
    let page = first_ckpt_page(&ckpt);
    let before = device.fingerprint(page).unwrap();
    let mut data = device.read_page(page, NodeId(1)).unwrap();
    data.fill_pattern(0xBAD_5EED);
    device.write_page(page, data, NodeId(1)).unwrap();
    assert_ne!(device.fingerprint(page).unwrap(), before, "sabotage took");

    let violations = fork.verify_seals(&device);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::SealMismatch { page: p, .. } if *p == page)),
        "expected a SealMismatch for {page}, got {violations:?}"
    );
    // Region accounting is still balanced — only the content is wrong.
    assert_eq!(cxl_check::audit_device(&device), Vec::new());
}
