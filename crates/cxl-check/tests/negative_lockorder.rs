//! Negative test: two code paths taking the same pair of locks in
//! opposite orders must surface as a lock-order cycle, even though the
//! deadlocking interleaving never runs. Lives in its own test binary
//! because the lockdep edge graph is process-global.

use cxl_check::Violation;
use cxl_mem::lockdep::{reset_lock_graph, TrackedMutex};

#[test]
fn inverted_lock_order_is_reported_as_a_cycle() {
    reset_lock_graph();
    let alloc = TrackedMutex::new("negtest.alloc", ());
    let table = TrackedMutex::new("negtest.table", ());

    // Path 1: alloc → table. Harmless on its own.
    {
        let _a = alloc.lock();
        let _t = table.lock();
    }
    assert_eq!(cxl_check::check_lock_order(), Vec::new());

    // Path 2: table → alloc. Never deadlocks here (single thread), but
    // the combination is a deadlock waiting for the right interleaving.
    {
        let _t = table.lock();
        let _a = alloc.lock();
    }
    assert_eq!(
        cxl_check::check_lock_order(),
        vec![Violation::LockOrderCycle {
            cycle: vec!["negtest.alloc", "negtest.table"],
        }]
    );
    reset_lock_graph();
}
