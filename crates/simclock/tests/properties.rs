//! Property-based tests for virtual-time arithmetic and statistics.

use proptest::prelude::*;
use simclock::stats::{Breakdown, LatencyHistogram};
use simclock::{SimDuration, SimTime};

proptest! {
    #[test]
    fn duration_addition_is_commutative(a in any::<u64>(), b in any::<u64>()) {
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        prop_assert_eq!(da + db, db + da);
    }

    #[test]
    fn duration_addition_is_monotonic(a in any::<u64>(), b in any::<u64>()) {
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        prop_assert!(da + db >= da);
        prop_assert!(da + db >= db);
    }

    #[test]
    fn duration_sub_then_add_never_exceeds_original(a in any::<u64>(), b in any::<u64>()) {
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        // (a - b) + b == max(a, b) under saturating arithmetic.
        prop_assert_eq!((da - db) + db, da.max(db));
    }

    #[test]
    fn ratio_is_inverse_consistent(a in 1u64..u64::MAX / 2, b in 1u64..u64::MAX / 2) {
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        let r = da.ratio(db) * db.ratio(da);
        prop_assert!((r - 1.0).abs() < 1e-9, "ratio product {r}");
    }

    #[test]
    fn time_duration_roundtrip(t in any::<u64>(), d in 0u64..(1 << 40)) {
        let start = SimTime::from_nanos(t);
        let later = start + SimDuration::from_nanos(d);
        prop_assert_eq!(later - start, SimDuration::from_nanos(d.min(u64::MAX - t)));
        prop_assert_eq!(start - later, SimDuration::ZERO);
    }

    #[test]
    fn percentiles_are_monotone_in_q(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = LatencyHistogram::new();
        for s in &samples {
            h.record(SimDuration::from_nanos(*s));
        }
        let mut last = SimDuration::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.percentile(q);
            prop_assert!(v >= last, "p{q} went backwards");
            last = v;
        }
        // And every percentile is an actual sample within [min, max].
        prop_assert!(h.p50() >= h.min());
        prop_assert!(h.p99() <= h.max());
        prop_assert!(samples.contains(&h.p50().as_nanos()));
    }

    #[test]
    fn histogram_merge_is_order_insensitive(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let build = |v: &[u64]| {
            let mut h = LatencyHistogram::new();
            for s in v {
                h.record(SimDuration::from_nanos(*s));
            }
            h
        };
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(ab.len(), ba.len());
        if !ab.is_empty() {
            prop_assert_eq!(ab.p50(), ba.p50());
            prop_assert_eq!(ab.p99(), ba.p99());
            prop_assert_eq!(ab.mean(), ba.mean());
        }
    }

    #[test]
    fn breakdown_total_equals_sum_of_buckets(
        charges in prop::collection::vec(("[a-e]", 0u64..1_000_000), 0..50)
    ) {
        let mut b = Breakdown::new();
        let mut expected = 0u64;
        for (bucket, ns) in &charges {
            b.charge(bucket, SimDuration::from_nanos(*ns));
            expected += ns;
        }
        prop_assert_eq!(b.total().as_nanos(), expected);
        // Per-bucket sums are consistent too.
        let per_bucket: u64 = b.iter().map(|(_, v)| v.as_nanos()).sum();
        prop_assert_eq!(per_bucket, expected);
    }

    #[test]
    fn zipf_sampler_stays_in_range(n in 1usize..64, s in 0.0f64..3.0, seed in any::<u64>()) {
        let mut rng = simclock::rng::seeded(seed);
        let z = simclock::rng::ZipfSampler::new(n, s);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
