//! Virtual time and latency modelling for the CXLfork simulation.
//!
//! Everything in the CXLfork reproduction that "takes time" is accounted on a
//! [`SimClock`] in integer nanoseconds rather than by sleeping. Subsystems
//! either *charge* a clock directly or *return* a [`SimDuration`] cost that
//! the caller accumulates. The constants the costs are derived from live in
//! [`LatencyModel`] and are calibrated against the measurements published in
//! the paper (e.g. a 391 ns CXL round trip, a 2.5 µs CXL copy-on-write
//! fault).
//!
//! The crate also provides the statistics utilities the evaluation harness
//! needs: [`stats::LatencyHistogram`] for P50/P99 tail-latency reporting and
//! [`stats::Breakdown`] for the stacked-bar style cost breakdowns of
//! Figure 7a.
//!
//! # Example
//!
//! ```
//! use simclock::{SimClock, SimDuration, LatencyModel};
//!
//! let model = LatencyModel::calibrated();
//! let mut clock = SimClock::new();
//! clock.advance(model.cxl_read_round_trip());
//! clock.advance(SimDuration::from_micros(3));
//! assert_eq!(clock.now().as_nanos(), 391 + 3_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod latency;
mod time;

pub mod rng;
pub mod stats;

pub use clock::SimClock;
pub use latency::{LatencyModel, LatencyModelBuilder, PipelineModel, QueueingCurve, PAGE_SIZE};
pub use time::{SimDuration, SimTime};
